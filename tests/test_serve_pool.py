"""Tests for the supervised worker pool and the service-hardening layer.

Four properties carry the robustness story (docs/serving.md runbook):

* **crash recovery** — a worker SIGKILLed mid-shard is restarted under
  capped exponential backoff and the shard is requeued; the request
  completes with output bit-identical (``program_signature``) to a
  serial compile;
* **quarantine** — a trace key that keeps killing workers is
  circuit-broken and compiled in-parent under the resilient fallback
  ladder, with the ``DegradationReport`` recording the quarantine,
  instead of crash-looping the pool;
* **admission + drain** — requests beyond the queue watermark are shed
  with 503 + ``Retry-After`` (never a hang or a 500), draining servers
  reject new work while finishing in-flight work, and the cache/obs
  flush happens exactly once;
* **client resilience** — :class:`ServeClient` absorbs connection
  resets and 503s with jittered capped backoff inside its retry
  budget.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro import obs
from repro.ir.parser import parse_program, parse_trace
from repro.machine.model import MachineModel
from repro.program_compiler import compile_program, verify_compiled_program
from repro.resilience import SERVICE_FAULTS, ChaosMonkey, chaos_scope
from repro.serve.cache import CompileCache, program_signature, trace_key
from repro.serve.pool import WorkerPool
from repro.serve.supervisor import (
    QuarantineRegistry,
    RestartPolicy,
    Supervisor,
)

TRACE_SRC = """\
a = load [A]
b = load [B]
t0 = a + b
t1 = t0 * a
store [OUT], t1
"""

#: The magic constant lets a monkeypatched shard compiler recognise the
#: poisoned trace inside a forked worker (see TestQuarantine).
POISON_SRC = """\
a = load [A]
b = a + 13579
store [B], b
"""

PROGRAM_SRC = """\
start:
  n = 6
  i = 0
loop:
  x = load [v]
  s = x + i
  store [w], s
  i = i + 1
  c = i < n
  if c goto loop
done:
  halt
"""

MACHINE = MachineModel.homogeneous(2, 4)

#: Fast supervision for tests: near-instant restarts, short watchdog.
FAST = {
    "restart_policy": RestartPolicy(base_delay_s=0.01, cap_delay_s=0.1),
}


def _identical(serial, pooled):
    assert sorted(serial.traces) == sorted(pooled.traces)
    for head in serial.traces:
        assert program_signature(
            serial.traces[head].program
        ) == program_signature(pooled.traces[head].program), head


@pytest.fixture
def pool():
    worker_pool = WorkerPool(workers=2, **FAST)
    yield worker_pool
    worker_pool.shutdown()


# ======================================================================
# Supervision policy (no processes).
# ======================================================================
class TestRestartPolicy:
    def test_capped_exponential_backoff(self):
        policy = RestartPolicy(base_delay_s=0.05, cap_delay_s=2.0)
        delays = [policy.delay_for(n) for n in range(1, 9)]
        assert delays[:3] == [0.05, 0.1, 0.2]
        assert delays == sorted(delays)
        assert delays[-1] == 2.0  # capped, not 0.05 * 2**7

    def test_exhaustion_bar(self):
        policy = RestartPolicy(max_consecutive=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_success_resets_consecutive_failures(self):
        supervisor = Supervisor(1, RestartPolicy(max_consecutive=3))
        state = supervisor.states[0]
        supervisor.on_death(state, None)
        supervisor.on_death(state, None)
        assert state.consecutive_failures == 2
        supervisor.on_task_done(state)
        assert state.consecutive_failures == 0

    def test_backoff_gates_restart(self):
        supervisor = Supervisor(1, RestartPolicy(base_delay_s=10.0))
        state = supervisor.states[0]
        supervisor.on_death(state, None)
        assert not supervisor.may_restart(state)
        assert supervisor.may_restart(state, now=state.not_before + 1)

    def test_exhausted_slot_never_restarts_and_unhealthy(self):
        supervisor = Supervisor(
            1, RestartPolicy(base_delay_s=0.0, max_consecutive=2)
        )
        state = supervisor.states[0]
        supervisor.on_death(state, None)
        assert supervisor.healthy()
        supervisor.on_death(state, None)
        assert not supervisor.may_restart(state, now=time.monotonic() + 99)
        assert not supervisor.healthy()


class TestQuarantineRegistry:
    def test_trips_at_threshold(self):
        registry = QuarantineRegistry(threshold=2)
        assert not registry.record_death("k")
        assert not registry.hit("k")
        assert registry.record_death("k")
        assert registry.hit("k")
        snapshot = registry.snapshot()
        assert snapshot["keys"] == ["k"] and snapshot["trips"] == 1

    def test_keys_are_independent(self):
        registry = QuarantineRegistry(threshold=2)
        registry.record_death("a")
        registry.record_death("b")
        assert not registry.hit("a") and not registry.hit("b")


# ======================================================================
# The happy path: warm pool, bit-identical, reused across batches.
# ======================================================================
class TestWorkerPool:
    def test_bit_identical_to_serial(self, pool):
        program = parse_program(PROGRAM_SRC)
        serial = compile_program(program, MACHINE)
        pooled = compile_program(program, MACHINE, pool=pool)
        _identical(serial, pooled)
        run_s, ok_s = verify_compiled_program(serial, {("v", 0): 5})
        run_p, ok_p = verify_compiled_program(pooled, {("v", 0): 5})
        assert ok_s and ok_p and run_s.cycles == run_p.cycles

    def test_workers_reused_across_batches(self, pool):
        pids_before = [state.pid for state in pool.supervisor.states]
        for _ in range(3):
            compile_program(parse_program(PROGRAM_SRC), MACHINE, pool=pool)
        assert [state.pid for state in pool.supervisor.states] == pids_before
        assert sum(s.tasks_done for s in pool.supervisor.states) == 6
        assert pool.supervisor.parent_compiles == 0

    def test_fresh_uids_do_not_collide_with_shipped_ones(self, pool):
        # Workers fork before the parent parses anything, so their uid
        # counters trail the shipped instructions — the pool must lift
        # them (ensure_uid_floor) or DAG node identity corrupts.  Parse
        # *after* the pool exists to pin the regression.
        program = parse_program(PROGRAM_SRC)
        pooled = compile_program(program, MACHINE, pool=pool)
        assert pool.supervisor.parent_compiles == 0
        _identical(compile_program(program, MACHINE), pooled)

    def test_unpicklable_machine_degrades_to_none(self, pool):
        class Sabotage:
            def __reduce__(self):
                raise TypeError("nope")

        trace = parse_trace(TRACE_SRC)
        shards = [("k", trace)]
        assert pool.map_shards(shards, Sabotage(), "ursa") is None

    def test_closed_pool_returns_none(self):
        worker_pool = WorkerPool(workers=1, **FAST)
        worker_pool.shutdown()
        trace = parse_trace(TRACE_SRC)
        key = trace_key(trace, MACHINE, "ursa")
        assert worker_pool.map_shards([(key, trace)], MACHINE, "ursa") is None

    def test_snapshot_shape(self, pool):
        snapshot = pool.snapshot()
        assert snapshot["size"] == 2 and snapshot["alive"] == 2
        assert snapshot["healthy"] and not snapshot["closed"]
        assert len(snapshot["workers"]) == 2
        for worker in snapshot["workers"]:
            assert worker["alive"] and worker["pid"] is not None
        json.dumps(snapshot)  # must stay JSON-renderable for /v1/stats


# ======================================================================
# Crash recovery and the chaos sweep.
# ======================================================================
class TestCrashRecovery:
    def test_sigkilled_worker_restarts_and_output_is_bit_identical(self):
        program = parse_program(PROGRAM_SRC)
        serial = compile_program(program, MACHINE)
        with obs.capture() as observer:
            worker_pool = WorkerPool(workers=2, quarantine_threshold=3, **FAST)
            try:
                monkey = ChaosMonkey(seed=7, faults=("worker_kill",), rate=1.0)
                with chaos_scope(monkey):
                    pooled = compile_program(program, MACHINE, pool=worker_pool)
            finally:
                worker_pool.shutdown()
        _identical(serial, pooled)
        assert monkey.injected("worker_kill") >= 1
        assert observer.counters.get("serve.pool.worker_deaths", 0) >= 1
        assert observer.counters.get("serve.pool.restarts", 0) >= 1
        # rate 1.0 kills every dispatch, so both keys must end up
        # quarantined rather than crash-looping forever.
        assert observer.counters.get("serve.quarantine.trips", 0) == 2

    def test_25_seed_kill_sweep_never_corrupts_output(self):
        program = parse_program(PROGRAM_SRC)
        serial = compile_program(program, MACHINE)
        deaths = 0
        worker_pool = WorkerPool(workers=2, **FAST)
        try:
            for seed in range(25):
                monkey = ChaosMonkey(
                    seed=seed, faults=("worker_kill",), rate=0.4
                )
                with chaos_scope(monkey):
                    pooled = compile_program(program, MACHINE, pool=worker_pool)
                _identical(serial, pooled)
                deaths += monkey.injected("worker_kill")
        finally:
            worker_pool.shutdown()
        assert deaths >= 1, "sweep never injected a kill; rate too low?"

    def test_hung_worker_is_killed_and_shard_recovered(self):
        program = parse_program(PROGRAM_SRC)
        serial = compile_program(program, MACHINE)
        with obs.capture() as observer:
            worker_pool = WorkerPool(workers=2, hang_timeout_s=0.3, **FAST)
            try:
                monkey = ChaosMonkey(seed=3, faults=("worker_hang",), rate=1.0)
                with chaos_scope(monkey):
                    pooled = compile_program(program, MACHINE, pool=worker_pool)
            finally:
                worker_pool.shutdown()
        _identical(serial, pooled)
        assert observer.counters.get("serve.pool.hangs", 0) >= 1
        assert observer.counters.get("serve.pool.worker_deaths", 0) >= 1

    def test_slow_shard_fault_is_harmless(self):
        program = parse_program(PROGRAM_SRC)
        serial = compile_program(program, MACHINE)
        worker_pool = WorkerPool(workers=2, **FAST)
        try:
            monkey = ChaosMonkey(seed=5, faults=("slow_shard",), rate=1.0)
            with chaos_scope(monkey):
                pooled = compile_program(program, MACHINE, pool=worker_pool)
        finally:
            worker_pool.shutdown()
        _identical(serial, pooled)
        assert monkey.injected("slow_shard") >= 1
        assert worker_pool.supervisor.deaths == 0

    def test_memory_watermark_recycles_worker(self):
        worker_pool = WorkerPool(workers=1, max_worker_rss_mb=1, **FAST)
        try:
            worker_pool._rss_reader = lambda pid: 8 * 1024  # 8 MiB "RSS"
            pid_before = worker_pool.supervisor.states[0].pid
            trace = parse_trace(TRACE_SRC)
            key = trace_key(trace, MACHINE, "ursa")
            artifacts = worker_pool.map_shards([(key, trace)], MACHINE, "ursa")
            assert artifacts is not None and artifacts[0].key == key
            assert worker_pool.supervisor.mem_restarts == 1
            assert worker_pool.supervisor.states[0].pid != pid_before
            assert worker_pool.supervisor.states[0].alive
        finally:
            worker_pool.shutdown()


# ======================================================================
# Poisoned-trace quarantine.
# ======================================================================
class TestQuarantine:
    def test_poisoned_trace_is_quarantined_not_crash_looped(self, monkeypatch):
        import repro.serve.shard as shard_mod

        real = shard_mod._compile_one
        parent_pid = os.getpid()

        def poisoned(instructions, machine, method, deadline_ms, resilient,
                     key, analysis_manager=None):
            # Workers fork after this patch, so they inherit it; the
            # parent compiles the same trace fine — a genuine
            # "only dies in workers" poison.
            if os.getpid() != parent_pid and any(
                "13579" in str(inst) for inst in instructions
            ):
                os._exit(17)
            return real(instructions, machine, method, deadline_ms,
                        resilient, key, analysis_manager=analysis_manager)

        monkeypatch.setattr(shard_mod, "_compile_one", poisoned)
        worker_pool = WorkerPool(workers=2, quarantine_threshold=2, **FAST)
        try:
            poison = parse_trace(POISON_SRC)
            healthy = parse_trace(TRACE_SRC)
            shards = [
                (trace_key(poison, MACHINE, "ursa"), poison),
                (trace_key(healthy, MACHINE, "ursa"), healthy),
            ]
            artifacts = worker_pool.map_shards(shards, MACHINE, "ursa")
            assert artifacts is not None
            poisoned_artifact, healthy_artifact = artifacts
            # The poisoned shard killed exactly `threshold` workers,
            # then compiled in-parent under the fallback ladder with a
            # structured DegradationReport.
            degradation = poisoned_artifact.degradation
            assert degradation["quarantined"] is True
            assert degradation["degraded"] is True
            assert degradation["worker_deaths"] >= 2
            assert worker_pool.supervisor.quarantine.snapshot()["trips"] == 1
            # The healthy shard is untouched.
            assert not (healthy_artifact.degradation or {}).get("quarantined")
            # Subsequent requests skip the pool entirely (hit, no death).
            again = worker_pool.map_shards(shards[:1], MACHINE, "ursa")
            assert again[0].degradation["quarantined"] is True
            assert worker_pool.supervisor.quarantine.hits >= 1
        finally:
            worker_pool.shutdown()


# ======================================================================
# Admission control, drain, healthz (transport-free ServeApp).
# ======================================================================
class TestAdmission:
    def test_shed_beyond_queue_depth(self):
        from repro.serve.server import ServeApp

        app = ServeApp(cache=None, queue_depth=1)
        try:
            assert app.admit() is None  # occupy the only slot
            denied = app.admit()
            assert denied is not None
            status, body, headers = denied
            assert status == 503
            assert body["error"]["code"] == "overloaded"
            assert headers["Retry-After"] == "1"
            assert headers["Connection"] == "close"
            app.release()
            assert app.admit() is None  # slot free again
            app.release()
            assert app.shed == 1
        finally:
            app.close()

    def test_queue_flood_chaos_sheds(self):
        from repro.serve.server import ServeApp

        app = ServeApp(cache=None, queue_depth=100)
        try:
            monkey = ChaosMonkey(seed=0, faults=("queue_flood",), rate=1.0)
            with chaos_scope(monkey):
                status, body, headers = app.guarded_compile(
                    {"kind": "trace", "source": TRACE_SRC}
                )
            assert status == 503
            assert body["error"]["code"] == "overloaded"
            assert "Retry-After" in headers
            assert monkey.injected("queue_flood") == 1
        finally:
            app.close()

    def test_service_faults_are_registered_classes(self):
        for fault in SERVICE_FAULTS:
            ChaosMonkey(seed=0, faults=(fault,))  # must not raise


class TestDrain:
    def test_graceful_drain_exactly_once(self, monkeypatch):
        import repro.serve.server as server_mod

        started = threading.Event()
        release = threading.Event()

        def slow_handle(payload, cache, **kwargs):
            started.set()
            assert release.wait(5)
            return 200, {"ok": True, "result": {"slow": True}}

        monkeypatch.setattr(server_mod, "handle_payload", slow_handle)
        app = server_mod.ServeApp(cache=None)
        inflight = {}

        def request():
            status, body, _ = app.guarded_compile({"kind": "trace"})
            inflight["status"], inflight["body"] = status, body

        thread = threading.Thread(target=request)
        thread.start()
        assert started.wait(5)
        app.begin_drain()
        # New work is rejected while draining...
        status, body, headers = app.guarded_compile({"kind": "trace"})
        assert status == 503
        assert body["error"]["code"] == "draining"
        assert headers["Retry-After"] == "1"
        # ...but the in-flight request completes.
        release.set()
        thread.join(5)
        assert inflight["status"] == 200
        assert app.drain(5) is True
        # The flush happens exactly once, however many closes race in.
        assert app.close() is True
        assert app.close() is False
        assert app.flushes == 1

    def test_drain_timeout_reports_failure(self, monkeypatch):
        import repro.serve.server as server_mod

        app = server_mod.ServeApp(cache=None)
        try:
            assert app.admit() is None  # a request that never finishes
            app.begin_drain()
            assert app.drain(0.05) is False
        finally:
            app.release()
            app.close()


class TestHealthz:
    class _FakePool:
        size = 2

        def __init__(self, healthy=True, alive=2):
            self._snapshot = {
                "size": 2, "alive": alive, "healthy": healthy,
                "workers": [], "restarts": 0, "deaths": 0, "hangs": 0,
                "mem_restarts": 0, "parent_compiles": 0,
                "quarantine": {}, "closed": False,
            }

        def snapshot(self):
            return dict(self._snapshot)

        def shutdown(self):
            pass

    def test_ok_without_pool(self):
        from repro.serve.server import ServeApp

        app = ServeApp(cache=None)
        try:
            status, body = app.health()
            assert status == 200
            assert body == {"ok": True, "status": "ok", "workers": None}
        finally:
            app.close()

    def test_degraded_pool_is_still_200(self):
        from repro.serve.server import ServeApp

        app = ServeApp(cache=None, pool=self._FakePool(healthy=False, alive=0))
        try:
            status, body = app.health()
            assert status == 200  # in-parent compiles still work
            assert body["status"] == "degraded"
            assert body["workers"]["alive"] == 0
        finally:
            app.close()

    def test_healthy_pool_reports_workers(self):
        from repro.serve.server import ServeApp

        app = ServeApp(cache=None, pool=self._FakePool())
        try:
            status, body = app.health()
            assert status == 200 and body["status"] == "ok"
            assert body["workers"]["alive"] == 2
        finally:
            app.close()

    def test_draining_is_503(self):
        from repro.serve.server import ServeApp

        app = ServeApp(cache=None)
        try:
            app.begin_drain()
            status, body = app.health()
            assert status == 503 and body["status"] == "draining"
        finally:
            app.close()
        status, body = app.health()
        assert status == 503 and body["status"] == "closed"

    def test_stats_reports_pool_and_service(self):
        from repro.serve.server import ServeApp

        app = ServeApp(cache=None, pool=self._FakePool(), queue_depth=7)
        try:
            stats = app.stats()
            assert stats["pool"]["alive"] == 2
            assert stats["service"]["queue_depth"] == 7
            assert stats["service"]["inflight"] == 0
            assert stats["config"]["workers"] == 2
        finally:
            app.close()


# ======================================================================
# Client retry/backoff.
# ======================================================================
class TestClientRetry:
    def _client(self, **kwargs):
        from repro.serve.client import ServeClient

        import random

        sleeps = []
        client = ServeClient(
            "http://127.0.0.1:1",  # never actually contacted in unit tests
            max_retries=kwargs.pop("max_retries", 3),
            backoff_base_s=kwargs.pop("backoff_base_s", 0.1),
            backoff_cap_s=kwargs.pop("backoff_cap_s", 10.0),
            sleep=sleeps.append,
            rng=random.Random(0),
            **kwargs,
        )
        return client, sleeps

    def test_retries_transient_failures_then_succeeds(self, monkeypatch):
        from repro.serve.client import _Retryable

        client, sleeps = self._client()
        attempts = []

        def flaky(method, path, payload=None):
            attempts.append(path)
            if len(attempts) < 3:
                raise _Retryable(ConnectionResetError("boom"))
            return {"ok": True, "result": {"fine": True}}

        monkeypatch.setattr(client, "_once", flaky)
        body = client._request("POST", "/v1/compile", {})
        assert body["result"]["fine"]
        assert client.retries == 2 and len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential growth (jitter < 2x)

    def test_budget_exhaustion_raises_original_error(self, monkeypatch):
        from repro.serve.client import ServeError, _Retryable

        client, sleeps = self._client(max_retries=2)

        def always_shed(method, path, payload=None):
            raise _Retryable(
                ServeError({"code": "overloaded", "message": "shed"}, 503)
            )

        monkeypatch.setattr(client, "_once", always_shed)
        with pytest.raises(ServeError) as excinfo:
            client._request("POST", "/v1/compile", {})
        assert excinfo.value.status == 503
        assert client.retries == 2 and len(sleeps) == 2

    def test_honors_retry_after_as_floor(self, monkeypatch):
        from repro.serve.client import _Retryable

        client, sleeps = self._client(backoff_base_s=0.001, backoff_cap_s=9.0)
        calls = []

        def shed_once(method, path, payload=None):
            calls.append(1)
            if len(calls) == 1:
                raise _Retryable(ConnectionResetError(), retry_after=2.5)
            return {"ok": True}

        monkeypatch.setattr(client, "_once", shed_once)
        client._request("GET", "/v1/stats")
        assert sleeps == [2.5]

    def test_cap_bounds_even_retry_after(self, monkeypatch):
        from repro.serve.client import _Retryable

        client, sleeps = self._client(backoff_cap_s=0.05)

        def shed_once(method, path, payload=None):
            if not sleeps:
                raise _Retryable(ConnectionResetError(), retry_after=60.0)
            return {"ok": True}

        monkeypatch.setattr(client, "_once", shed_once)
        client._request("GET", "/v1/stats")
        assert sleeps == [0.05]

    def test_health_never_retries(self, monkeypatch):
        client, sleeps = self._client()
        assert client.health() is False  # connection refused, no retries
        assert sleeps == [] and client.retries == 0

    def test_stats_carries_retry_count(self, monkeypatch):
        client, _ = self._client()
        monkeypatch.setattr(
            client, "_once", lambda *a, **k: {"ok": True, "counters": {}}
        )
        client.retries = 5
        assert client.stats()["client"]["retries"] == 5


# ======================================================================
# End-to-end over HTTP: flood shed + client recovery, pooled server.
# ======================================================================
@pytest.fixture
def pooled_server(tmp_path):
    from repro.serve.server import make_server

    srv = make_server(
        port=0, cache=None, workers=2, queue_depth=4,
        pool_options=dict(FAST),
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    srv.app.close()


class TestPooledServer:
    def _client(self, srv, **kwargs):
        from repro.serve.client import ServeClient

        host, port = srv.server_address[:2]
        return ServeClient(f"http://{host}:{port}", timeout=30.0, **kwargs)

    def test_program_request_uses_the_pool(self, pooled_server):
        client = self._client(pooled_server)
        result = client.compile_program(
            PROGRAM_SRC, machine={"fus": 2, "regs": 4}, memory={"v": 5}
        )
        assert result["verified"]
        assert set(result["signatures"]) == set(result["traces"])
        stats = client.stats()
        assert stats["pool"]["size"] == 2
        assert stats["counters"].get("serve.pool.tasks", 0) >= 1

    def test_signatures_stable_across_requests(self, pooled_server):
        client = self._client(pooled_server)
        machine = {"fus": 2, "regs": 4}
        first = client.compile_program(PROGRAM_SRC, machine=machine, memory={"v": 5})
        second = client.compile_program(PROGRAM_SRC, machine=machine, memory={"v": 5})
        assert first["signatures"] == second["signatures"]

    def test_healthz_reports_workers(self, pooled_server):
        client = self._client(pooled_server)
        detail = client.health_detail()
        assert detail["ok"] and detail["status"] == "ok"
        assert detail["workers"]["alive"] == 2

    def test_queue_flood_is_503_and_client_recovers(self, pooled_server):
        import random

        client = self._client(
            pooled_server, max_retries=6,
            backoff_base_s=0.01, backoff_cap_s=0.05,
        )
        client._rng = random.Random(0)
        # Seed 1 at rate 0.6 floods the first admission (draw 0.134)
        # and passes the second (draw 0.847): exactly one shed, one
        # transparent retry, well inside the budget of 6.
        monkey = ChaosMonkey(seed=1, faults=("queue_flood",), rate=0.6)
        with chaos_scope(monkey):
            result = client.compile_trace(TRACE_SRC, machine={"fus": 2, "regs": 4})
        assert result["cycles_estimate"] > 0
        assert monkey.injected("queue_flood") >= 1, "flood never fired"
        assert client.retries >= 1, "client never had to retry"

    def test_full_flood_is_shed_never_hangs(self, pooled_server):
        from repro.serve.client import ServeError

        client = self._client(
            pooled_server, max_retries=2,
            backoff_base_s=0.01, backoff_cap_s=0.02,
        )
        monkey = ChaosMonkey(seed=0, faults=("queue_flood",), rate=1.0)
        started = time.monotonic()
        with chaos_scope(monkey):
            with pytest.raises(ServeError) as excinfo:
                client.compile_trace(TRACE_SRC)
        assert excinfo.value.status == 503  # shed, not a hang or a 500
        assert excinfo.value.code == "overloaded"
        assert time.monotonic() - started < 10.0
        assert client.retries == 2


# ======================================================================
# cache gc: bounds, determinism, counters.
# ======================================================================
class TestCacheGC:
    def _populate(self, root, count=4):
        cache = CompileCache(root)
        paths = []
        for index in range(count):
            trace = parse_trace(TRACE_SRC.replace("a + b", f"a + {index}"))
            key = trace_key(trace, MACHINE, "ursa")
            from repro.serve.shard import _compile_one

            cache.put(_compile_one(trace, MACHINE, "ursa", None, False, key))
            path = cache._object_path(key)
            stamp = 1_000_000 + index * 1000
            os.utime(path, (stamp, stamp))
            paths.append(path)
        return cache, paths

    def test_gc_counts_and_bytes(self, tmp_path):
        cache, paths = self._populate(tmp_path / "store")
        with obs.capture() as observer:
            outcome = cache.gc(max_bytes=0)
        assert outcome["removed"] == 4 and outcome["remaining"] == 0
        assert outcome["removed_bytes"] > 0
        assert observer.counters["serve.cache.gc_evicted"] == 4
        assert observer.counters["serve.cache_evict"] == 4

    def test_gc_evicts_oldest_first_deterministically(self, tmp_path):
        cache, paths = self._populate(tmp_path / "store")
        total = sum(path.stat().st_size for path in paths)
        keep = total - paths[0].stat().st_size - paths[1].stat().st_size
        outcome = cache.gc(max_bytes=keep)
        assert outcome["removed"] == 2
        # The two oldest (lowest mtime) objects went first.
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()

    def test_gc_by_age(self, tmp_path):
        cache, paths = self._populate(tmp_path / "store", count=2)
        now = time.time()
        os.utime(paths[1], (now, now))  # fresh
        outcome = cache.gc(max_age_days=1)
        assert outcome["removed"] == 1
        assert not paths[0].exists() and paths[1].exists()
