"""Shared fixtures: the paper's running example and common machines."""

from __future__ import annotations

import pytest

from repro.graph.dag import DependenceDAG
from repro.ir.parser import parse_trace
from repro.machine.model import MachineModel

#: The paper's Figure 2 basic block (plus a store making K observable).
FIGURE2_SOURCE = """
A = load [v]
B = A * 2
C = A * 3
D = A + 5
E = B + C
F = B * C
G = D * 2
H = D / 3
I = E / F
J = G + H
K = I + J
store [z], K
"""


@pytest.fixture
def fig2_trace():
    return parse_trace(FIGURE2_SOURCE)


@pytest.fixture
def fig2_dag(fig2_trace):
    return DependenceDAG.from_trace(fig2_trace)


@pytest.fixture
def fig2_names(fig2_dag):
    """uid -> the paper's node letter (store node labelled 'store')."""
    names = {}
    for uid in fig2_dag.op_nodes():
        text = str(fig2_dag.instruction(uid))
        names[uid] = "store" if text.startswith("store") else text.split(" ")[0]
    return names


@pytest.fixture
def fig2_uid_of(fig2_names):
    return {name: uid for uid, name in fig2_names.items()}


@pytest.fixture
def machine44():
    return MachineModel.homogeneous(4, 4)


@pytest.fixture
def machine48():
    return MachineModel.homogeneous(4, 8)


@pytest.fixture
def big_machine():
    return MachineModel.homogeneous(16, 64)
