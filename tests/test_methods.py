"""The declarative backend registry (``repro.methods``), the exact
branch-and-bound backend, and the portfolio racer."""

from __future__ import annotations

import pytest

from repro.graph.dag import DependenceDAG
from repro.machine.model import MachineModel
from repro.methods import (
    Backend,
    UnknownMethodError,
    backends,
    catalogue,
    default_compare_methods,
    ladder_for,
    method_names,
    resolve,
)
from repro.methods.bnb import ExactSearchError, bnb_compile
from repro.pipeline import METHODS, PipelineError, compile_trace
from repro.resilience.budgets import Deadline, DeadlineExpired, deadline_scope
from repro.scheduling.list_scheduler import ListScheduler, ScheduleError
from repro.scheduling.optimal import optimal_schedule_length
from repro.workloads.kernels import kernel
from repro.workloads.random_dags import random_layered_trace


# ======================================================================
# The registry contract.
# ======================================================================
class TestRegistry:
    def test_method_names_cover_all_backends(self):
        assert method_names() == tuple(b.name for b in backends())
        assert METHODS == method_names()

    def test_every_backend_has_exactly_one_entrypoint(self):
        for backend in backends():
            assert (backend.policy is None) != (backend.schedule_pass is None)

    def test_backend_rejects_zero_or_two_entrypoints(self):
        with pytest.raises(ValueError):
            Backend(name="x", summary="no entrypoint")
        with pytest.raises(ValueError):
            Backend(
                name="x", summary="both", policy=object(),
                schedule_pass=lambda state: None,
            )

    def test_unknown_method_is_structured(self):
        with pytest.raises(UnknownMethodError) as excinfo:
            resolve("bogus")
        assert excinfo.value.method == "bogus"
        assert excinfo.value.known == method_names()
        assert "known methods" in str(excinfo.value)
        assert "ursa" in str(excinfo.value)

    def test_unknown_method_maps_to_pipeline_error(self):
        with pytest.raises(PipelineError, match="known methods"):
            compile_trace(
                kernel("figure2"), MachineModel.homogeneous(4, 8),
                method="bogus",
            )

    def test_default_compare_set_from_registry(self):
        assert default_compare_methods() == (
            "ursa", "prepass", "postpass", "goodman-hsu"
        )
        assert default_compare_methods() == tuple(
            b.name for b in backends() if b.default_compare
        )

    def test_catalogue_shape(self):
        entries = catalogue()
        assert [e["name"] for e in entries] == list(method_names())
        for entry in entries:
            assert set(entry) >= {
                "name", "summary", "capabilities", "fallback", "ladder",
            }
        by_name = {e["name"]: e for e in entries}
        assert by_name["bnb-exact"]["capabilities"]["exact"]
        assert by_name["spill-everywhere"]["capabilities"]["always_feasible"]


# ======================================================================
# Ladder equivalence: the registry must reproduce the legacy
# ``resilience.fallback._LADDER`` byte for byte.
# ======================================================================
LEGACY_LADDERS = {
    "ursa": ("ursa", "ursa-phased", "ursa-spill", "spill-everywhere"),
    "ursa-phased": ("ursa-phased", "ursa-spill", "spill-everywhere"),
    "ursa-seq": ("ursa-seq", "ursa-spill", "spill-everywhere"),
    "ursa-spill": ("ursa-spill", "spill-everywhere"),
    "prepass": ("prepass", "spill-everywhere"),
    "postpass": ("postpass", "spill-everywhere"),
    "goodman-hsu": ("goodman-hsu", "spill-everywhere"),
    "naive": ("naive", "spill-everywhere"),
    "spill-everywhere": ("spill-everywhere",),
}


class TestLadders:
    @pytest.mark.parametrize("method,expected", sorted(LEGACY_LADDERS.items()))
    def test_registry_matches_legacy_ladder(self, method, expected):
        assert ladder_for(method) == expected
        assert resolve(method).ladder() == expected

    def test_fallback_module_reexports_registry_ladder(self):
        from repro.resilience.fallback import ladder_for as fallback_ladder_for

        assert fallback_ladder_for is ladder_for

    def test_unknown_method_has_no_ladder(self):
        # The legacy ladder_for silently fell back to the unknown method
        # alone; registry resolution makes that a structured error.
        with pytest.raises(UnknownMethodError):
            ladder_for("bogus")

    def test_every_ladder_ends_always_feasible(self):
        for backend in backends():
            if backend.name == "bnb-exact":
                continue  # terminates in ursa's ladder via its fallback
            last = resolve(backend.ladder()[-1])
            assert last.always_feasible or last.name == backend.name

    def test_bnb_ladder_escalates_to_heuristics(self):
        assert ladder_for("bnb-exact")[:2] == ("bnb-exact", "ursa")
        assert ladder_for("bnb-exact")[-1] == "spill-everywhere"


# ======================================================================
# The exact backend.
# ======================================================================
class TestBnbExact:
    def test_fig2_proves_optimal(self):
        machine = MachineModel.homogeneous(4, 6)
        result = compile_trace(kernel("figure2"), machine, method="bnb-exact")
        assert result.verified
        report = result.backend_report
        assert report["backend"] == "bnb-exact"
        assert report["proved"]
        assert result.stats.cycles == report["length"] == 6

    def test_agrees_with_dp_oracle_and_proof_rate(self):
        """Bit-agreement with ``scheduling/optimal.py`` on load-based
        traces (no live-ins, where both register models coincide), and
        the >=90% proof-rate acceptance bar under a 2s deadline."""
        machine = MachineModel.homogeneous(2, 4)
        proved = tried = 0
        for seed in range(6):
            trace = random_layered_trace(
                n_ops=10, width=3, seed=seed, n_inputs=2
            )
            dag = DependenceDAG.from_trace(trace)
            optimum = optimal_schedule_length(dag, machine)
            if optimum is None:
                continue
            result = compile_trace(
                trace, machine, method="bnb-exact",
                deadline=Deadline(seconds=2.0),
            )
            assert result.verified
            tried += 1
            report = result.backend_report
            if report["proved"]:
                proved += 1
                assert result.stats.cycles == optimum
            assert result.stats.cycles >= optimum
        assert tried >= 4
        assert proved / tried >= 0.9

    def test_never_beats_a_sound_lower_bound(self):
        from repro.analyze.bounds import length_lower_bound

        machine = MachineModel.homogeneous(2, 6)
        for seed in range(4):
            trace = random_layered_trace(
                n_ops=10, width=3, seed=seed, n_inputs=2
            )
            dag = DependenceDAG.from_trace(trace)
            result = compile_trace(trace, machine, method="bnb-exact")
            assert result.stats.cycles >= length_lower_bound(dag, machine)

    def test_infeasible_register_file_fails_fast(self):
        # figure2's pressure floor is 2: one register fast-fails before
        # any search, two exhausts the search and proves infeasibility.
        dag = DependenceDAG.from_trace(kernel("figure2"))
        with pytest.raises(ExactSearchError, match="pressure floor"):
            bnb_compile(dag, MachineModel.homogeneous(4, 1))
        with pytest.raises(ExactSearchError, match="no spill-free schedule"):
            bnb_compile(dag, MachineModel.homogeneous(4, 2))

    def test_op_cap_is_configurable(self):
        trace = random_layered_trace(n_ops=18, width=3, seed=0, n_inputs=2)
        dag = DependenceDAG.from_trace(trace)
        machine = MachineModel.homogeneous(4, 10)
        with pytest.raises(ExactSearchError, match="bnb_max_ops"):
            bnb_compile(dag, machine, max_ops=10)
        result = compile_trace(
            trace, machine, method="bnb-exact",
            backend_options={"bnb_max_ops": 32},
        )
        assert result.verified

    def test_anytime_returns_best_so_far_on_expiry(self, monkeypatch):
        """An expired deadline degrades to the heuristic incumbent with
        ``proved=False`` instead of raising."""
        import repro.methods.bnb as bnb_mod

        trace = random_layered_trace(n_ops=14, width=3, seed=0, n_inputs=2)
        dag = DependenceDAG.from_trace(trace)
        machine = MachineModel.homogeneous(2, 4)
        from repro.analyze.bounds import length_lower_bound

        incumbent = ListScheduler(
            dag, machine, respect_registers=True, allow_spill=False
        ).run()
        # The scenario needs a search phase: the incumbent must sit
        # above the static bound (holds for this fixed workload).
        assert incumbent.length > length_lower_bound(dag, machine)

        monkeypatch.setattr(bnb_mod, "_DEADLINE_STRIDE", 1)
        with deadline_scope(Deadline(seconds=0.0)):
            schedule, certificate = bnb_compile(dag, machine)
        assert not certificate.proved
        assert certificate.source == "incumbent"
        assert schedule.length == incumbent.length

    def test_escalates_through_ladder_when_resilient(self):
        machine = MachineModel.homogeneous(4, 2)  # bnb cannot fit, ursa spills
        result = compile_trace(
            kernel("figure2"), machine, method="bnb-exact", resilient=True
        )
        assert result.verified
        assert result.degradation is not None
        assert result.degradation.degraded
        assert result.degradation.final_method != "bnb-exact"


# ======================================================================
# The portfolio racer.
# ======================================================================
class TestPortfolio:
    MACHINE = MachineModel.homogeneous(4, 6)

    def test_serial_race_is_deterministic(self):
        results = [
            compile_trace(kernel("figure2"), self.MACHINE, method="portfolio")
            for _ in range(2)
        ]
        assert results[0].backend_report["winner"] == (
            results[1].backend_report["winner"]
        )
        assert str(results[0].program) == str(results[1].program)
        assert results[0].stats.cycles == results[1].stats.cycles

    def test_never_worse_than_best_member(self):
        members = ("bnb-exact", "ursa", "prepass", "goodman-hsu")
        for trace in (kernel("figure2"), kernel("dot-product")):
            best = None
            for member in members:
                try:
                    single = compile_trace(trace, self.MACHINE, method=member)
                except (PipelineError, ExactSearchError):
                    continue
                cycles = single.stats.cycles
                best = cycles if best is None else min(best, cycles)
            result = compile_trace(trace, self.MACHINE, method="portfolio")
            assert result.verified
            assert result.stats.cycles <= best

    def test_exact_winner_under_generous_deadline(self):
        result = compile_trace(
            kernel("figure2"), self.MACHINE, method="portfolio",
            deadline=Deadline(seconds=30.0),
            backend_options={"portfolio_members": ("bnb-exact", "prepass")},
        )
        assert result.verified
        report = result.backend_report
        assert report["mode"] in ("race", "serial")  # pool may be denied
        assert report["exact_delivered"]
        assert result.stats.cycles == report["length_lower_bound"] == 6

    def test_heuristics_win_when_exact_cannot_run(self):
        # 24+ ops exceed bnb-exact's default cap, so it loses the race
        # and a heuristic must deliver the answer.
        trace = random_layered_trace(n_ops=20, width=3, seed=1, n_inputs=2)
        result = compile_trace(
            trace, MachineModel.homogeneous(4, 10), method="portfolio",
            backend_options={"portfolio_members": ("bnb-exact", "prepass")},
        )
        assert result.verified
        report = result.backend_report
        assert report["winner"] == "prepass"
        assert not report["exact_delivered"]
        outcomes = {m["method"]: m["outcome"] for m in report["members"]}
        assert outcomes["bnb-exact"] == "failed"
        assert outcomes["prepass"] == "ok"

    def test_portfolio_cannot_race_itself(self):
        from repro.core.allocator import AllocationError

        with pytest.raises((AllocationError, PipelineError)):
            compile_trace(
                kernel("figure2"), self.MACHINE, method="portfolio",
                backend_options={"portfolio_members": ("portfolio",)},
            )

    def test_unknown_member_is_structured(self):
        with pytest.raises((UnknownMethodError, PipelineError)):
            compile_trace(
                kernel("figure2"), self.MACHINE, method="portfolio",
                backend_options={"portfolio_members": ("bogus",)},
            )

    def test_attribution_reaches_degradation_report(self):
        result = compile_trace(
            kernel("figure2"), self.MACHINE, method="portfolio",
            resilient=True,
        )
        assert result.degradation is not None
        winning = [a for a in result.degradation.attempts if a.outcome == "ok"]
        assert winning
        assert "portfolio winner" in winning[0].reason


# ======================================================================
# Capability-driven doomed rungs (analyze layer).
# ======================================================================
class TestDoomedRungs:
    def test_no_spill_backends_doomed_when_floor_exceeds_file(self):
        from repro.analyze import feasibility_report

        dag = DependenceDAG.from_trace(kernel("figure2"))
        feasibility = feasibility_report(
            dag, MachineModel.homogeneous(4, 1)
        )
        doomed = feasibility.doomed_rungs()
        no_spill = {
            b.name for b in backends()
            if not b.can_spill and not b.always_feasible
        }
        assert no_spill <= set(doomed)
        for reason in doomed.values():
            assert "cannot" in reason
