"""Tests for the preset machine configurations."""

import pytest

from repro.machine.presets import PRESETS, all_presets, preset
from repro.pipeline import compile_trace
from repro.workloads.kernels import kernel


class TestPresets:
    def test_registry_complete(self):
        assert set(PRESETS) == {"narrow", "research", "trace7", "cydra", "dsp"}

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            preset("cray")

    def test_all_presets_valid_machines(self):
        for machine in all_presets():
            assert machine.total_fus >= 2
            assert machine.total_registers >= 4

    def test_cydra_is_pipelined(self):
        machine = preset("cydra")
        assert all(fu.pipelined for fu in machine.fu_classes)
        mem = machine.fu_class("mem")
        assert mem.latency == 4 and mem.occupancy == 1

    def test_trace7_shape(self):
        machine = preset("trace7")
        assert machine.fu_class("alu").count == 4
        assert machine.fu_class("mem").count == 1

    @pytest.mark.parametrize("name", sorted(PRESETS))
    @pytest.mark.parametrize("method", ["ursa", "goodman-hsu"])
    def test_kernels_compile_on_every_preset(self, name, method):
        machine = preset(name)
        result = compile_trace(kernel("saxpy"), machine, method=method)
        assert result.verified

    def test_dsp_register_classes(self):
        machine = preset("dsp")
        assert set(machine.registers) == {"int", "flt"}
