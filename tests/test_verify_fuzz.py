"""Fuzz cross-check: the static verifier vs. the execution oracle.

Two properties, over randomized traces:

1. **Soundness on good pipelines** — anything the pipeline produces and
   the simulator accepts must pass every error-severity rule (no false
   positives).
2. **Coverage on broken artifacts** — whenever a corrupted schedule
   makes the end-to-end oracle (simulate + compare against the
   reference interpreter) reject, the static verifier must have flagged
   an error *first*.  The verifier may be stricter than the oracle
   (a mangled schedule can still luckily compute the right memory), but
   never blinder.
"""

from __future__ import annotations

import random

import pytest

from repro.machine.model import MachineModel
from repro.machine.simulator import SimulationError
from repro.pipeline import (
    compile_trace,
    synthesize_memory,
    verify_program,
)
from repro.core.codegen import lower_schedule
from repro.verify import verify_compilation, verify_schedule
from repro.workloads.random_dags import (
    random_layered_trace,
    random_series_parallel,
    random_wide_trace,
)

MACHINES = [
    MachineModel.homogeneous(2, 4),
    MachineModel.homogeneous(4, 8),
    MachineModel.classed(alu=2, mul=1, mem=2, branch=1, alu_regs=6),
]

GENERATORS = {
    "layered": lambda seed: random_layered_trace(n_ops=24, width=5, seed=seed),
    "series-parallel": lambda seed: random_series_parallel(
        n_blocks=4, seed=seed
    ),
    "wide": lambda seed: random_wide_trace(
        n_chains=4, chain_length=4, seed=seed
    ),
}


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.describe())
@pytest.mark.parametrize("shape", sorted(GENERATORS))
@pytest.mark.parametrize("method", ["ursa", "prepass", "goodman-hsu"])
def test_clean_random_pipelines(shape, machine, method):
    for seed in range(3):
        trace = GENERATORS[shape](seed)
        result = compile_trace(trace, machine, method=method)
        assert result.verified
        report = verify_compilation(result, remeasure=True)
        assert not report.errors(), report.render()


def test_verify_each_clean_on_random_traces():
    from repro.core.allocator import URSAAllocator
    from repro.graph.dag import DependenceDAG

    machine = MachineModel.homogeneous(2, 4)
    for seed in range(5):
        trace = random_layered_trace(n_ops=20, width=5, seed=seed)
        allocator = URSAAllocator(machine, verify_each=True)
        allocator.run(DependenceDAG.from_trace(trace))  # must not raise


# ----------------------------------------------------------------------
# Corruption menu: each entry mutates a (hopefully) correct schedule.
# Returns False when it could not apply (e.g. nothing to corrupt).
# ----------------------------------------------------------------------
def _shift_op_earlier(schedule, rng):
    movable = [op for op in schedule.ops if op.cycle > 0]
    if not movable:
        return False
    rng.choice(movable).cycle = 0
    return True


def _collide_fu(schedule, rng):
    if len(schedule.ops) < 2:
        return False
    a, b = rng.sample(schedule.ops, 2)
    b.fu_class, b.fu_index, b.cycle = a.fu_class, a.fu_index, a.cycle
    return True


def _drop_op(schedule, rng):
    real = [op for op in schedule.ops if op.uid is not None]
    if not real:
        return False
    schedule.ops.remove(rng.choice(real))
    return True


def _merge_registers(schedule, rng):
    names = sorted(schedule.reg_assignment)
    if len(names) < 2:
        return False
    a, b = rng.sample(names, 2)
    schedule.reg_assignment[b] = schedule.reg_assignment[a]
    return True


def _drop_binding(schedule, rng):
    if not schedule.reg_assignment:
        return False
    del schedule.reg_assignment[rng.choice(sorted(schedule.reg_assignment))]
    return True


CORRUPTIONS = {
    "shift-earlier": _shift_op_earlier,
    "fu-collision": _collide_fu,
    "drop-op": _drop_op,
    "merge-regs": _merge_registers,
    "drop-binding": _drop_binding,
}


def _oracle_accepts(result):
    """Re-run the end-to-end check on the (possibly corrupted) schedule."""
    try:
        program = lower_schedule(result.schedule)
        memory = synthesize_memory(result.dag)
        _, ok = verify_program(
            result.dag, program, result.machine, memory,
            result.schedule.live_out_regs,
        )
        return ok
    except Exception:
        # Lowering or simulation blew up outright — the oracle rejects.
        return False


@pytest.mark.parametrize("corruption", sorted(CORRUPTIONS))
def test_verifier_flags_everything_the_oracle_rejects(corruption):
    machine = MachineModel.homogeneous(2, 6)
    mutate = CORRUPTIONS[corruption]
    applied = checked = 0
    for seed in range(6):
        rng = random.Random(seed * 1009 + 7)
        trace = random_layered_trace(n_ops=18, width=4, seed=seed)
        result = compile_trace(trace, machine, method="ursa", verify=False)
        if not mutate(result.schedule, rng):
            continue
        applied += 1
        report = verify_schedule(
            result.schedule, dag=result.dag, machine=result.machine
        )
        if not _oracle_accepts(result):
            checked += 1
            assert not report.ok, (
                f"{corruption} seed {seed}: simulation rejects the schedule "
                "but the static verifier saw nothing"
            )
    assert applied >= 3, f"{corruption}: corruption rarely applicable"
    assert checked >= 1, (
        f"{corruption}: oracle never rejected — corruption too weak to "
        "exercise the cross-check"
    )


def test_simulation_error_implies_verifier_error():
    # The harshest corruptions raise SimulationError; the verifier must
    # flag those schedules statically as well.
    machine = MachineModel.homogeneous(2, 6)
    flagged = raised = 0
    for seed in range(8):
        trace = random_layered_trace(n_ops=16, width=4, seed=seed)
        result = compile_trace(trace, machine, method="ursa", verify=False)
        real = [op for op in result.schedule.ops if op.uid is not None]
        if len(real) < 2:
            continue
        rng = random.Random(seed)
        victim = rng.choice(real)
        victim.fu_index = 99  # no such unit
        try:
            program = lower_schedule(result.schedule)
            memory = synthesize_memory(result.dag)
            verify_program(
                result.dag, program, result.machine, memory,
                result.schedule.live_out_regs,
            )
        except (SimulationError, Exception):
            raised += 1
        report = verify_schedule(result.schedule, machine=result.machine)
        if not report.ok:
            flagged += 1
    assert raised >= 1
    assert flagged == 8, "sched.fu-class must catch every bogus unit index"
