"""Branch inversion when a trace follows a CBR's *taken* edge."""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_program
from repro.ir.trace import Trace, main_trace
from repro.machine.model import MachineModel
from repro.pipeline import compile_trace
from repro.program_compiler import compile_program, verify_compiled_program


def taken_hot_program():
    program = parse_program(
        """
        L0:
          v = load [a]
          c = v < 100
          if c goto Lhot
        Lcold:
          store [z], 0
          halt
        Lhot:
          w = v * 2
          store [z], w
          halt
        """
    )
    program.set_edge_weight("L0", "Lhot", 99.0)
    program.set_edge_weight("L0", "Lcold", 1.0)
    return program


class TestInversion:
    def test_trace_takes_the_hot_edge(self):
        trace = main_trace(taken_hot_program())
        assert trace.labels == ["L0", "Lhot"]

    def test_flatten_inverts_the_branch(self):
        trace = main_trace(taken_hot_program())
        flat = trace.flatten()
        cbrs = [inst for inst in flat if inst.op is Opcode.CBR]
        assert len(cbrs) == 1
        # The synthesized side exit now targets the cold block.
        assert cbrs[0].target == "Lcold"
        # An inverted condition (cond == 0) feeds it.
        inverted = [
            inst for inst in flat
            if inst.op is Opcode.CMPEQ and inst.dest.startswith("__not")
        ]
        assert len(inverted) == 1

    def test_flatten_is_cached_and_consistent(self):
        trace = main_trace(taken_hot_program())
        first = trace.flatten()
        second = trace.flatten()
        assert [i.uid for i in first] == [i.uid for i in second]
        # side_exit_liveness keys refer to the same synthesized CBR.
        (uid,) = trace.side_exit_liveness().keys()
        assert uid in {i.uid for i in first}

    def test_side_exit_liveness_uses_cold_target(self):
        trace = main_trace(taken_hot_program())
        (names,) = trace.side_exit_liveness().values()
        # Lcold uses nothing from the trace.
        assert names == frozenset()

    def test_inverted_trace_compiles_and_verifies(self):
        trace = main_trace(taken_hot_program())
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(trace, machine, memory={("a", 0): 7})
        assert result.verified
        assert result.simulation.stores_to("z") == {0: 14}

    @pytest.mark.parametrize("value,expected", [(7, 14), (500, 0)])
    def test_whole_program_both_paths(self, value, expected):
        program = taken_hot_program()
        machine = MachineModel.homogeneous(2, 4)
        compiled = compile_program(program, machine, method="ursa")
        run, ok = verify_compiled_program(compiled, {("a", 0): value})
        assert ok
        assert run.stores_to("z") == {0: expected}
