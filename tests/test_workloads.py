"""Tests for workload generators: structure, determinism, and semantics."""

import pytest

from repro.graph.dag import DependenceDAG
from repro.ir.interp import run_trace
from repro.ir.rename import is_single_assignment
from repro.pipeline import synthesize_memory
from repro.workloads.kernels import KERNELS, kernel
from repro.workloads.random_dags import (
    random_expression_tree,
    random_layered_trace,
    random_series_parallel,
    random_wide_trace,
)


def interpretable(trace, seed=0):
    dag = DependenceDAG.from_trace(trace)
    memory = synthesize_memory(dag, seed)
    return run_trace(trace, memory)


class TestKernels:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_interpretable(self, name):
        result = interpretable(kernel(name))
        assert result.steps > 0

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_single_assignment(self, name):
        assert is_single_assignment(kernel(name))

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_produce_output(self, name):
        trace = kernel(name)
        stores = [i for i in trace if i.is_memory_write]
        assert stores, f"{name} writes nothing observable"

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            kernel("quantum-fft")

    def test_dot_product_value(self):
        trace = kernel("dot-product", unroll=3)
        memory = {("a", i): i + 1 for i in range(3)}
        memory.update({("b", i): 2 for i in range(3)})
        result = run_trace(trace, memory)
        assert result.stores_to("sum") == {0: 12}

    def test_horner_vs_estrin_agree(self):
        degree = 7
        memory = {("x", 0): 3}
        memory.update({("c", i): i + 1 for i in range(degree + 1)})
        h = run_trace(kernel("horner", degree=degree), memory)
        e = run_trace(kernel("estrin", degree=degree), memory)
        assert h.stores_to("p") == e.stores_to("p")

    def test_matmul_value(self):
        n = 2
        memory = {("A", i): 1 for i in range(4)}
        memory.update({("B", i): i for i in range(4)})
        result = run_trace(kernel("matmul", n=n), memory)
        # Each C entry = column sums of B: [0+2, 1+3].
        assert result.stores_to("C") == {0: 2, 1: 4, 2: 2, 3: 4}

    def test_unroll_scales_size(self):
        small = kernel("dot-product", unroll=2)
        big = kernel("dot-product", unroll=8)
        assert len(big) > len(small)

    def test_figure2_matches_paper_node_count(self):
        # 11 value-producing ops + one observing store.
        assert len(kernel("figure2")) == 12


class TestRandomGenerators:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: random_layered_trace(n_ops=20, width=4, seed=s),
            lambda s: random_expression_tree(depth=3, seed=s),
            lambda s: random_series_parallel(seed=s),
            lambda s: random_wide_trace(seed=s),
        ],
        ids=["layered", "tree", "series-parallel", "wide"],
    )
    def test_deterministic_in_seed(self, factory):
        first = [str(i) for i in factory(7)]
        second = [str(i) for i in factory(7)]
        assert first == second

    @pytest.mark.parametrize("seed", range(4))
    def test_layered_interpretable(self, seed):
        interpretable(random_layered_trace(n_ops=16, width=4, seed=seed), seed)

    def test_layered_sinks_all_stored(self):
        trace = random_layered_trace(n_ops=12, width=3, seed=1)
        dag = DependenceDAG.from_trace(trace)
        for name, def_uid in dag.value_defs.items():
            if def_uid == dag.entry:
                continue
            assert dag.value_uses.get(name), f"value {name} is dead"

    def test_expression_tree_shape(self):
        trace = random_expression_tree(depth=3, seed=0)
        loads = [i for i in trace if i.is_memory_read]
        assert len(loads) == 8  # 2**3 leaves

    def test_wide_trace_width(self):
        from repro.core.measure import measure_fu
        from repro.machine.model import MachineModel

        trace = random_wide_trace(n_chains=5, chain_length=3, seed=0)
        dag = DependenceDAG.from_trace(trace)
        req = measure_fu(dag, MachineModel.homogeneous(1, 64), "any")
        assert req.required >= 5

    def test_series_parallel_interpretable(self):
        interpretable(random_series_parallel(n_blocks=3, seed=2), 2)


class TestNewKernelSemantics:
    def test_fir_value(self):
        memory = {("c", k): k + 1 for k in range(4)}
        memory.update({("x", i): 10 for i in range(7)})
        result = run_trace(kernel("fir"), memory)
        # Each output = 10 * (1+2+3+4) = 100.
        assert result.stores_to("y") == {0: 100, 1: 100, 2: 100}

    def test_matvec_value(self):
        memory = {("v", j): 1 for j in range(3)}
        memory.update({("M", k): k for k in range(9)})
        result = run_trace(kernel("matvec"), memory)
        assert result.stores_to("r") == {0: 3, 1: 12, 2: 21}

    def test_fft8_stage_value(self):
        memory = {("w", 0): 1, ("w", 1): 2}
        memory.update({("x", i): i + 1 for i in range(8)})
        result = run_trace(kernel("fft8-stage"), memory)
        out = result.stores_to("out")
        # pair 0: lo=1, hi=5, w=1 -> out0=6, out4=-4
        assert out[0] == 6 and out[4] == -4
        # pair 1: lo=2, hi=6, w=2 -> out1=14, out5=-10
        assert out[1] == 14 and out[5] == -10

    def test_bitonic_stage_properties(self):
        memory = {("v", i): v for i, v in enumerate([7, 1, 9, 3])}
        out = run_trace(kernel("bitonic"), memory).stores_to("out")
        # The network preserves the multiset and puts a global min first.
        assert sorted(out.values()) == [1, 3, 7, 9]
        assert out[0] == 1
