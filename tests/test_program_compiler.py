"""Tests for whole-program compilation (traces, boundaries, loops)."""

import pytest

from repro.ir.parser import parse_program
from repro.machine.model import MachineModel
from repro.program_compiler import (
    CompiledProgram,
    ProgramCompileError,
    compile_program,
    entry_safe_traces,
    prepare_trace,
    var_cell,
    verify_compiled_program,
)

LOOP_SOURCE = """
L0:
  i = 0
  acc = 0
Lloop:
  acc = acc + i
  i = i + 1
  c = i < 10
  if c goto Lloop
Ldone:
  s = load [scale]
  r = acc * s
  store [out], r
  halt
"""

DIAMOND_SOURCE = """
entry:
  v = load [a]
  c = v < 10
  if c goto small
big:
  r = v * 2
  br join
small:
  r = v + 100
join:
  store [out], r
  halt
"""

NESTED_SOURCE = """
start:
  n = 3
  total = 0
  i = 0
outer:
  j = 0
inner:
  a = load [m]
  total = total + a
  total = total + j
  j = j + 1
  cj = j < n
  if cj goto inner
after:
  i = i + 1
  ci = i < n
  if ci goto outer
done:
  store [res], total
  halt
"""

MACHINE = MachineModel.homogeneous(2, 4)
METHODS = ("ursa", "prepass", "postpass", "goodman-hsu", "naive")


class TestTraceFormation:
    def test_every_transfer_targets_a_head(self):
        program = parse_program(NESTED_SOURCE)
        traces = entry_safe_traces(program)
        heads = {trace.labels[0] for trace in traces}
        in_trace_pred = {}
        for trace in traces:
            for earlier, later in zip(trace.labels, trace.labels[1:]):
                in_trace_pred[later] = earlier
        for src, dst in program.cfg().edges:
            if in_trace_pred.get(dst) != src:
                assert dst in heads, f"{dst} entered mid-trace from {src}"

    def test_entry_heads_a_trace(self):
        program = parse_program(LOOP_SOURCE)
        traces = entry_safe_traces(program)
        assert any(t.labels[0] == "L0" for t in traces)

    def test_loop_header_is_a_head(self):
        program = parse_program(LOOP_SOURCE)
        heads = {t.labels[0] for t in entry_safe_traces(program)}
        assert "Lloop" in heads

    def test_traces_partition_blocks(self):
        program = parse_program(NESTED_SOURCE)
        traces = entry_safe_traces(program)
        labels = [label for t in traces for label in t.labels]
        assert sorted(labels) == sorted(b.label for b in program.blocks)


class TestPrepareTrace:
    def test_live_ins_loaded(self):
        program = parse_program(LOOP_SOURCE)
        trace = next(
            t for t in entry_safe_traces(program) if t.labels[0] == "Lloop"
        )
        prepared = prepare_trace(program, trace)
        loads = [
            i for i in prepared.instructions
            if i.is_memory_read and i.addr.base.startswith("%var:")
        ]
        loaded = {i.dest for i in loads}
        assert {"i", "acc"} <= loaded

    def test_exit_stores_before_branch(self):
        program = parse_program(LOOP_SOURCE)
        trace = next(
            t for t in entry_safe_traces(program) if t.labels[0] == "Lloop"
        )
        prepared = prepare_trace(program, trace)
        ops = prepared.instructions
        branch_pos = next(
            pos for pos, i in enumerate(ops) if i.op.value == "cbr"
        )
        stored = {
            i.addr.base
            for i in ops[:branch_pos]
            if i.is_memory_write and i.addr.base.startswith("%var:")
        }
        assert var_cell("i").base in stored
        assert var_cell("acc").base in stored

    def test_fallthrough_recorded(self):
        program = parse_program(DIAMOND_SOURCE)
        trace = next(
            t for t in entry_safe_traces(program) if t.labels[-1] == "small"
        )
        prepared = prepare_trace(program, trace)
        assert prepared.fallthrough == "join"

    def test_halt_trace_has_no_fallthrough(self):
        program = parse_program(DIAMOND_SOURCE)
        traces = {t.labels[0]: t for t in entry_safe_traces(program)}
        join_head = next(h for h in traces if "join" in traces[h].labels)
        prepared = prepare_trace(program, traces[join_head])
        assert prepared.fallthrough is None


class TestExecution:
    @pytest.mark.parametrize("method", METHODS)
    def test_loop_program(self, method):
        program = parse_program(LOOP_SOURCE)
        compiled = compile_program(program, MACHINE, method=method)
        run, ok = verify_compiled_program(compiled, {("scale", 0): 3})
        assert ok
        assert run.stores_to("out") == {0: 135}

    @pytest.mark.parametrize("method", ("ursa", "prepass", "naive"))
    def test_nested_loops(self, method):
        program = parse_program(NESTED_SOURCE)
        compiled = compile_program(program, MACHINE, method=method)
        run, ok = verify_compiled_program(compiled, {("m", 0): 7})
        assert ok
        # total = 3 outer x (3*7 + 0+1+2) = 3 * 24 = 72
        assert run.stores_to("res") == {0: 72}

    @pytest.mark.parametrize("taken", [3, 50])
    def test_diamond_both_paths(self, taken):
        program = parse_program(DIAMOND_SOURCE)
        compiled = compile_program(program, MACHINE, method="ursa")
        run, ok = verify_compiled_program(compiled, {("a", 0): taken})
        assert ok
        expected = taken + 100 if taken < 10 else taken * 2
        assert run.stores_to("out") == {0: expected}

    def test_trace_path_reflects_control_flow(self):
        program = parse_program(LOOP_SOURCE)
        compiled = compile_program(program, MACHINE, method="ursa")
        run = compiled.run({("scale", 0): 1})
        # L0 once, Lloop 10 times (the last iteration falls into Ldone,
        # which lives in the same trace as Lloop or its own).
        assert run.trace_path[0] == "L0"
        assert run.trace_path.count("Lloop") == 10

    def test_runaway_loop_detected(self):
        program = parse_program(
            "L0:\n  x = 1\nLloop:\n  c = 1\n  if c goto Lloop\nLend:\n  halt"
        )
        compiled = compile_program(program, MACHINE, method="naive")
        with pytest.raises(ProgramCompileError):
            compiled.run(max_dispatches=50)

    def test_var_cells_hidden_from_user_memory(self):
        program = parse_program(LOOP_SOURCE)
        compiled = compile_program(program, MACHINE, method="ursa")
        run = compiled.run({("scale", 0): 2})
        assert all(not base.startswith("%") for base, _ in run.user_memory())

    def test_tight_machine_still_correct(self):
        machine = MachineModel.homogeneous(1, 3)
        program = parse_program(NESTED_SOURCE)
        compiled = compile_program(program, machine, method="ursa")
        run, ok = verify_compiled_program(compiled, {("m", 0): 2})
        assert ok

    def test_static_op_count(self):
        program = parse_program(LOOP_SOURCE)
        compiled = compile_program(program, MACHINE, method="ursa")
        assert compiled.total_static_ops() > 10
