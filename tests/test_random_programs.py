"""Whole-program fuzzing with random structured CFGs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.interp import run_program
from repro.machine.model import MachineModel
from repro.program_compiler import compile_program, verify_compiled_program
from repro.workloads.random_programs import random_structured_program


class TestGenerator:
    def test_deterministic_in_seed(self):
        first = str(random_structured_program(3))
        second = str(random_structured_program(3))
        assert first == second

    @pytest.mark.parametrize("seed", range(10))
    def test_programs_terminate(self, seed):
        program = random_structured_program(seed)
        result = run_program(program)
        assert result.steps > 0

    def test_programs_store_results(self):
        program = random_structured_program(1)
        result = run_program(program)
        assert result.stores_to("out")

    @pytest.mark.parametrize("seed", range(6))
    def test_contains_structure(self, seed):
        program = random_structured_program(seed, max_depth=2)
        labels = {block.label for block in program.blocks}
        # At least the entry plus some structure.
        assert "Lentry" in labels
        assert len(labels) >= 1

    def test_every_cbr_terminates_its_block(self):
        from repro.ir.opcodes import Opcode

        for seed in range(8):
            program = random_structured_program(seed)
            for block in program.blocks:
                for inst in block.instructions[:-1]:
                    assert inst.op is not Opcode.CBR, (
                        f"mid-block CBR in {block.label} (seed {seed})"
                    )


class TestCompilation:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("method", ["ursa", "prepass", "goodman-hsu"])
    def test_random_programs_verify(self, seed, method):
        program = random_structured_program(seed)
        machine = MachineModel.homogeneous(2, 4)
        compiled = compile_program(program, machine, method=method)
        _, ok = verify_compiled_program(compiled)
        assert ok

    def test_tight_machine(self):
        program = random_structured_program(2, max_depth=2, body_size=6)
        machine = MachineModel.homogeneous(1, 3)
        compiled = compile_program(program, machine, method="ursa")
        _, ok = verify_compiled_program(compiled)
        assert ok


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**30))
def test_property_random_programs_compile_and_verify(seed):
    program = random_structured_program(seed, max_depth=2, body_size=3)
    machine = MachineModel.homogeneous(2, 4)
    compiled = compile_program(program, machine, method="ursa")
    _, ok = verify_compiled_program(compiled)
    assert ok
