"""Tests for the shared list scheduler / assignment engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.codegen import lower_schedule
from repro.graph.dag import DependenceDAG
from repro.ir.interp import run_trace
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_trace
from repro.machine.model import FUClass, MachineModel
from repro.machine.simulator import VLIWSimulator
from repro.pipeline import synthesize_memory
from repro.scheduling.list_scheduler import ListScheduler, ScheduleError
from repro.workloads.random_dags import random_layered_trace


def schedule_and_verify(trace, machine, seed=0, **kwargs):
    """Schedule, lower, simulate, and compare against the interpreter."""
    dag = DependenceDAG.from_trace(trace)
    schedule = ListScheduler(dag, machine, **kwargs).run()
    program = lower_schedule(schedule)
    memory = synthesize_memory(dag, seed)
    expected = run_trace(dag.linearize(), memory)
    actual = VLIWSimulator(machine, memory).run(program)
    expected_cells = {
        c: v for c, v in expected.memory.items() if not c[0].startswith("%")
    }
    actual_cells = {
        c: v for c, v in actual.memory.items() if not c[0].startswith("%")
    }
    assert actual_cells == expected_cells
    return schedule, program, actual


class TestResourceLimits:
    @pytest.mark.parametrize("n_fus", [1, 2, 3, 8])
    def test_fu_width_respected(self, fig2_trace, n_fus):
        machine = MachineModel.homogeneous(n_fus, 16)
        schedule, program, _ = schedule_and_verify(fig2_trace, machine)
        for word in program.words:
            assert len(word) <= n_fus

    @pytest.mark.parametrize("n_regs", [2, 3, 4, 8])
    def test_register_cap_respected(self, fig2_trace, n_regs):
        machine = MachineModel.homogeneous(4, n_regs)
        schedule, program, _ = schedule_and_verify(fig2_trace, machine)
        peak = program.max_registers_used().get("gpr", 0)
        assert peak <= n_regs

    def test_spilling_disabled_raises(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 3)
        dag = DependenceDAG.from_trace(fig2_trace)
        with pytest.raises(ScheduleError):
            ListScheduler(dag, machine, allow_spill=False).run()

    def test_no_registers_mode(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 2)
        dag = DependenceDAG.from_trace(fig2_trace)
        schedule = ListScheduler(dag, machine, respect_registers=False).run()
        assert schedule.spill_count == 0
        # length bounded by the serial schedule.
        assert schedule.length <= len(dag.op_nodes())

    def test_classed_machine_slots(self, fig2_trace):
        machine = MachineModel.classed(alu=1, mul=1, mem=1, branch=1, alu_regs=8)
        schedule, program, _ = schedule_and_verify(fig2_trace, machine)
        for word in program.words:
            for (cls, index), op in word.slots.items():
                assert machine.fu_class(cls).executes(op.op)


class TestLatency:
    def test_latency_separates_dependents(self, fig2_trace):
        machine = MachineModel(
            "lat2", (FUClass("any", 4, latency=2),), {"gpr": 16}
        )
        schedule, program, result = schedule_and_verify(fig2_trace, machine)
        # Simulator enforces writeback timing; reaching here means the
        # schedule inserted the necessary gaps.  Five dependent value
        # levels at latency 2 plus the final store: >= 11 cycles.
        assert result.cycles >= 11

    def test_mixed_latencies(self, fig2_trace):
        machine = MachineModel.classed(
            alu=2, mul=2, mem=1, branch=1, alu_regs=12,
            latencies={"mem": 3, "mul": 2},
        )
        schedule_and_verify(fig2_trace, machine)


class TestSpillPath:
    def test_spill_and_reload_round_trip(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 3)
        schedule, program, _ = schedule_and_verify(fig2_trace, machine)
        assert schedule.spill_count >= 1
        spills = [
            op for word in program.words for op in word.ops
            if op.op is Opcode.SPILL
        ]
        reloads = [
            op for word in program.words for op in word.ops
            if op.op is Opcode.RELOAD
        ]
        assert spills and reloads
        # Reloads read cells that were spilled.
        spilled_cells = {(o.addr.base, o.addr.offset) for o in spills}
        for reload in reloads:
            assert (reload.addr.base, reload.addr.offset) in spilled_cells

    def test_two_register_extreme(self, fig2_trace):
        machine = MachineModel.homogeneous(1, 2)
        schedule, program, _ = schedule_and_verify(fig2_trace, machine)
        assert program.max_registers_used()["gpr"] <= 2


class TestLiveInOut:
    def test_live_in_binding(self):
        trace = parse_trace("b = a + 1\nstore [z], b")
        machine = MachineModel.homogeneous(2, 4)
        dag = DependenceDAG.from_trace(trace)
        schedule = ListScheduler(dag, machine).run()
        assert "a" in schedule.live_in_regs

    def test_live_out_kept_in_register(self):
        trace = parse_trace("a = 1\nb = a + 1")
        machine = MachineModel.homogeneous(2, 4)
        dag = DependenceDAG.from_trace(trace, live_out=["b"])
        schedule = ListScheduler(dag, machine).run()
        assert "b" in schedule.live_out_regs

    def test_too_many_live_ins_raises(self):
        trace = parse_trace(
            "s = a + b\nt = c + d\nu = s + t\nstore [z], u"
        )
        machine = MachineModel.homogeneous(2, 2)
        dag = DependenceDAG.from_trace(trace)
        with pytest.raises(ScheduleError):
            ListScheduler(dag, machine).run()


class TestGoodmanHsuMode:
    def test_pressure_threshold_changes_behaviour(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 4)
        dag = DependenceDAG.from_trace(fig2_trace)
        base = ListScheduler(dag.copy(), machine).run()
        csr = ListScheduler(
            dag.copy(), machine, pressure_threshold=3
        ).run()
        # Both must be legal; CSR mode tends to spill no more.
        assert csr.spill_count <= max(base.spill_count, 1)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 2**30),
    st.integers(6, 28),
    st.integers(1, 4),
    st.integers(3, 8),
)
def test_property_schedules_are_semantically_correct(seed, n_ops, n_fus, n_regs):
    """Any random trace compiles and simulates to the interpreter's
    memory on any machine in the sweep."""
    trace = random_layered_trace(n_ops=n_ops, width=4, seed=seed, n_inputs=3)
    machine = MachineModel.homogeneous(n_fus, n_regs)
    schedule_and_verify(trace, machine, seed=seed)
