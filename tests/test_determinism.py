"""Reproducibility: logically identical compiles give identical results.

Instruction uids are allocated from a global counter, so two builds of
the same kernel carry different absolute uids.  Nothing in the pipeline
may depend on absolute uid values (set iteration order, hash order,
spill-slot numbers leaking into decisions); these tests rebuild the same
logical input repeatedly within one process and demand bit-identical
outcomes.
"""

import pytest

from repro.core import allocate
from repro.graph.dag import DependenceDAG
from repro.machine.model import MachineModel
from repro.pipeline import compile_trace
from repro.workloads.kernels import KERNELS, kernel
from repro.workloads.random_dags import random_layered_trace


def signature(result):
    words = []
    for word in result.program.words:
        words.append(tuple(str(op) for op in word.ops))
    return (result.stats.cycles, result.stats.spill_ops, tuple(words))


class TestCompileDeterminism:
    @pytest.mark.parametrize("name", ["figure2", "saxpy", "fft-butterfly", "stencil5"])
    @pytest.mark.parametrize("method", ["ursa", "prepass", "postpass", "goodman-hsu"])
    def test_repeated_compiles_identical(self, name, method):
        machine = MachineModel.homogeneous(2, 4)
        first = compile_trace(kernel(name), machine, method=method, seed=1)
        second = compile_trace(kernel(name), machine, method=method, seed=1)
        assert signature(first) == signature(second)

    def test_random_trace_determinism(self):
        machine = MachineModel.homogeneous(3, 5)
        signatures = set()
        for _ in range(3):
            trace = random_layered_trace(n_ops=20, width=4, seed=9)
            result = compile_trace(trace, machine, seed=9)
            signatures.add(signature(result))
        assert len(signatures) == 1

    def test_allocation_records_identical(self):
        machine = MachineModel.homogeneous(2, 4)
        runs = []
        for _ in range(2):
            dag = DependenceDAG.from_trace(kernel("saxpy"))
            result = allocate(dag, machine)
            runs.append(
                tuple(
                    (r.kind, r.excess_before, r.excess_after)
                    for r in result.records
                )
            )
        assert runs[0] == runs[1]

    def test_color_backend_determinism(self):
        machine = MachineModel.homogeneous(2, 4)
        first = compile_trace(
            kernel("matvec"), machine, assignment="color", seed=2
        )
        second = compile_trace(
            kernel("matvec"), machine, assignment="color", seed=2
        )
        assert signature(first) == signature(second)
