"""Tests for rematerialization (recompute instead of spill)."""

import pytest

from repro.core import allocate, measure_registers
from repro.core.allocator import Policy
from repro.core.transforms.remat import is_rematerializable
from repro.graph.dag import DependenceDAG
from repro.ir.builder import TraceBuilder
from repro.ir.interp import run_trace
from repro.ir.parser import parse_trace
from repro.machine.model import MachineModel


def pressure_kernel():
    """A constant defined early, used only at the very end, competing
    with a busy middle section — the model remat victim."""
    b = TraceBuilder()
    k = b.const(42, name="k")
    x = b.load("in", offset=0, name="x")
    y = b.load("in", offset=1, name="y")
    s1 = b.add(x, y, name="s1")
    s2 = b.mul(x, y, name="s2")
    s3 = b.sub(s1, s2, name="s3")
    s4 = b.mul(s3, s1, name="s4")
    b.store("mid", s4)
    b.store("out", b.add(s4, k))
    return b.build()


class TestIsRematerializable:
    def test_const_yes(self):
        dag = DependenceDAG.from_trace(parse_trace("k = 7\nstore [z], k"))
        assert is_rematerializable(dag, "k")

    def test_load_without_aliasing_store_yes(self):
        dag = DependenceDAG.from_trace(
            parse_trace("v = load [a]\nstore [z], v")
        )
        assert is_rematerializable(dag, "v")

    def test_load_with_aliasing_store_no(self):
        dag = DependenceDAG.from_trace(
            parse_trace("v = load [a]\nw = v + 1\nstore [a], w")
        )
        assert not is_rematerializable(dag, "v")

    def test_arithmetic_no(self):
        dag = DependenceDAG.from_trace(
            parse_trace("a = 1\nb = a + 1\nstore [z], b")
        )
        assert not is_rematerializable(dag, "b")

    def test_live_in_no(self):
        dag = DependenceDAG.from_trace(parse_trace("b = a + 1\nstore [z], b"))
        assert not is_rematerializable(dag, "a")


class TestInsertRemat:
    def test_structure_and_semantics(self):
        trace = pressure_kernel()
        dag = DependenceDAG.from_trace(trace)
        k_uses = [u for u in dag.value_uses["k"] if u != dag.exit]
        remat_uid, new_name = dag.insert_remat("k", k_uses)
        dag.check_invariants()
        # The final add now reads the clone.
        for use in k_uses:
            assert new_name in set(dag.instruction(use).uses())
        memory = {("in", 0): 3, ("in", 1): 5}
        result = run_trace(dag.linearize(), memory)
        expected = run_trace(trace, memory)
        assert result.stores_to("out") == expected.stores_to("out")

    def test_remat_reduces_measured_pressure_when_delayed(self):
        trace = pressure_kernel()
        machine = MachineModel.homogeneous(4, 64)
        dag = DependenceDAG.from_trace(trace)
        before = measure_registers(dag, machine).required

        k_uses = [u for u in dag.value_uses["k"] if u != dag.exit]
        remat_uid, _ = dag.insert_remat("k", k_uses)
        # Delay the clone until the busy section's value s4 exists.
        s4_def = dag.value_defs["s4"]
        dag.add_sequence_edge(s4_def, remat_uid)
        after = measure_registers(dag, machine).required
        assert after <= before

    def test_remat_of_load_keeps_memory_order(self):
        dag = DependenceDAG.from_trace(
            parse_trace("v = load [a]\nw = v + 1\nstore [z], w\nstore [y], v")
        )
        store_y = next(
            u for u in dag.op_nodes()
            if str(dag.instruction(u)).startswith("store [y]")
        )
        remat_uid, _ = dag.insert_remat("v", [store_y])
        dag.check_invariants()
        result = run_trace(dag.linearize(), {("a", 0): 9})
        assert result.stores_to("y") == {0: 9}


class TestAllocatorIntegration:
    def test_remat_chosen_under_spill_only_policy(self):
        trace = pressure_kernel()
        machine = MachineModel.homogeneous(2, 3)
        dag = DependenceDAG.from_trace(trace)
        result = allocate(dag, machine, policy=Policy.SPILL_ONLY)
        kinds = {record.kind for record in result.records}
        # With a rematerializable victim available, the driver prefers
        # the memory-free transformation over a spill pair on ties.
        assert "remat" in kinds or "spill" in kinds
        memory = {("in", 0): 3, ("in", 1): 5}
        expected = run_trace(trace, memory)
        actual = run_trace(result.dag.linearize(), memory)
        assert actual.stores_to("out") == expected.stores_to("out")

    def test_integrated_policy_still_correct_with_remat(self):
        from repro.pipeline import compile_trace

        machine = MachineModel.homogeneous(2, 3)
        result = compile_trace(
            pressure_kernel(), machine,
            memory={("in", 0): 3, ("in", 1): 5},
        )
        assert result.verified
