"""Tests for the URSA driver across policies, kernels and machines."""

import pytest

from repro.core.allocator import (
    AllocationError,
    Policy,
    URSAAllocator,
    allocate,
)
from repro.core.measure import ResourceKind
from repro.graph.dag import DependenceDAG
from repro.ir.interp import run_trace
from repro.ir.parser import parse_trace
from repro.machine.model import MachineModel
from repro.pipeline import synthesize_memory
from repro.workloads.kernels import KERNELS, kernel


class TestConvergence:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernels_on_moderate_machine(self, name):
        machine = MachineModel.homogeneous(4, 8)
        dag = DependenceDAG.from_trace(kernel(name))
        result = allocate(dag, machine)
        # Moderate machines: allocation converges or leaves at most a
        # sliver for assignment (heuristic tie-breaks are uid-sensitive).
        assert result.converged or result.total_excess <= 2, result.describe()
        if not result.converged:
            from repro.scheduling.list_scheduler import ListScheduler

            schedule = ListScheduler(result.dag, machine).run()
            assert schedule.spill_count <= 2

    @pytest.mark.parametrize("n_fus,n_regs", [(2, 4), (1, 3), (8, 16)])
    def test_fig2_all_machines(self, fig2_trace, n_fus, n_regs):
        machine = MachineModel.homogeneous(n_fus, n_regs)
        dag = DependenceDAG.from_trace(fig2_trace)
        result = allocate(dag, machine)
        assert result.converged

    def test_no_excess_means_no_transformations(self, fig2_dag, big_machine):
        result = allocate(fig2_dag, big_machine)
        assert result.converged
        assert result.records == []
        assert result.iterations == 0

    def test_monotone_progress(self, fig2_dag):
        machine = MachineModel.homogeneous(2, 3)
        result = allocate(fig2_dag, machine)
        for record in result.records:
            assert record.excess_after <= record.excess_before

    def test_iteration_budget_respected(self, fig2_dag):
        machine = MachineModel.homogeneous(1, 2)
        result = URSAAllocator(machine, max_iterations=1).run(fig2_dag)
        assert result.iterations <= 1


class TestSemanticPreservation:
    @pytest.mark.parametrize("name", ["figure2", "fft-butterfly", "matmul", "stencil5"])
    def test_transformed_dag_equivalent(self, name):
        machine = MachineModel.homogeneous(2, 4)
        trace = kernel(name)
        dag = DependenceDAG.from_trace(trace)
        memory = synthesize_memory(dag, seed=5)
        expected = run_trace(dag.linearize(), memory)
        result = allocate(dag, machine)
        actual = run_trace(result.dag.linearize(), memory)
        expected_cells = {
            c: v for c, v in expected.memory.items() if not c[0].startswith("%")
        }
        actual_cells = {
            c: v for c, v in actual.memory.items() if not c[0].startswith("%")
        }
        assert actual_cells == expected_cells


class TestPolicies:
    def test_seq_only_never_spills(self, fig2_dag):
        machine = MachineModel.homogeneous(3, 4)
        result = allocate(fig2_dag, machine, policy=Policy.SEQ_ONLY)
        assert all("spill" not in r.kind for r in result.records)

    def test_spill_only_uses_no_reg_sequencing(self, fig2_dag):
        machine = MachineModel.homogeneous(8, 3)
        result = allocate(fig2_dag, machine, policy=Policy.SPILL_ONLY)
        assert all(not r.kind.startswith("reg-seq") for r in result.records)

    def test_phased_registers_first(self):
        machine = MachineModel.homogeneous(2, 4)
        dag = DependenceDAG.from_trace(kernel("fft-butterfly"))
        result = allocate(dag, machine, policy=Policy.PHASED)
        kinds = [r.kind for r in result.records]
        if any(k.startswith("fu-seq") for k in kinds):
            first_fu = next(
                i for i, k in enumerate(kinds) if k.startswith("fu-seq")
            )
            # No register transformation after FU work started.
            assert all(
                k.startswith("fu-seq") for k in kinds[first_fu:]
            ), kinds

    @pytest.mark.parametrize(
        "policy",
        [Policy.INTEGRATED, Policy.PHASED, Policy.SEQ_ONLY, Policy.SPILL_ONLY],
    )
    def test_all_policies_run(self, fig2_dag, policy):
        machine = MachineModel.homogeneous(3, 4)
        result = allocate(fig2_dag, machine, policy=policy)
        assert result.requirements  # measured something


class TestMultiClass:
    def test_classed_fu_machine(self):
        machine = MachineModel.classed(alu=1, mul=1, mem=1, branch=1, alu_regs=8)
        dag = DependenceDAG.from_trace(kernel("figure2"))
        result = allocate(dag, machine)
        assert result.converged

    def test_dual_register_classes(self):
        machine = MachineModel.dual_regclass(n_fus=4, int_regs=3, flt_regs=3)
        source = "\n".join(
            [f"i{k} = load [a+{k}]" for k in range(4)]
            + [f"f{k} = load [b+{k}]" for k in range(4)]
            + ["isum = i0 + i1", "isum2 = i2 + i3", "itot = isum + isum2"]
            + ["fsum = f0 + f1", "fsum2 = f2 + f3", "ftot = fsum + fsum2"]
            + ["store [z], itot", "store [w], ftot"]
        )
        dag = DependenceDAG.from_trace(parse_trace(source))
        result = allocate(dag, machine)
        assert result.converged
        reg_reqs = {
            r.cls: r.required
            for r in result.requirements
            if r.kind is ResourceKind.REGISTER
        }
        assert reg_reqs["int"] <= 3 and reg_reqs["flt"] <= 3


class TestInfeasibility:
    def test_too_many_live_outs_rejected(self):
        dag = DependenceDAG.from_trace(
            parse_trace("a = 1\nb = 2\nc = 3"), live_out=["a", "b", "c"]
        )
        with pytest.raises(AllocationError):
            allocate(dag, MachineModel.homogeneous(2, 2))
