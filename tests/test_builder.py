"""Tests for the programmatic IR builders."""

import pytest

from repro.ir.builder import ProgramBuilder, TraceBuilder, as_addr, as_operand
from repro.ir.instructions import Addr, Imm, Var
from repro.ir.interp import run_program, run_trace
from repro.ir.opcodes import Opcode


class TestCoercions:
    def test_as_operand_string(self):
        assert as_operand("x") == Var("x")

    def test_as_operand_int(self):
        assert as_operand(-3) == Imm(-3)

    def test_as_operand_passthrough(self):
        assert as_operand(Var("v")) == Var("v")
        assert as_operand(Imm(2)) == Imm(2)

    def test_as_operand_rejects_junk(self):
        with pytest.raises(TypeError):
            as_operand(3.14)

    def test_as_addr(self):
        assert as_addr("base", 4) == Addr("base", 4)
        assert as_addr(Addr("x", 1)) == Addr("x", 1)


class TestTraceBuilder:
    def test_fresh_names_unique(self):
        builder = TraceBuilder()
        names = {builder.const(i) for i in range(10)}
        assert len(names) == 10

    def test_named_destination(self):
        builder = TraceBuilder()
        assert builder.const(1, name="one") == "one"

    def test_all_binary_helpers(self):
        builder = TraceBuilder()
        a = builder.const(12)
        b = builder.const(5)
        results = {}
        for helper, expected in [
            ("add", 17), ("sub", 7), ("mul", 60), ("div", 2), ("mod", 2),
            ("and_", 4), ("or_", 13), ("xor", 9), ("shl", 384), ("shr", 0),
            ("min", 5), ("max", 12), ("cmpeq", 0), ("cmpne", 1),
            ("cmplt", 0), ("cmple", 0), ("cmpgt", 1), ("cmpge", 1),
        ]:
            name = getattr(builder, helper)(a, b)
            results[name] = expected
        for offset, name in enumerate(results):
            builder.store("out", name, offset=offset)
        memory = run_trace(builder.build()).stores_to("out")
        assert list(memory.values()) == list(results.values())

    def test_neg_and_mov(self):
        builder = TraceBuilder()
        a = builder.const(5)
        b = builder.neg(a)
        c = builder.mov(b)
        builder.store("out", c)
        assert run_trace(builder.build()).stores_to("out") == {0: -5}

    def test_cbr_and_halt(self):
        builder = TraceBuilder()
        cond = builder.const(0)
        builder.cbr(cond, "Lout")
        builder.halt()
        ops = [inst.op for inst in builder.build()]
        assert Opcode.CBR in ops and Opcode.HALT in ops

    def test_build_program_appends_halt(self):
        builder = TraceBuilder()
        builder.store("out", builder.const(1))
        program = builder.build_program()
        assert program.entry.terminator.op is Opcode.HALT

    def test_build_program_after_cbr(self):
        builder = TraceBuilder()
        builder.cbr(builder.const(0), "Lelse")
        program = builder.build_program()
        # The side exit needs a defined target only at program level if
        # branches stay internal; here it is external and allowed.
        assert program.entry.terminator.op is Opcode.HALT


class TestProgramBuilder:
    def test_multi_block_program(self):
        builder = ProgramBuilder()
        builder.block("L0")
        v = builder.load("a")
        c = builder.binary(Opcode.CMPLT, v, 10)
        builder.cbr(c, "Lsmall")
        builder.block("Lbig")
        builder.store("out", builder.binary(Opcode.MUL, v, 2))
        builder.halt()
        builder.block("Lsmall")
        builder.store("out", builder.binary(Opcode.ADD, v, 100))
        builder.halt()
        program = builder.build()
        assert run_program(program, {("a", 0): 3}).stores_to("out") == {0: 103}
        assert run_program(program, {("a", 0): 30}).stores_to("out") == {0: 60}

    def test_emit_without_block_fails(self):
        builder = ProgramBuilder()
        with pytest.raises(RuntimeError):
            builder.const(1)

    def test_br_terminator(self):
        builder = ProgramBuilder()
        builder.block("L0")
        builder.br("L1")
        builder.block("L1")
        builder.halt()
        program = builder.build()
        assert run_program(program).steps >= 1
