"""Chaos harness: deterministic fault injection against the full
resilient pipeline.

The acceptance bar from the issue: under every fault class — corrupted
transforms, lying measurements, bad kill assignments, deadline expiry —
the resilient pipeline still yields a schedule that passes the full
verification packs plus the simulator oracle, and the degradation is
recorded in the ``DegradationReport`` and ``resilience.*`` counters.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.machine.model import MachineModel
from repro.pipeline import compile_trace
from repro.resilience import ChaosMonkey, Deadline, chaos_scope
from repro.resilience.chaos import FAULT_CLASSES, active
from repro.verify import verify_compilation

MACHINE = MachineModel.homogeneous(2, 4)

CHAOS_SEEDS = range(25)


def resilient_compile(trace, deadline_seconds=30.0):
    """One fully armored compile: ladder + deadline + transactional
    commits + per-step verification."""
    return compile_trace(
        trace,
        MACHINE,
        method="ursa",
        resilient=True,
        deadline=Deadline(seconds=deadline_seconds),
        transactional=True,
        verify_each=True,
    )


def assert_survived(result):
    """The invariant every chaos run must uphold: a verified schedule,
    re-verified honestly outside the chaos scope, with a report."""
    assert result.verified
    report = verify_compilation(result, remeasure=True)
    assert not report.errors(), report.render()
    assert result.degradation is not None
    # verified=True already implies the simulator oracle agreed with the
    # reference execution; keep the simulation result visible regardless.
    assert result.simulation is not None


class TestChaosSweep:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_all_faults_still_verify(self, fig2_trace, seed):
        monkey = ChaosMonkey(seed=seed, faults=FAULT_CLASSES, rate=0.4)
        with obs.capture() as observer:
            with chaos_scope(monkey):
                result = resilient_compile(fig2_trace)
        # Honest verification happens outside the chaos scope.
        assert_survived(result)
        for injection in monkey.injections:
            counter = f"resilience.chaos.{injection['fault']}"
            assert observer.counters.get(counter, 0) >= 1


class TestPerFaultClass:
    """rate=1.0 with a single armed fault class: the fault fires at every
    opportunity and the pipeline must still produce a verified result."""

    def run_single_fault(self, trace, fault, seed=7, **kwargs):
        monkey = ChaosMonkey(seed=seed, faults=(fault,), rate=1.0)
        with chaos_scope(monkey):
            result = resilient_compile(trace, **kwargs)
        return monkey, result

    def test_corrupt_transform(self, fig2_trace):
        monkey, result = self.run_single_fault(fig2_trace, "transform")
        assert_survived(result)
        assert monkey.injected("transform") >= 1

    def test_lying_measurement(self, fig2_trace):
        monkey, result = self.run_single_fault(fig2_trace, "measure")
        assert_survived(result)
        assert monkey.injected("measure") >= 1

    def test_bad_kill_assignment(self, fig2_trace):
        monkey, result = self.run_single_fault(fig2_trace, "kill")
        assert_survived(result)
        assert monkey.injected("kill") >= 1

    def test_forced_deadline_expiry(self, fig2_trace):
        # The deadline itself is unlimited; only the chaos hook trips it.
        monkey, result = self.run_single_fault(
            fig2_trace, "deadline", deadline_seconds=None
        )
        assert_survived(result)
        assert result.degradation.degraded
        assert result.degradation.deadline_tripped == "chaos"
        assert result.degradation.final_method == "spill-everywhere"


class TestDeterminism:
    def test_same_seed_same_injections(self, fig2_trace):
        # Instruction uids are process-global, so entries are normalized
        # to their uid-independent parts before comparing runs.
        def normalized(entries):
            return [
                (e["fault"], e.get("mode"), e.get("value"))
                for e in entries
            ]

        logs = []
        for _ in range(2):
            monkey = ChaosMonkey(seed=13, faults=FAULT_CLASSES, rate=0.4)
            with chaos_scope(monkey):
                resilient_compile(fig2_trace)
            logs.append(normalized(monkey.injections))
        assert logs[0] == logs[1]
        assert logs[0], "seed 13 must inject at least one fault"

    def test_scope_installs_and_removes_monkey(self):
        assert active() is None
        monkey = ChaosMonkey(seed=0)
        with chaos_scope(monkey):
            assert active() is monkey
        assert active() is None

    def test_chaos_off_means_no_faults(self, fig2_trace):
        result = resilient_compile(fig2_trace)
        assert result.verified
        assert not result.degradation.degraded
