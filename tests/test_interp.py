"""Unit tests for the reference interpreter."""

import pytest

from repro.ir.interp import Interpreter, InterpreterError, run_program, run_trace
from repro.ir.parser import parse_program, parse_trace


class TestTraces:
    def test_arithmetic(self):
        insts = parse_trace(
            "v = load [a]\nw = v * 2\nx = w + 3\nstore [z], x"
        )
        result = run_trace(insts, {("a", 0): 5})
        assert result.stores_to("z") == {0: 13}

    def test_all_binary_ops(self):
        insts = parse_trace(
            """
            a = 7
            b = 3
            r0 = a + b
            r1 = a - b
            r2 = a * b
            r3 = a / b
            r4 = a % b
            r5 = a & b
            r6 = a | b
            r7 = a ^ b
            r8 = a << b
            r9 = a >> b
            r10 = min(a, b)
            r11 = max(a, b)
            r12 = a < b
            r13 = a >= b
            store [o], r0
            store [o+1], r1
            store [o+2], r2
            store [o+3], r3
            store [o+4], r4
            store [o+5], r5
            store [o+6], r6
            store [o+7], r7
            store [o+8], r8
            store [o+9], r9
            store [o+10], r10
            store [o+11], r11
            store [o+12], r12
            store [o+13], r13
            """
        )
        out = run_trace(insts).stores_to("o")
        assert out == {
            0: 10, 1: 4, 2: 21, 3: 2, 4: 1, 5: 3, 6: 7, 7: 4,
            8: 56, 9: 0, 10: 3, 11: 7, 12: 0, 13: 1,
        }

    def test_division_truncates_toward_zero(self):
        insts = parse_trace("a = -7\nb = 2\nr = a / b\nstore [o], r")
        assert run_trace(insts).stores_to("o") == {0: -3}

    def test_division_by_zero_raises(self):
        insts = parse_trace("a = 1\nb = 0\nr = a / b")
        with pytest.raises(InterpreterError):
            run_trace(insts)

    def test_undefined_value_raises(self):
        insts = parse_trace("r = x + 1")
        with pytest.raises(InterpreterError):
            run_trace(insts)

    def test_uninitialised_memory_raises(self):
        insts = parse_trace("v = load [nowhere]")
        with pytest.raises(InterpreterError):
            run_trace(insts)

    def test_side_exits_not_taken(self):
        insts = parse_trace("c = 1\nif c goto Lout\nstore [z], 9")
        assert run_trace(insts).stores_to("z") == {0: 9}

    def test_live_in_env(self):
        insts = parse_trace("w = x * 2\nstore [z], w")
        result = Interpreter().run_trace(insts, env={"x": 21})
        assert result.stores_to("z") == {0: 42}

    def test_neg_and_mov(self):
        insts = parse_trace("a = 5\nb = -a\nc = b\nstore [z], c")
        assert run_trace(insts).stores_to("z") == {0: -5}


class TestPrograms:
    def test_branch_taken(self):
        prog = parse_program(
            """
            L0:
              c = 1
              if c goto L2
            L1:
              store [z], 1
              halt
            L2:
              store [z], 2
              halt
            """
        )
        result = run_program(prog)
        assert result.stores_to("z") == {0: 2}
        assert result.block_path == ["L0", "L2"]

    def test_branch_not_taken_falls_through(self):
        prog = parse_program(
            """
            L0:
              c = 0
              if c goto L2
            L1:
              store [z], 1
              halt
            L2:
              store [z], 2
              halt
            """
        )
        assert run_program(prog).stores_to("z") == {0: 1}

    def test_loop_executes(self):
        prog = parse_program(
            """
            L0:
              i = 0
              acc = 0
            Lloop:
              acc = acc + i
              i = i + 1
              c = i < 5
              if c goto Lloop
            Ldone:
              store [z], acc
              halt
            """
        )
        assert run_program(prog).stores_to("z") == {0: 10}

    def test_infinite_loop_detected(self):
        prog = parse_program("L0:\nbr L0")
        with pytest.raises(InterpreterError):
            Interpreter(max_steps=100).run_program(prog)

    def test_implicit_halt_at_program_end(self):
        prog = parse_program("L0:\nstore [z], 3")
        assert run_program(prog).stores_to("z") == {0: 3}
