"""Unit tests for Fisher-style trace selection and flattening."""

import pytest

from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_program
from repro.ir.trace import Trace, main_trace, select_traces


def diamond_program(taken_weight=9.0, fall_weight=1.0):
    from repro.ir.parser import parse_program

    prog = parse_program(
        """
        L0:
          v = load [a]
          c = v < 10
          if c goto L2
        L1:
          x = v + 1
          store [z], x
          br L3
        L2:
          y = v * 2
          store [z], y
        L3:
          halt
        """
    )
    prog.set_edge_weight("L0", "L2", taken_weight)
    prog.set_edge_weight("L0", "L1", fall_weight)
    prog.set_edge_weight("L2", "L3", taken_weight)
    prog.set_edge_weight("L1", "L3", fall_weight)
    return prog


class TestSelection:
    def test_traces_partition_blocks(self):
        prog = diamond_program()
        traces = select_traces(prog)
        labels = [label for trace in traces for label in trace.labels]
        assert sorted(labels) == sorted(b.label for b in prog.blocks)

    def test_hot_path_first(self):
        prog = diamond_program()
        trace = main_trace(prog)
        assert "L2" in trace.labels
        assert "L1" not in trace.labels

    def test_cold_path_respects_weights(self):
        prog = diamond_program(taken_weight=1.0, fall_weight=9.0)
        trace = main_trace(prog)
        assert "L1" in trace.labels

    def test_straightline_single_trace(self):
        prog = parse_program("L0:\nx = 1\nstore [z], x\nhalt")
        traces = select_traces(prog)
        assert len(traces) == 1
        assert traces[0].labels == ["L0"]

    def test_max_trace_blocks(self):
        prog = diamond_program()
        traces = select_traces(prog, max_trace_blocks=1)
        assert all(len(t.labels) == 1 for t in traces)


class TestFlattening:
    def test_flatten_drops_internal_branches(self):
        prog = diamond_program()
        trace = main_trace(prog)
        flat = trace.flatten()
        # No unconditional branches inside a flattened trace.
        assert all(i.op is not Opcode.BR for i in flat)

    def test_flatten_keeps_side_exits(self):
        prog = diamond_program()
        trace = main_trace(prog)
        flat = trace.flatten()
        cbrs = [i for i in flat if i.op is Opcode.CBR]
        assert len(cbrs) == 1
        assert cbrs[0].target not in trace.labels

    def test_side_exit_liveness(self):
        prog = diamond_program()
        trace = main_trace(prog)
        liveness = trace.side_exit_liveness()
        (names,) = liveness.values()
        # v is live into the off-trace block L1.
        assert "v" in names

    def test_fallthrough_liveness_empty_for_store_terminated(self):
        prog = diamond_program()
        trace = main_trace(prog)
        assert trace.fallthrough_liveness() == frozenset()
