"""Documentation health checks.

Keeps the docs honest as the code moves:

* every fenced ``python`` code block in ``README.md`` and ``docs/*.md``
  must parse (``ast.parse``) — snippets with stale syntax fail CI;
* every relative markdown link must point at a file that exists;
* every module path a doc mentions (``src/repro/...`` or a
  ``package/module.py`` table entry) must exist.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO / "README.md", *(REPO / "docs").glob("*.md")])

FENCE = re.compile(r"^```(\w*)\s*$")
# [text](target) — skip images and external/anchor targets below.
LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
MODULE_REF = re.compile(r"`((?:src/)?repro/[\w/]+\.py|[a-z_]+/[a-z_]+\.py)`")


def _doc_id(path: Path) -> str:
    return str(path.relative_to(REPO))


def fenced_blocks(path: Path):
    """Yield (first_line_number, language, source) per fenced block."""
    language = None
    start = 0
    lines: list = []
    for number, line in enumerate(path.read_text().splitlines(), 1):
        fence = FENCE.match(line)
        if fence and language is None:
            language = fence.group(1).lower()
            start = number + 1
            lines = []
        elif line.strip() == "```" and language is not None:
            yield start, language, "\n".join(lines)
            language = None
        elif language is not None:
            lines.append(line)


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_python_snippets_parse(doc):
    checked = 0
    for line, language, source in fenced_blocks(doc):
        if language != "python":
            continue
        try:
            ast.parse(source)
        except SyntaxError as error:
            pytest.fail(
                f"{_doc_id(doc)} line {line}: python snippet does not "
                f"parse: {error}"
            )
        checked += 1
    if doc.name == "observability.md":
        assert checked > 0, f"{_doc_id(doc)} lost its python examples"


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_relative_links_resolve(doc):
    in_fence = False
    for line in doc.read_text().splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "#", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (doc.parent / target).resolve()
            assert resolved.exists(), (
                f"{_doc_id(doc)}: broken relative link {target!r}"
            )


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_referenced_modules_exist(doc):
    for match in MODULE_REF.finditer(doc.read_text()):
        reference = match.group(1)
        candidates = [REPO / reference, REPO / "src" / reference,
                      REPO / "src" / "repro" / reference]
        assert any(c.exists() for c in candidates), (
            f"{_doc_id(doc)}: references missing module `{reference}`"
        )


def test_doc_set_is_nonempty():
    names = {d.name for d in DOC_FILES}
    assert {"README.md", "architecture.md", "observability.md",
            "paper_mapping.md", "algorithms.md", "serving.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=_doc_id)
def test_json_snippets_parse(doc):
    import json

    for line, language, source in fenced_blocks(doc):
        if language != "json":
            continue
        try:
            json.loads(source)
        except json.JSONDecodeError as error:
            pytest.fail(
                f"{_doc_id(doc)} line {line}: json snippet does not "
                f"parse: {error}"
            )


def test_serving_doc_is_linked():
    """The serving story must be reachable from the entry-point docs."""
    assert "docs/serving.md" in (REPO / "README.md").read_text()
    assert "serving.md" in (REPO / "docs" / "architecture.md").read_text()
