"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def fig2_file(tmp_path):
    from tests.conftest import FIGURE2_SOURCE

    path = tmp_path / "fig2.ursa"
    path.write_text(FIGURE2_SOURCE)
    return str(path)


@pytest.fixture
def loop_file(tmp_path):
    path = tmp_path / "loop.ursa"
    path.write_text(
        """
L0:
  i = 0
  acc = 0
Lloop:
  acc = acc + i
  i = i + 1
  c = i < 5
  if c goto Lloop
Ldone:
  store [out], acc
  halt
"""
    )
    return str(path)


class TestMeasure:
    def test_measure_kernel(self, capsys):
        assert main(["measure", "--kernel", "figure2", "--fus", "3", "--regs", "4"]) == 0
        out = capsys.readouterr().out
        assert "fu:any requires 4" in out
        assert "reg:gpr requires 5" in out

    def test_measure_file(self, capsys, fig2_file):
        assert main(["measure", fig2_file, "--fus", "8", "--regs", "8"]) == 0
        out = capsys.readouterr().out
        assert "requires" in out

    def test_measure_dot_output(self, capsys):
        assert main(["measure", "--kernel", "figure2", "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_excessive_sets_not_duplicated(self, capsys):
        main(["measure", "--kernel", "figure2", "--fus", "3", "--regs", "4"])
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if "excessive set" in l]
        assert len(lines) == len(set(lines))

    def test_missing_source_errors(self):
        with pytest.raises(SystemExit):
            main(["measure", "--fus", "2", "--regs", "2"])


class TestCompile:
    def test_compile_kernel(self, capsys):
        code = main(
            ["compile", "--kernel", "saxpy", "--fus", "2", "--regs", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified=True" in out

    @pytest.mark.parametrize("method", ["prepass", "postpass", "goodman-hsu"])
    def test_compile_methods(self, capsys, method):
        assert main(
            ["compile", "--kernel", "figure2", "--method", method]
        ) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_compile_with_memory(self, capsys, fig2_file):
        assert main(["compile", fig2_file, "--mem", "v=6"]) == 0
        assert "verified=True" in capsys.readouterr().out

    def test_compile_gantt(self, capsys):
        assert main(["compile", "--kernel", "figure2", "--gantt"]) == 0
        assert "cycle" in capsys.readouterr().out

    def test_bad_memory_entry(self):
        with pytest.raises(SystemExit):
            main(["compile", "--kernel", "figure2", "--mem", "nonsense"])

    def test_classed_machine(self, capsys):
        assert main(
            ["compile", "--kernel", "figure2", "--classed", "--fus", "2"]
        ) == 0
        assert "verified=True" in capsys.readouterr().out


class TestCompare:
    def test_compare_table(self, capsys):
        assert main(["compare", "--kernel", "figure2"]) == 0
        out = capsys.readouterr().out
        for method in ("ursa", "prepass", "postpass", "goodman-hsu"):
            assert method in out

    def test_compare_subset(self, capsys):
        assert main(
            ["compare", "--kernel", "saxpy", "--methods", "ursa", "naive"]
        ) == 0
        out = capsys.readouterr().out
        assert "ursa" in out and "naive" in out and "prepass" not in out

    def test_compare_json_round_trip(self, capsys):
        import json

        assert main(["compare", "--kernel", "figure2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        methods = {entry["method"]: entry for entry in payload["methods"]}
        assert set(methods) == {"ursa", "prepass", "postpass", "goodman-hsu"}
        for entry in methods.values():
            assert entry["stats"]["cycles"] >= 1
            assert isinstance(entry["capabilities"], dict)
            assert "exact" in entry["capabilities"]
            assert "always_feasible" in entry["capabilities"]

    def test_compare_json_portfolio_attribution(self, capsys):
        import json

        assert main([
            "compare", "--kernel", "figure2",
            "--methods", "portfolio", "ursa", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        portfolio = next(
            e for e in payload["methods"] if e["method"] == "portfolio"
        )
        assert portfolio["winner"] == (
            portfolio["backend_report"]["winner"]
        )
        assert portfolio["backend_report"]["members"]

    def test_unknown_method_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compile", "--kernel", "figure2", "--method", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        # argparse lists every registry method in the rejection
        assert "bogus" in err
        assert "ursa" in err and "spill-everywhere" in err


class TestProgram:
    def test_program_runs_and_verifies(self, capsys, loop_file):
        assert main(["program", loop_file, "--fus", "2", "--regs", "4"]) == 0
        out = capsys.readouterr().out
        assert "[out+0] = 10" in out
        assert "verified: True" in out

    def test_program_needs_file(self):
        with pytest.raises(SystemExit):
            main(["program", "--fus", "2", "--regs", "4"])


class TestPipeline:
    def test_pipeline_sweep(self, capsys):
        assert main(
            ["pipeline", "dot", "--factors", "1,2", "--fus", "4", "--regs", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "MII" in out and "ok" in out

    def test_unknown_loop_rejected(self):
        with pytest.raises(SystemExit):
            main(["pipeline", "unknown-loop"])
