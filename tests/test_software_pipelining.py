"""Tests for the unroll-and-allocate software pipelining extension."""

import pytest

from repro.ir.interp import run_trace
from repro.ir.rename import is_single_assignment
from repro.machine.model import MachineModel
from repro.software_pipelining import (
    LOOPS,
    LoopSpec,
    best_initiation_interval,
    dot_product_loop,
    min_initiation_interval,
    pipeline_sweep,
    recurrence_mii,
    recurrence_loop,
    resource_mii,
    saxpy_loop,
    unroll_loop,
)

MACHINE = MachineModel.homogeneous(4, 8)


class TestUnroll:
    @pytest.mark.parametrize("name", sorted(LOOPS))
    @pytest.mark.parametrize("factor", [1, 3])
    def test_unrolled_traces_are_single_assignment(self, name, factor):
        trace = unroll_loop(LOOPS[name](), factor)
        assert is_single_assignment(trace)

    def test_factor_zero_rejected(self):
        with pytest.raises(ValueError):
            unroll_loop(dot_product_loop(), 0)

    def test_dot_product_semantics(self):
        trace = unroll_loop(dot_product_loop(), 3)
        memory = {("a", i): i + 1 for i in range(3)}
        memory.update({("b", i): 10 for i in range(3)})
        result = run_trace(trace, memory)
        assert result.stores_to("sum") == {0: 60}

    def test_recurrence_semantics(self):
        trace = unroll_loop(recurrence_loop(), 2)
        memory = {
            ("x0", 0): 1,
            ("a", 0): 2, ("a", 1): 3,
            ("b", 0): 10, ("b", 1): 20,
        }
        result = run_trace(trace, memory)
        # x1 = 10 - 2*1 = 8 ; x2 = 20 - 3*8 = -4
        assert result.stores_to("x") == {0: 8, 1: -4}

    def test_unroll_scales_linearly(self):
        small = unroll_loop(saxpy_loop(), 2)
        large = unroll_loop(saxpy_loop(), 6)
        per_iter_small = (len(small) - 1) / 2
        per_iter_large = (len(large) - 1) / 6
        assert per_iter_small == per_iter_large


class TestMII:
    def test_saxpy_has_no_recurrence(self):
        assert recurrence_mii(saxpy_loop(), MACHINE) <= 1

    def test_recurrence_loop_has_recurrence(self):
        assert recurrence_mii(recurrence_loop(), MACHINE) >= 2

    def test_resource_mii_scales_with_units(self):
        narrow = MachineModel.homogeneous(1, 8)
        wide = MachineModel.homogeneous(8, 8)
        spec = saxpy_loop()
        assert resource_mii(spec, narrow) > resource_mii(spec, wide)

    def test_mii_is_max_of_components(self):
        for name in LOOPS:
            mii, res, rec = min_initiation_interval(LOOPS[name](), MACHINE)
            assert mii == max(res, float(rec))

    def test_classed_machine_mii(self):
        machine = MachineModel.classed(alu=2, mul=1, mem=1, branch=1)
        mii, res, rec = min_initiation_interval(dot_product_loop(), machine)
        # One multiply and two loads per iteration on single mul/mem
        # units: the memory unit is the bottleneck.
        assert res >= 2


class TestSweep:
    @pytest.mark.parametrize("name", sorted(LOOPS))
    def test_all_factors_verified(self, name):
        results = pipeline_sweep(
            LOOPS[name](), MACHINE, factors=(1, 2, 4)
        )
        assert all(r.verified for r in results)

    def test_achieved_ii_respects_mii(self):
        for name in ("dot", "saxpy", "recurrence"):
            spec = LOOPS[name]()
            mii, _, _ = min_initiation_interval(spec, MACHINE)
            results = pipeline_sweep(spec, MACHINE, factors=(1, 2, 4))
            assert best_initiation_interval(results) >= mii - 1e-9

    def test_unrolling_improves_parallel_loops(self):
        results = pipeline_sweep(saxpy_loop(), MACHINE, factors=(1, 4))
        assert results[-1].per_iteration < results[0].per_iteration

    def test_requirements_grow_with_factor(self):
        results = pipeline_sweep(dot_product_loop(), MACHINE, factors=(1, 4))
        assert results[-1].reg_requirement > results[0].reg_requirement

    def test_rows_renderable(self):
        (result,) = pipeline_sweep(saxpy_loop(), MACHINE, factors=(2,))
        row = result.row()
        assert row[0] == 2 and row[-1] == "ok"

    def test_baseline_methods_also_work(self):
        results = pipeline_sweep(
            dot_product_loop(), MACHINE, factors=(2,), method="prepass"
        )
        assert results[0].verified
