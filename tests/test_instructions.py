"""Unit tests for IR operands and instructions."""

import pytest

from repro.ir.instructions import (
    Addr,
    Imm,
    Instruction,
    Var,
    validate_instruction,
)
from repro.ir.opcodes import Opcode


class TestOperands:
    def test_imm_str(self):
        assert str(Imm(42)) == "42"

    def test_var_str(self):
        assert str(Var("x")) == "x"

    def test_addr_str_no_offset(self):
        assert str(Addr("a")) == "[a]"

    def test_addr_str_with_offset(self):
        assert str(Addr("a", 4)) == "[a+4]"

    def test_must_alias_same_cell(self):
        assert Addr("a", 4).must_alias(Addr("a", 4))

    def test_must_alias_different_offset(self):
        assert not Addr("a", 4).must_alias(Addr("a", 8))

    def test_may_alias_distinct_bases(self):
        assert not Addr("a", 0).may_alias(Addr("b", 0))

    def test_may_alias_same_base_different_offsets(self):
        # Constant offsets on the same symbolic base are distinct cells.
        assert not Addr("a", 0).may_alias(Addr("a", 4))

    def test_operands_hashable(self):
        assert len({Imm(1), Imm(1), Var("x"), Var("x")}) == 2


class TestInstruction:
    def test_uids_unique(self):
        a = Instruction(Opcode.NOP)
        b = Instruction(Opcode.NOP)
        assert a.uid != b.uid

    def test_uses_yields_vars_only(self):
        inst = Instruction(Opcode.ADD, dest="c", srcs=(Var("a"), Imm(2)))
        assert list(inst.uses()) == ["a"]

    def test_defines(self):
        inst = Instruction(Opcode.ADD, dest="c", srcs=(Var("a"), Var("b")))
        assert inst.defines == "c"
        assert inst.is_definition

    def test_store_defines_nothing(self):
        inst = Instruction(Opcode.STORE, srcs=(Var("a"),), addr=Addr("m"))
        assert not inst.is_definition
        assert inst.is_memory_write

    def test_load_classification(self):
        inst = Instruction(Opcode.LOAD, dest="v", addr=Addr("m"))
        assert inst.is_memory_read and not inst.is_memory_write

    def test_spill_is_spill_code(self):
        inst = Instruction(Opcode.SPILL, srcs=(Var("a"),), addr=Addr("%spill"))
        assert inst.is_spill_code and inst.is_memory_write

    def test_with_renamed_uses_keeps_uid(self):
        inst = Instruction(Opcode.ADD, dest="c", srcs=(Var("a"), Var("b")))
        renamed = inst.with_renamed_uses({"a": "a.1"})
        assert renamed.uid == inst.uid
        assert list(renamed.uses()) == ["a.1", "b"]

    def test_with_renamed_uses_does_not_mutate(self):
        inst = Instruction(Opcode.ADD, dest="c", srcs=(Var("a"), Var("b")))
        inst.with_renamed_uses({"a": "zzz"})
        assert list(inst.uses()) == ["a", "b"]

    def test_fresh_copy_changes_uid(self):
        inst = Instruction(Opcode.NOP)
        assert inst.fresh_copy().uid != inst.uid

    def test_str_binary(self):
        inst = Instruction(Opcode.MUL, dest="w", srcs=(Var("v"), Imm(2)))
        assert str(inst) == "w = v * 2"

    def test_str_store(self):
        inst = Instruction(Opcode.STORE, srcs=(Var("t"),), addr=Addr("z"))
        assert str(inst) == "store [z], t"

    def test_str_cbr(self):
        inst = Instruction(Opcode.CBR, srcs=(Var("c"),), target="L1")
        assert str(inst) == "if c goto L1"


class TestValidation:
    def test_binary_needs_two_sources(self):
        with pytest.raises(ValueError):
            validate_instruction(
                Instruction(Opcode.ADD, dest="c", srcs=(Var("a"),))
            )

    def test_binary_needs_dest(self):
        with pytest.raises(ValueError):
            validate_instruction(
                Instruction(Opcode.ADD, srcs=(Var("a"), Var("b")))
            )

    def test_const_needs_immediate(self):
        with pytest.raises(ValueError):
            validate_instruction(
                Instruction(Opcode.CONST, dest="c", srcs=(Var("a"),))
            )

    def test_load_needs_addr(self):
        with pytest.raises(ValueError):
            validate_instruction(Instruction(Opcode.LOAD, dest="v"))

    def test_store_rejects_dest(self):
        with pytest.raises(ValueError):
            validate_instruction(
                Instruction(
                    Opcode.STORE, dest="x", srcs=(Var("a"),), addr=Addr("m")
                )
            )

    def test_br_needs_target(self):
        with pytest.raises(ValueError):
            validate_instruction(Instruction(Opcode.BR))

    def test_valid_instructions_pass(self):
        validate_instruction(Instruction(Opcode.HALT))
        validate_instruction(Instruction(Opcode.NOP))
        validate_instruction(
            Instruction(Opcode.CBR, srcs=(Var("c"),), target="L")
        )
