"""Unit tests for the VLIW simulator's execution and hazard checking."""

import pytest

from repro.ir.instructions import Addr
from repro.ir.opcodes import Opcode
from repro.machine.model import FUClass, MachineModel
from repro.machine.simulator import SimulationError, VLIWSimulator
from repro.machine.vliw import MachineOp, RegRef, VLIWProgram, VLIWWord


def word(*placements):
    w = VLIWWord()
    for fu_class, index, op in placements:
        w.place(fu_class, index, op)
    return w


def r(i):
    return RegRef(i, "gpr")


class TestExecution:
    def test_const_add_store(self):
        machine = MachineModel.homogeneous(2, 4)
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(0), srcs=(5,)))),
            word(("any", 0, MachineOp(Opcode.ADD, dest=r(1), srcs=(r(0), 2)))),
            word(("any", 0, MachineOp(Opcode.STORE, srcs=(r(1),), addr=Addr("z")))),
        ])
        result = VLIWSimulator(machine).run(program)
        assert result.stores_to("z") == {0: 7}
        assert result.cycles == 3

    def test_parallel_issue_reads_old_values(self):
        # Both ops in one word read the register file at issue.
        machine = MachineModel.homogeneous(2, 4)
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(0), srcs=(1,)))),
            word(
                ("any", 0, MachineOp(Opcode.MOV, dest=r(1), srcs=(r(0),))),
                ("any", 1, MachineOp(Opcode.MOV, dest=r(0), srcs=(r(0),))),
            ),
        ])
        result = VLIWSimulator(machine).run(program)
        assert result.registers["gpr"][1] == 1

    def test_load_from_memory(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.LOAD, dest=r(0), addr=Addr("a", 4)))),
            word(("any", 0, MachineOp(Opcode.STORE, srcs=(r(0),), addr=Addr("z")))),
        ])
        result = VLIWSimulator(machine, {("a", 4): 99}).run(program)
        assert result.stores_to("z") == {0: 99}

    def test_live_in_values(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.STORE, srcs=(r(0),), addr=Addr("z")))),
        ])
        program.live_in_regs = {"x": r(0)}
        result = VLIWSimulator(machine).run(program, live_in_values={"x": 7})
        assert result.stores_to("z") == {0: 7}

    def test_missing_live_in_value_rejected(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine, [])
        program.live_in_regs = {"x": r(0)}
        with pytest.raises(SimulationError):
            VLIWSimulator(machine).run(program)

    def test_empty_words_are_stalls(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine, [
            VLIWWord(),
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(0), srcs=(1,)))),
        ])
        result = VLIWSimulator(machine).run(program)
        assert result.stall_words == 1


class TestHazardChecks:
    def test_read_of_undefined_register(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.MOV, dest=r(1), srcs=(r(0),)))),
        ])
        with pytest.raises(SimulationError):
            VLIWSimulator(machine).run(program)

    def test_register_out_of_range(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(5), srcs=(1,)))),
        ])
        # Out-of-range destination writes are caught on the later read;
        # catch them at write time via the read of the result register.
        program.words.append(
            word(("any", 0, MachineOp(Opcode.MOV, dest=r(0), srcs=(r(5),))))
        )
        with pytest.raises(SimulationError):
            VLIWSimulator(machine).run(program)

    def test_unknown_slot_rejected(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine, [
            word(("any", 1, MachineOp(Opcode.CONST, dest=r(0), srcs=(1,)))),
        ])
        with pytest.raises(SimulationError):
            VLIWSimulator(machine).run(program)

    def test_wrong_class_rejected(self):
        machine = MachineModel.classed(alu=1, mul=1, mem=1, branch=1)
        program = VLIWProgram(machine, [
            word(("alu", 0, MachineOp(Opcode.MUL, dest=RegRef(0), srcs=(1, 2)))),
        ])
        with pytest.raises(SimulationError):
            VLIWSimulator(machine).run(program)

    def test_read_before_writeback_with_latency(self):
        machine = MachineModel(
            "lat2", (FUClass("any", 2, latency=2),), {"gpr": 4}
        )
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(0), srcs=(1,)))),
            # CONST writes back at end of cycle 1; reading at cycle 1 is
            # a hazard on an interlock-free VLIW.
            word(("any", 1, MachineOp(Opcode.MOV, dest=r(1), srcs=(r(0),)))),
        ])
        with pytest.raises(SimulationError):
            VLIWSimulator(machine).run(program)

    def test_read_after_writeback_with_latency(self):
        machine = MachineModel(
            "lat2", (FUClass("any", 2, latency=2),), {"gpr": 4}
        )
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(0), srcs=(1,)))),
            VLIWWord(),
            word(("any", 1, MachineOp(Opcode.MOV, dest=r(1), srcs=(r(0),)))),
        ])
        result = VLIWSimulator(machine).run(program)
        assert result.registers["gpr"][1] == 1

    def test_non_pipelined_fu_occupancy(self):
        machine = MachineModel(
            "lat2", (FUClass("any", 1, latency=2),), {"gpr": 4}
        )
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(0), srcs=(1,)))),
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(1), srcs=(2,)))),
        ])
        with pytest.raises(SimulationError):
            VLIWSimulator(machine).run(program)

    def test_division_by_zero_reported(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine, [
            word(("any", 0, MachineOp(Opcode.CONST, dest=r(0), srcs=(0,)))),
            word(("any", 0, MachineOp(Opcode.DIV, dest=r(1), srcs=(1, r(0))))),
        ])
        with pytest.raises(SimulationError):
            VLIWSimulator(machine).run(program)
