"""Broad end-to-end integration net: methods x workloads x machines.

Every combination compiles and verifies against the interpreter.  This
is the widest single safety net in the suite; each case is fast and the
seeds are fixed, so failures reproduce exactly.
"""

import pytest

from repro.machine.model import FUClass, MachineModel
from repro.pipeline import compile_trace
from repro.workloads.random_dags import (
    random_expression_tree,
    random_layered_trace,
    random_series_parallel,
    random_wide_trace,
)

MACHINES = [
    MachineModel.homogeneous(1, 4),
    MachineModel.homogeneous(3, 5),
    MachineModel.classed(alu=2, mul=1, mem=1, branch=1, alu_regs=6),
    MachineModel(
        "lat-mix",
        (FUClass("any", 2, latency=2),),
        {"gpr": 6},
    ),
    MachineModel.homogeneous(2, 6, latency=2, pipelined=True),
]

WORKLOADS = [
    ("layered", lambda s: random_layered_trace(n_ops=22, width=5, seed=s)),
    ("tree", lambda s: random_expression_tree(depth=3, seed=s)),
    ("series-parallel", lambda s: random_series_parallel(n_blocks=3, seed=s)),
    ("wide", lambda s: random_wide_trace(n_chains=5, chain_length=3, seed=s)),
]

METHODS = ("ursa", "prepass", "postpass", "goodman-hsu", "naive")


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("workload", WORKLOADS, ids=lambda w: w[0])
@pytest.mark.parametrize("method", METHODS)
def test_compile_verifies(machine, workload, method):
    name, factory = workload
    trace = factory(11)
    result = compile_trace(trace, machine, method=method, seed=11)
    assert result.verified, f"{method}/{name}/{machine.name}"


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("backend", ["bind", "color"])
def test_ursa_assignment_backends(seed, backend):
    trace = random_layered_trace(n_ops=20, width=4, seed=seed)
    machine = MachineModel.homogeneous(2, 5)
    result = compile_trace(
        trace, machine, method="ursa", seed=seed, assignment=backend
    )
    assert result.verified


@pytest.mark.parametrize("seed", [5, 6])
def test_optimized_pipeline_fuzz(seed):
    trace = random_layered_trace(n_ops=24, width=5, seed=seed)
    machine = MachineModel.homogeneous(3, 5)
    plain = compile_trace(trace, machine, seed=seed)
    optimized = compile_trace(trace, machine, seed=seed, optimize=True)
    assert plain.verified and optimized.verified
