"""Tests for ``repro.analyze``: diagnostics, bounds, CLI, serve, hints.

The soundness *sweep* (static bounds vs measured requirements across
random workloads) lives in ``tests/test_analyze_fuzz.py``; this module
covers the units, the integration points, and the contract lint.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.analyze import (
    AnalyzeReport,
    Diagnostic,
    SourceSpan,
    analyze_source,
    check_program,
    feasibility_report,
    fu_lower_bound,
    length_lower_bound,
    parse_error_diagnostic,
    register_lower_bound,
    register_pressure_floor,
)
from repro.analyze.diagnostics import span_for
from repro.cli import main
from repro.ir.parser import ParseError, parse_program
from repro.machine.model import FUClass, MachineModel
from repro.pipeline import PipelineError, build_dag, compile_trace
from repro.serve.protocol import handle_single
from repro.serve.server import ServeApp

REPO = Path(__file__).resolve().parent.parent
FIG2 = (REPO / "examples" / "traces" / "figure2.ursa").read_text()


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


# ======================================================================
# Diagnostics rendering.
# ======================================================================
class TestDiagnostics:
    def test_span_location_and_caret(self):
        span = SourceSpan(5, "y = x + 1", "t.ursa", column=5)
        assert span.location() == "t.ursa:5"
        caret = span.caret_lines()
        assert caret == ["   5 | y = x + 1", "     |     ^"]
        # caret column points at the 'x'
        assert caret[0][caret[1].index("^")] == "x"

    def test_span_for_anchors_on_word_boundary(self):
        lines = ["xx = axe + x"]
        span = span_for(1, lines, anchor="x")
        assert span.column == 12  # not the 'xx' def, not inside 'axe'

    def test_render_includes_code_and_severity(self):
        d = Diagnostic("A101", "error", "boom", SourceSpan(1, "a = b"))
        text = d.render()
        assert "error[A101]: boom" in text
        assert "   1 | a = b" in text

    def test_parse_error_diagnostic_strips_envelope(self):
        source = "A = load [v]\nB = !!!\n"
        with pytest.raises(ParseError) as info:
            parse_program(source)
        d = parse_error_diagnostic(info.value, source, "t.ursa")
        assert d.code == "A001"
        assert d.span.line_no == 2
        assert not d.message.startswith("line 2")
        assert "'B = !!!'" not in d.message  # the span shows the text

    def test_report_ok_tracks_error_severity_only(self):
        report = AnalyzeReport()
        report.add(Diagnostic("A105", "info", "unused"))
        report.add(Diagnostic("A103", "warning", "unreachable"))
        assert report.ok
        report.add(Diagnostic("A101", "error", "use-before-def"))
        assert not report.ok
        assert json.loads(report.to_json())["ok"] is False


# ======================================================================
# Well-formedness checks.
# ======================================================================
class TestWellformed:
    def check(self, source, machine=None):
        return check_program(parse_program(source), machine=machine,
                             source=source)

    def test_clean_program(self):
        assert self.check(FIG2) == []

    def test_use_before_def(self):
        diags = self.check("a = x + 1\nx = a + 2\n")
        assert codes_of(diags) == ["A101"]
        assert diags[0].severity == "error"
        assert "'x'" in diags[0].message
        assert diags[0].span.line_no == 1

    def test_pure_live_in_is_legal(self):
        # x is never defined: a legal input, not use-before-def.
        assert self.check("a = x + 1\nstore [out], a\n") == []

    def test_undefined_branch_target_warns(self):
        diags = self.check(
            "L0:\n  c = a < b\n  if c goto Lelsewhere\nL1:\n  halt\n"
        )
        assert codes_of(diags) == ["A102"]
        assert diags[0].severity == "warning"

    def test_unreachable_block(self):
        diags = self.check(
            "L0:\n  a = b + c\n  halt\nL1:\n  d = e + f\n  halt\n"
        )
        assert "A103" in codes_of(diags)

    def test_dead_store(self):
        diags = self.check(
            "store [out], a\nstore [out], b\nhalt\n"
        )
        assert codes_of(diags) == ["A104"]
        # anchored at the earlier (dead) store
        assert diags[0].span.line_no == 1

    def test_read_between_stores_is_not_dead(self):
        assert self.check(
            "store [out], a\nb = load [out]\nstore [out], b\nhalt\n"
        ) == []

    def test_unused_value_is_info(self):
        diags = self.check("a = b + c\nhalt\n")
        assert codes_of(diags) == ["A105"]
        assert diags[0].severity == "info"

    def test_unexecutable_opcode(self):
        machine = MachineModel(
            "add-only", (FUClass("alu", 1, 1, frozenset({})),), {"gpr": 4}
        )
        # frozenset() executes nothing -> every op is A106.
        diags = self.check("a = b + c\nstore [out], a\n", machine=machine)
        assert set(codes_of(diags)) == {"A106"}
        assert all(d.severity == "error" for d in diags)


# ======================================================================
# Bounds units (figure2 has known measured requirements: FU 4, reg 5
# on the base machine).
# ======================================================================
class TestBounds:
    def test_figure2_register_bound(self):
        machine = MachineModel.homogeneous(2, 3)
        dag = build_dag(FIG2)
        bound = register_lower_bound(dag, machine)
        assert 1 <= bound <= 5  # measured requirement is 5
        assert bound == 4  # the necessary-reuse width for this DAG

    def test_figure2_fu_bound(self):
        machine = MachineModel.homogeneous(2, 8)
        dag = build_dag(FIG2)
        assert 1 <= fu_lower_bound(dag, machine, "any") <= 4

    def test_pressure_floor_counts_live_in_out(self):
        machine = MachineModel.homogeneous(2, 8)
        names = [f"v{i}" for i in range(4)]
        src = "\n".join(f"{n} = load [x+{i}]" for i, n in enumerate(names))
        dag = build_dag(src, live_out=names)
        assert register_pressure_floor(dag, machine) >= 4

    def test_length_bound_not_above_compile(self):
        machine = MachineModel.homogeneous(2, 6)
        dag = build_dag(FIG2)
        bound = length_lower_bound(dag, machine)
        result = compile_trace(dag, machine, method="ursa")
        assert bound <= result.cycles

    def test_feasibility_verdicts(self):
        dag = build_dag(FIG2)
        tight = feasibility_report(dag, MachineModel.homogeneous(2, 3))
        roomy = feasibility_report(dag, MachineModel.homogeneous(4, 12))
        assert tight.registers["gpr"].forces_reduction
        assert tight.predictions()
        assert not roomy.registers["gpr"].forces_reduction
        assert not roomy.infeasible
        payload = tight.to_dict()
        assert payload["registers"]["gpr"]["lower_bound"] == 4
        assert payload["length"]["lower_bound"] >= payload["length"][
            "critical_path"]

    def test_infeasible_when_pinned_values_overflow(self):
        names = [f"v{i}" for i in range(5)]
        src = "\n".join(f"{n} = load [x+{i}]" for i, n in enumerate(names))
        dag = build_dag(src, live_out=names)
        report = feasibility_report(dag, MachineModel.homogeneous(2, 2))
        assert report.infeasible
        assert report.infeasible_reasons()

    def test_doomed_ursa_seq_rung(self):
        dag = build_dag(FIG2)
        report = feasibility_report(dag, MachineModel.homogeneous(2, 1))
        assert "ursa-seq" in report.doomed_rungs()


# ======================================================================
# analyze_source: uniform reports for every failure mode.
# ======================================================================
class TestAnalyzeSource:
    def test_parse_failure_is_a_report(self):
        report = analyze_source("A = !!!\n", filename="bad.ursa")
        assert not report.ok
        assert codes_of(report.diagnostics) == ["A001"]
        assert "bad.ursa:1" in report.render()

    def test_bounds_attached_per_block(self):
        report = analyze_source(FIG2, machine=MachineModel.homogeneous(2, 6))
        assert report.ok
        assert list(report.feasibility) == ["L0"]
        assert "feasibility on" in report.render()

    def test_bounds_skipped_on_errors(self):
        report = analyze_source(
            "a = x + 1\nx = a + 2\n", machine=MachineModel.homogeneous(2, 6)
        )
        assert not report.ok
        assert report.feasibility == {}


# ======================================================================
# CLI.
# ======================================================================
class TestAnalyzeCLI:
    def test_analyze_file_ok(self, capsys, tmp_path):
        path = tmp_path / "fig2.ursa"
        path.write_text(FIG2)
        assert main(["analyze", str(path), "--fus", "2", "--regs", "6"]) == 0
        out = capsys.readouterr().out
        assert "analysis: 0 error(s)" in out
        assert "feasibility on" in out

    def test_analyze_kernel(self, capsys):
        assert main([
            "analyze", "--kernel", "figure2", "--fus", "2", "--regs", "6",
        ]) == 0
        assert "feasibility on" in capsys.readouterr().out

    def test_analyze_errors_exit_1(self, capsys, tmp_path):
        path = tmp_path / "bad.ursa"
        path.write_text("a = x + 1\nx = a + 2\n")
        assert main(["analyze", str(path)]) == 1
        assert "error[A101]" in capsys.readouterr().out

    def test_analyze_json(self, capsys, tmp_path):
        path = tmp_path / "fig2.ursa"
        path.write_text(FIG2)
        assert main([
            "analyze", str(path), "--fus", "2", "--regs", "6", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1
        assert payload["ok"] is True
        assert payload["feasibility"]["L0"]["registers"]["gpr"]

    def test_parse_error_renders_caret_and_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.ursa"
        path.write_text("A = load [v]\nB = !!!\n")
        assert main(["compile", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error[A001]" in err
        assert "   2 | B = !!!" in err
        assert "repro compile: error: ParseError:" in err


# ======================================================================
# Serve: /v1/analyze and admission control.
# ======================================================================
class TestServeAnalyze:
    MACHINE = {"fus": 2, "regs": 8}

    def test_analyze_endpoint_roundtrip(self):
        app = ServeApp(cache=None)
        try:
            status, body = app.analyze(
                {"source": FIG2, "machine": self.MACHINE}
            )
            assert status == 200 and body["ok"]
            report = body["result"]["report"]
            assert report["ok"] and report["feasibility"]["L0"]
            assert body["result"]["kind"] == "analyze"
        finally:
            app.close()

    def test_analyze_endpoint_reports_parse_failures_as_result(self):
        app = ServeApp(cache=None)
        try:
            status, body = app.analyze(
                {"source": "A = !!!\n", "machine": self.MACHINE}
            )
            assert status == 200 and body["ok"]
            report = body["result"]["report"]
            assert report["ok"] is False
            assert report["diagnostics"][0]["code"] == "A001"
        finally:
            app.close()

    def test_ill_formed_compile_fast_rejected(self):
        request = {
            "kind": "trace",
            "source": "a = x + 1\nx = a + 2\n",
            "machine": self.MACHINE,
        }
        with obs.capture() as cap:
            response = handle_single(request, None)
        assert response["ok"] is False
        assert response["error"]["code"] == "ill_formed"
        diags = response["error"]["diagnostics"]
        assert diags[0]["code"] == "A101"
        # admission control fired, and the compiler never ran
        assert cap.counters["serve.analyze_reject"] == 1
        names = {e.get("name") for e in cap.events}
        assert not any(
            n and (n.startswith("phase.") or n.startswith("measure."))
            for n in names
        )

    def test_ill_formed_maps_to_http_422(self):
        from repro.serve.protocol import ERROR_STATUS

        assert ERROR_STATUS["ill_formed"] == 422

    def test_well_formed_trace_still_compiles(self):
        request = {"kind": "trace", "source": FIG2, "machine": self.MACHINE}
        response = handle_single(request, None)
        assert response["ok"] is True

    def test_program_requests_admitted_too(self):
        request = {
            "kind": "program",
            "source": "L0:\n  a = x + 1\n  x = a + 2\n  halt\n",
            "machine": self.MACHINE,
        }
        with obs.capture() as cap:
            response = handle_single(request, None)
        assert response["error"]["code"] == "ill_formed"
        assert cap.counters["serve.analyze_reject"] == 1

    def test_batch_analyze_isolation(self):
        app = ServeApp(cache=None)
        try:
            status, body = app.analyze({"requests": [
                {"source": FIG2, "machine": self.MACHINE},
                {"source": "A = !!!\n", "machine": self.MACHINE},
            ]})
            assert status == 200
            oks = [r["result"]["report"]["ok"] for r in body["responses"]]
            assert oks == [True, False]
        finally:
            app.close()

    def test_bounds_option_disables_feasibility(self):
        app = ServeApp(cache=None)
        try:
            _, body = app.analyze({
                "source": FIG2, "machine": self.MACHINE,
                "options": {"bounds": False},
            })
            assert body["result"]["report"]["feasibility"] == {}
        finally:
            app.close()


# ======================================================================
# Resilience ladder hints.
# ======================================================================
#: A trace whose pressure floor is 4 (at ``e``, values ``a`` and ``b``
#: cross untouched while ``c``/``d`` are read) but whose live-in and
#: live-out sets are empty — doomed for ursa-seq on 3 registers, yet
#: still compilable by the spill rungs.
HIGH_FLOOR = """\
a = load [x]
b = a + 1
c = a + b
d = b + c
e = c + d
f = a + e
g = b + f
store [out], g
"""


class TestLadderHints:
    def test_doomed_rung_skipped(self):
        machine = MachineModel.homogeneous(2, 3)
        dag = build_dag(HIGH_FLOOR)
        hints = feasibility_report(dag, machine)
        assert "ursa-seq" in hints.doomed_rungs()
        with obs.capture() as cap:
            result = compile_trace(
                HIGH_FLOOR, machine, method="ursa-seq", resilient=True,
                hints=hints,
            )
        skipped = [a for a in result.degradation.attempts
                   if a.outcome == "skipped"]
        assert skipped and skipped[0].method == "ursa-seq"
        assert "static analysis" in skipped[0].reason
        assert cap.counters["resilience.hint_skips"] == 1

    def test_infeasible_hints_fail_fast(self):
        machine = MachineModel.homogeneous(2, 2)
        names = [f"v{i}" for i in range(5)]
        src = "\n".join(f"{n} = load [x+{i}]" for i, n in enumerate(names))
        dag = build_dag(src, live_out=names)
        hints = feasibility_report(dag, machine)
        assert hints.infeasible
        with obs.capture() as cap:
            with pytest.raises(PipelineError, match="static analysis"):
                compile_trace(
                    src, machine, method="ursa", resilient=True,
                    hints=hints, live_out=names,
                )
        assert cap.counters["resilience.hint_infeasible"] == 1
        assert "resilience.fallback_attempts" not in cap.counters

    def test_no_hints_is_the_old_behavior(self):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(FIG2, machine, method="ursa", resilient=True)
        assert result.degradation is not None


# ======================================================================
# The contract lint.
# ======================================================================
class TestContractLint:
    def test_repo_is_clean(self):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import lint_contracts
            assert lint_contracts.run(REPO) == []
        finally:
            sys.path.pop(0)

    def test_lint_catches_violations(self, tmp_path):
        sys.path.insert(0, str(REPO / "tools"))
        try:
            import lint_contracts

            (tmp_path / "docs").mkdir()
            (tmp_path / "docs" / "observability.md").write_text(
                "<!-- obs-name-schema: "
                r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$ -->"
            )
            pkg = tmp_path / "src" / "repro"
            pkg.mkdir(parents=True)
            (pkg / "bad.py").write_text(
                "machine = MachineModel('m', fus, regs,\n"
                "                       reg_class_of=lambda n: 'gpr')\n"
                "obs.count('BadName')\n"
                "obs.span('ok.name', n=1)\n"
                "TransformCandidate(kind='never-registered')\n"
            )
            findings = lint_contracts.run(tmp_path)
            codes = sorted(f.code for f in findings)
            assert codes == ["C001", "C002", "C003"]
        finally:
            sys.path.pop(0)
