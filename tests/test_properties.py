"""Cross-cutting property-based tests on URSA's core guarantees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import Policy, allocate
from repro.core.measure import measure_all, measure_fu, measure_registers
from repro.graph.dag import DependenceDAG
from repro.ir.interp import run_trace
from repro.machine.model import MachineModel
from repro.pipeline import compile_trace, synthesize_memory
from repro.scheduling.list_scheduler import ListScheduler
from repro.workloads.random_dags import random_layered_trace


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**30), st.integers(4, 26))
def test_measurement_upper_bounds_fu_usage(seed, n_ops):
    """No schedule uses more FUs in one cycle than the FU measurement.

    The FU requirement is the worst case over all schedules, so the
    greedy scheduler (on an unbounded machine) can never exceed it.
    """
    trace = random_layered_trace(n_ops=n_ops, width=5, seed=seed)
    dag = DependenceDAG.from_trace(trace)
    wide = MachineModel.homogeneous(64, 512)
    requirement = measure_fu(dag, wide, "any")

    schedule = ListScheduler(dag, wide, respect_registers=False).run()
    per_cycle = {}
    for op in schedule.ops:
        per_cycle[op.cycle] = per_cycle.get(op.cycle, 0) + 1
    assert max(per_cycle.values()) <= requirement.required


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**30), st.integers(4, 26))
def test_measurement_upper_bounds_register_usage(seed, n_ops):
    """Realized pressure never exceeds the *sound* register bound, and
    the paper's heuristic measurement never exceeds the sound bound.

    The heuristic (Kill-based) measurement may fall below realized
    pressure — that is the Theorem 2 leakage the assignment phase
    absorbs — but the every-maximal-use bound is a theorem.
    """
    from repro.core.measure import sound_register_width

    trace = random_layered_trace(n_ops=n_ops, width=5, seed=seed)
    dag = DependenceDAG.from_trace(trace)
    wide = MachineModel.homogeneous(64, 512)
    requirement = measure_registers(dag, wide)
    sound = sound_register_width(dag, wide)

    schedule = ListScheduler(dag, wide, respect_registers=True).run()
    assert schedule.spill_count == 0
    assert schedule.max_live_registers("gpr") <= sound
    assert requirement.required <= sound


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 2**30), st.integers(6, 22))
def test_allocation_never_increases_requirements_it_targets(seed, n_ops):
    """After URSA allocation, measured requirements never exceed the
    originals (transformations only narrow the DAG)."""
    trace = random_layered_trace(n_ops=n_ops, width=5, seed=seed)
    machine = MachineModel.homogeneous(2, 4)
    dag = DependenceDAG.from_trace(trace)
    before = {
        (r.kind, r.cls): r.required for r in measure_all(dag, machine)
    }
    result = allocate(dag, machine)
    # Spill code adds mem ops, so FU requirements may grow; the register
    # requirement must not exceed its starting point.
    after = {
        (r.kind, r.cls): r.required for r in result.requirements
    }
    for key, value in after.items():
        if key[0].value == "reg":
            assert value <= before[key]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**30))
def test_all_methods_agree_on_memory(seed):
    """Every compilation method produces the same user-visible memory."""
    trace = random_layered_trace(n_ops=18, width=4, seed=seed)
    machine = MachineModel.homogeneous(3, 5)
    reference = None
    for method in ("ursa", "prepass", "postpass", "goodman-hsu", "naive"):
        result = compile_trace(trace, machine, method=method, seed=seed)
        assert result.verified
        cells = {
            cell: value
            for cell, value in result.simulation.memory.items()
            if not cell[0].startswith("%")
        }
        if reference is None:
            reference = cells
        else:
            assert cells == reference


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**30), st.sampled_from([Policy.INTEGRATED, Policy.PHASED]))
def test_allocation_preserves_semantics(seed, policy):
    trace = random_layered_trace(n_ops=20, width=5, seed=seed)
    machine = MachineModel.homogeneous(2, 4)
    dag = DependenceDAG.from_trace(trace)
    memory = synthesize_memory(dag, seed)
    expected = run_trace(dag.linearize(), memory)
    result = allocate(dag, machine, policy=policy)
    actual = run_trace(result.dag.linearize(), memory)
    strip = lambda mem: {
        c: v for c, v in mem.items() if not c[0].startswith("%")
    }
    assert strip(actual.memory) == strip(expected.memory)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**30), st.integers(1, 6), st.integers(2, 10))
def test_compiled_code_fits_machine(seed, n_fus, n_regs):
    """Generated VLIW code never exceeds the machine's slots/registers
    (the simulator would reject it, but check the static artifact too)."""
    trace = random_layered_trace(n_ops=16, width=4, seed=seed)
    machine = MachineModel.homogeneous(n_fus, n_regs)
    result = compile_trace(trace, machine, method="ursa", seed=seed)
    for word in result.program.words:
        assert len(word) <= n_fus
    peak = result.program.max_registers_used().get("gpr", 0)
    assert peak <= n_regs
