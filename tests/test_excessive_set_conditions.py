"""Definition 6 fidelity: verifying the excessive chain sets we emit."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measure import (
    find_excessive_sets,
    measure_fu,
    measure_registers,
    verify_excessive_set,
)
from repro.graph.dag import DependenceDAG
from repro.machine.model import MachineModel
from repro.workloads.kernels import KERNELS, kernel
from repro.workloads.random_dags import random_layered_trace


class TestFig2Conditions:
    def test_fu_excessive_set_satisfies_def6(self, fig2_dag):
        machine = MachineModel.homogeneous(3, 8)
        requirement = measure_fu(fig2_dag, machine, "any")
        for ecs in find_excessive_sets(fig2_dag, requirement):
            assert verify_excessive_set(ecs)

    def test_register_excessive_set_satisfies_def6(self, fig2_dag):
        machine = MachineModel.homogeneous(8, 3)
        requirement = measure_registers(fig2_dag, machine)
        for ecs in find_excessive_sets(fig2_dag, requirement):
            assert verify_excessive_set(ecs)

    def test_non_excessive_rejected(self, fig2_dag):
        machine = MachineModel.homogeneous(3, 8)
        requirement = measure_fu(fig2_dag, machine, "any")
        (ecs, *_) = find_excessive_sets(fig2_dag, requirement)
        # Pretend 5 units are available: condition 1 fails.
        ecs.available = 5
        assert not verify_excessive_set(ecs)


class TestKernelConditions:
    @pytest.mark.parametrize("name", ["fft-butterfly", "stencil5", "matvec"])
    def test_fu_sets_valid(self, name):
        machine = MachineModel.homogeneous(2, 64)
        dag = DependenceDAG.from_trace(kernel(name))
        requirement = measure_fu(dag, machine, "any")
        for ecs in find_excessive_sets(dag, requirement):
            assert verify_excessive_set(ecs)

    @pytest.mark.parametrize("name", ["fft-butterfly", "fir", "estrin"])
    def test_register_sets_valid(self, name):
        machine = MachineModel.homogeneous(64, 4)
        dag = DependenceDAG.from_trace(kernel(name))
        requirement = measure_registers(dag, machine)
        for ecs in find_excessive_sets(dag, requirement):
            assert verify_excessive_set(ecs)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**30), st.integers(6, 24))
def test_property_emitted_sets_satisfy_trimming_contract(seed, n_ops):
    """Conditions 1 and 3 hold for every emitted set — all the trimming
    procedure promises (and all the transformations rely on)."""
    trace = random_layered_trace(n_ops=n_ops, width=5, seed=seed)
    dag = DependenceDAG.from_trace(trace)
    machine = MachineModel.homogeneous(2, 3)
    for requirement in (
        measure_fu(dag, machine, "any"),
        measure_registers(dag, machine),
    ):
        for ecs in find_excessive_sets(dag, requirement):
            assert verify_excessive_set(ecs, check_condition2=False), (
                f"trimming contract violated for {requirement.kind} "
                f"on seed {seed}"
            )


def test_condition2_gap_witness():
    """Documented fidelity gap: the paper's head/tail trimming can leave
    an *interior* element with no independent m-set (Def 6 condition 2).

    The paper computes excessive sets "by examining contiguous
    allocation subchains and removing any heads and tails that are
    related" (§3.1) — exactly what we implement — so the same gap exists
    in the described procedure.  The transformations only use the heads
    and tails, which conditions 1+3 cover.
    """
    trace = random_layered_trace(n_ops=6, width=5, seed=6)
    dag = DependenceDAG.from_trace(trace)
    machine = MachineModel.homogeneous(2, 3)
    requirement = measure_fu(dag, machine, "any")
    sets = find_excessive_sets(dag, requirement)
    assert sets
    assert all(
        verify_excessive_set(ecs, check_condition2=False) for ecs in sets
    )
    # At least one set in this witness violates the full Definition 6.
    assert not all(verify_excessive_set(ecs) for ecs in sets)
