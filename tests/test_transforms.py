"""Golden tests for the three transformations against Figure 3.

Each subsection first reproduces the *paper's exact DAG edit* and checks
the measured requirement drops to the figure's number, then checks that
URSA's own heuristics find an edit achieving the same target.
"""

import pytest

from repro.core.allocator import Policy, allocate
from repro.core.measure import (
    ResourceKind,
    find_excessive_sets,
    measure_fu,
    measure_registers,
)
from repro.core.transforms.base import TransformError
from repro.core.transforms.fu_seq import propose_fu_sequencing
from repro.core.transforms.reg_seq import propose_register_sequencing
from repro.core.transforms.spill import propose_spills
from repro.graph.dag import DependenceDAG
from repro.ir.instructions import Addr
from repro.machine.model import MachineModel


class TestFigure3aFUSequencing:
    """Fig. 3(a): one edge G -> H reduces FU requirements 4 -> 3."""

    def test_paper_edge_reduces_requirement(self, fig2_dag, fig2_uid_of):
        machine = MachineModel.homogeneous(3, 8)
        fig2_dag.add_sequence_edge(fig2_uid_of["G"], fig2_uid_of["H"])
        assert measure_fu(fig2_dag, machine, "any").required == 3

    def test_heuristic_reaches_three(self, fig2_dag):
        machine = MachineModel.homogeneous(3, 8)
        req = measure_fu(fig2_dag, machine, "any")
        (ecs, *_) = find_excessive_sets(fig2_dag, req)
        candidates = propose_fu_sequencing(fig2_dag, ecs)
        assert candidates
        reductions = []
        for candidate in candidates:
            new_dag = candidate.apply()
            reductions.append(measure_fu(new_dag, machine, "any").required)
        assert min(reductions) == 3

    def test_candidates_preserve_acyclicity(self, fig2_dag):
        machine = MachineModel.homogeneous(3, 8)
        req = measure_fu(fig2_dag, machine, "any")
        (ecs, *_) = find_excessive_sets(fig2_dag, req)
        for candidate in propose_fu_sequencing(fig2_dag, ecs):
            candidate.apply().topological_order()

    def test_reduction_to_two(self, fig2_dag):
        machine = MachineModel.homogeneous(2, 8)
        result = allocate(fig2_dag, machine)
        fu = [r for r in result.requirements if r.kind is ResourceKind.FUNCTIONAL_UNIT]
        assert fu[0].required <= 2


class TestFigure3bRegisterSequencing:
    """Fig. 3(b): delaying G, H until after I reduces registers 5 -> 4."""

    def test_paper_edges_reduce_requirement(self, fig2_dag, fig2_uid_of):
        machine = MachineModel.homogeneous(8, 4)
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["G"])
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["H"])
        assert measure_registers(fig2_dag, machine).required == 4

    def test_paper_stage_structure(self, fig2_dag, fig2_uid_of):
        """After the edit, Stage1 = ancestors of {G,H}, Stage2 = rest."""
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["G"])
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["H"])
        stage1_expected = {"A", "B", "C", "D", "E", "F", "I"}
        ancestors = set()
        for root in ("G", "H"):
            ancestors |= {
                uid for uid in fig2_dag.ancestors(fig2_uid_of[root])
            }
        names = {}
        for uid in fig2_dag.op_nodes():
            text = str(fig2_dag.instruction(uid))
            names[uid] = "store" if text.startswith("store") else text.split(" ")[0]
        stage1 = {names[u] for u in ancestors if u in names}
        assert stage1 == stage1_expected

    def test_heuristic_reduces_registers(self, fig2_dag):
        machine = MachineModel.homogeneous(8, 4)
        req = measure_registers(fig2_dag, machine)
        assert req.required == 5
        improved = []
        for ecs in find_excessive_sets(fig2_dag, req):
            for candidate in propose_register_sequencing(fig2_dag, ecs):
                try:
                    new_dag = candidate.apply()
                except TransformError:
                    continue
                improved.append(measure_registers(new_dag, machine).required)
        for ecs in find_excessive_sets(fig2_dag, req):
            for candidate in propose_spills(fig2_dag, ecs):
                try:
                    new_dag = candidate.apply()
                except TransformError:
                    continue
                improved.append(measure_registers(new_dag, machine).required)
        assert improved and min(improved) <= 4


class TestFigure3cSpill:
    """Fig. 3(c): spilling D reduces registers 5 -> 3.

    The figure's "three registers" holds when the reload is delayed past
    node I (which kills E and F) — exactly where Figure 3(c) draws
    "Load D".  With the reload only sequenced after E and F's *issue*
    (the literal "after SD1's leaves" reading), the worst case over all
    schedules is 4, because a schedule may delay I while G and H run.
    Both readings are pinned down here; URSA's own kill-frontier
    heuristic implements the one that achieves the figure's number.
    """

    def test_literal_reading_measures_four(self, fig2_dag, fig2_uid_of):
        machine = MachineModel.homogeneous(8, 3)
        spill, reload, _ = fig2_dag.insert_spill(
            "D", [fig2_uid_of["G"], fig2_uid_of["H"]], Addr("%spill", 0)
        )
        fig2_dag.add_sequence_edge(spill, fig2_uid_of["B"])
        fig2_dag.add_sequence_edge(spill, fig2_uid_of["C"])
        fig2_dag.add_sequence_edge(fig2_uid_of["E"], reload)
        fig2_dag.add_sequence_edge(fig2_uid_of["F"], reload)
        # E and F stay live until I issues, so {E, F, G, H} can coexist.
        assert measure_registers(fig2_dag, machine).required == 4

    def test_paper_spill_reduces_requirement_to_three(
        self, fig2_dag, fig2_uid_of
    ):
        machine = MachineModel.homogeneous(8, 3)
        spill, reload, _ = fig2_dag.insert_spill(
            "D", [fig2_uid_of["G"], fig2_uid_of["H"]], Addr("%spill", 0)
        )
        fig2_dag.add_sequence_edge(spill, fig2_uid_of["B"])
        fig2_dag.add_sequence_edge(spill, fig2_uid_of["C"])
        # Reload after SD1's kill frontier (node I), as drawn in Fig 3(c).
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], reload)
        assert measure_registers(fig2_dag, machine).required == 3

    def test_heuristic_spill_candidates_reduce(self, fig2_dag):
        machine = MachineModel.homogeneous(8, 3)
        req = measure_registers(fig2_dag, machine)
        improved = []
        for ecs in find_excessive_sets(fig2_dag, req):
            for candidate in propose_spills(fig2_dag, ecs):
                try:
                    new_dag = candidate.apply()
                except TransformError:
                    continue
                improved.append(measure_registers(new_dag, machine).required)
        assert improved and min(improved) < req.required

    def test_spill_preserves_semantics(self, fig2_dag, fig2_uid_of):
        from repro.ir.interp import run_trace

        fig2_dag.insert_spill(
            "D", [fig2_uid_of["G"], fig2_uid_of["H"]], Addr("%spill", 0)
        )
        result = run_trace(fig2_dag.linearize(), {("v", 0): 6})
        assert result.stores_to("z") == {0: 25}


class TestFigure3dCombined:
    """Fig. 3(d): combined transformations reach 2 FUs and 3 registers."""

    @pytest.mark.parametrize(
        "policy", [Policy.INTEGRATED, Policy.PHASED]
    )
    def test_allocation_converges(self, fig2_dag, policy):
        machine = MachineModel.homogeneous(2, 3)
        result = allocate(fig2_dag, machine, policy=policy)
        assert result.converged
        by_kind = {(r.kind, r.cls): r.required for r in result.requirements}
        assert by_kind[(ResourceKind.FUNCTIONAL_UNIT, "any")] <= 2
        assert by_kind[(ResourceKind.REGISTER, "gpr")] <= 3

    def test_transformed_dag_still_correct(self, fig2_dag):
        from repro.ir.interp import run_trace

        machine = MachineModel.homogeneous(2, 3)
        result = allocate(fig2_dag, machine)
        out = run_trace(result.dag.linearize(), {("v", 0): 6})
        assert out.stores_to("z") == {0: 25}

    def test_original_dag_untouched(self, fig2_dag, machine44):
        before = fig2_dag.graph.number_of_edges()
        allocate(fig2_dag, MachineModel.homogeneous(2, 3))
        assert fig2_dag.graph.number_of_edges() == before
