"""Unit tests for the dependence DAG."""

import pytest

from repro.graph.dag import CycleError, DependenceDAG, EdgeKind
from repro.ir.instructions import Addr
from repro.ir.parser import parse_trace


class TestConstruction:
    def test_data_edges_follow_values(self, fig2_dag, fig2_uid_of):
        a, b = fig2_uid_of["A"], fig2_uid_of["B"]
        data = fig2_dag.graph.get_edge_data(a, b)
        assert data["kind"] is EdgeKind.DATA

    def test_single_root_and_leaf(self, fig2_dag):
        assert fig2_dag.graph.in_degree(fig2_dag.entry) == 0
        assert fig2_dag.graph.out_degree(fig2_dag.exit) == 0
        for uid in fig2_dag.op_nodes():
            assert fig2_dag.graph.in_degree(uid) > 0
            assert fig2_dag.graph.out_degree(uid) > 0

    def test_invariants_hold(self, fig2_dag):
        fig2_dag.check_invariants()

    def test_memory_edges_between_aliasing_stores(self):
        insts = parse_trace(
            "a = 1\nstore [m], a\nb = 2\nstore [m], b"
        )
        dag = DependenceDAG.from_trace(insts)
        stores = [u for u in dag.op_nodes() if dag.instruction(u).is_memory_write]
        assert dag.reaches(stores[0], stores[1])

    def test_no_memory_edges_between_disjoint_cells(self):
        insts = parse_trace("a = 1\nstore [m], a\nb = 2\nstore [m+4], b")
        dag = DependenceDAG.from_trace(insts)
        stores = [u for u in dag.op_nodes() if dag.instruction(u).is_memory_write]
        assert dag.independent(stores[0], stores[1])

    def test_store_load_ordering(self):
        insts = parse_trace("a = 1\nstore [m], a\nv = load [m]\nstore [z], v")
        dag = DependenceDAG.from_trace(insts)
        ops = dag.op_nodes()
        store = next(u for u in ops if str(dag.instruction(u)).startswith("store [m]"))
        load = next(u for u in ops if dag.instruction(u).is_memory_read)
        assert dag.reaches(store, load)

    def test_branches_pinned_in_order(self):
        insts = parse_trace(
            "c = 1\nd = 2\nif c goto L8\nif d goto L9"
        )
        dag = DependenceDAG.from_trace(insts)
        cbrs = [u for u in dag.op_nodes() if dag.instruction(u).op.value == "cbr"]
        assert dag.reaches(cbrs[0], cbrs[1])

    def test_stores_do_not_cross_branches(self):
        insts = parse_trace(
            "a = 1\nstore [m], a\nc = 1\nif c goto L9\nb = 2\nstore [n], b"
        )
        dag = DependenceDAG.from_trace(insts)
        ops = dag.op_nodes()
        branch = next(u for u in ops if dag.instruction(u).op.value == "cbr")
        store_m = next(u for u in ops if str(dag.instruction(u)) == "store [m], a")
        store_n = next(u for u in ops if str(dag.instruction(u)) == "store [n], b")
        assert dag.reaches(store_m, branch)
        assert dag.reaches(branch, store_n)

    def test_live_out_values_used_by_exit(self):
        insts = parse_trace("a = 1\nb = a + 1")
        dag = DependenceDAG.from_trace(insts, live_out=["b"])
        def_b = dag.value_defs["b"]
        assert dag.graph.has_edge(def_b, dag.exit)
        assert dag.live_out == frozenset({"b"})

    def test_live_in_values_defined_by_entry(self):
        insts = parse_trace("b = a + 1\nstore [z], b")
        dag = DependenceDAG.from_trace(insts)
        assert dag.value_defs["a"] == dag.entry

    def test_non_single_assignment_rejected_without_rename(self):
        insts = parse_trace("a = 1\na = 2")
        with pytest.raises(ValueError):
            DependenceDAG.from_trace(insts, rename=False)


class TestQueries:
    def test_reaches_transitive(self, fig2_dag, fig2_uid_of):
        assert fig2_dag.reaches(fig2_uid_of["A"], fig2_uid_of["K"])

    def test_reaches_not_reflexive(self, fig2_dag, fig2_uid_of):
        assert not fig2_dag.reaches(fig2_uid_of["A"], fig2_uid_of["A"])

    def test_independent_nodes(self, fig2_dag, fig2_uid_of):
        assert fig2_dag.independent(fig2_uid_of["E"], fig2_uid_of["G"])
        assert not fig2_dag.independent(fig2_uid_of["D"], fig2_uid_of["G"])

    def test_ancestors_descendants_duality(self, fig2_dag, fig2_uid_of):
        g = fig2_uid_of["G"]
        assert fig2_uid_of["D"] in fig2_dag.ancestors(g)
        assert g in fig2_dag.descendants(fig2_uid_of["D"])

    def test_topological_order_valid(self, fig2_dag):
        order = fig2_dag.topological_order()
        position = {uid: i for i, uid in enumerate(order)}
        for u, v in fig2_dag.graph.edges:
            assert position[u] < position[v]

    def test_asap_alap_bounds(self, fig2_dag):
        asap = fig2_dag.asap()
        alap = fig2_dag.alap()
        for uid in fig2_dag.op_nodes():
            assert asap[uid] <= alap[uid]

    def test_critical_path_fig2(self, fig2_dag):
        # A -> B -> E -> I -> K -> store = 6 unit-latency ops.
        assert fig2_dag.critical_path_length() == 6


class TestMutation:
    def test_add_sequence_edge(self, fig2_dag, fig2_uid_of):
        g, h = fig2_uid_of["G"], fig2_uid_of["H"]
        assert fig2_dag.add_sequence_edge(g, h)
        assert fig2_dag.reaches(g, h)

    def test_cycle_rejected(self, fig2_dag, fig2_uid_of):
        with pytest.raises(CycleError):
            fig2_dag.add_sequence_edge(fig2_uid_of["K"], fig2_uid_of["A"])

    def test_self_edge_rejected(self, fig2_dag, fig2_uid_of):
        with pytest.raises(CycleError):
            fig2_dag.add_sequence_edge(fig2_uid_of["A"], fig2_uid_of["A"])

    def test_redundant_edge_returns_false(self, fig2_dag, fig2_uid_of):
        assert not fig2_dag.add_sequence_edge(
            fig2_uid_of["A"], fig2_uid_of["K"]
        )

    def test_copy_is_independent(self, fig2_dag, fig2_uid_of):
        clone = fig2_dag.copy()
        clone.add_sequence_edge(fig2_uid_of["G"], fig2_uid_of["H"])
        assert clone.reaches(fig2_uid_of["G"], fig2_uid_of["H"])
        assert fig2_dag.independent(fig2_uid_of["G"], fig2_uid_of["H"])

    def test_insert_spill_rewires_uses(self, fig2_dag, fig2_uid_of):
        d = fig2_uid_of["D"]
        uses = [fig2_uid_of["G"], fig2_uid_of["H"]]
        spill, reload, new_name = fig2_dag.insert_spill(
            "D", uses, Addr("%spill", 0)
        )
        fig2_dag.check_invariants()
        assert fig2_dag.reaches(d, spill)
        assert fig2_dag.reaches(spill, reload)
        for use in uses:
            assert new_name in set(fig2_dag.instruction(use).uses())
            assert fig2_dag.graph.has_edge(reload, use)

    def test_insert_spill_keeps_acyclic(self, fig2_dag, fig2_uid_of):
        fig2_dag.insert_spill(
            "D", [fig2_uid_of["G"], fig2_uid_of["H"]], Addr("%spill", 0)
        )
        fig2_dag.topological_order()  # raises on cycles

    def test_linearize_is_schedulable(self, fig2_dag):
        from repro.ir.interp import run_trace

        result = run_trace(fig2_dag.linearize(), {("v", 0): 6})
        assert result.stores_to("z") == {0: 25}


class TestVerifierSurfacedRegressions:
    """Fixes surfaced by running ``repro.verify`` over the seed code."""

    def test_repeated_operand_records_one_use(self):
        # `c = b * b` reads b twice but is a single user node; the old
        # from_trace appended the uid once per operand occurrence.
        dag = DependenceDAG.from_trace(
            parse_trace("b = load [x]\nc = b * b\nstore [y], c")
        )
        users = dag.value_uses["b"]
        assert len(users) == len(set(users)) == 1

    def test_repeated_operand_verifies_clean(self):
        from repro.verify import verify_dag

        dag = DependenceDAG.from_trace(
            parse_trace("b = load [x]\nc = b * b\nstore [y], c")
        )
        assert verify_dag(dag).ok

    def test_insert_spill_accepts_generator_and_duplicates(self):
        dag = DependenceDAG.from_trace(
            parse_trace("a = load [x]\nb = a + 1\nc = a + 2\nstore [y], b\nstore [y+4], c")
        )
        uses = (u for u in [dag.value_defs["b"], dag.value_defs["c"],
                            dag.value_defs["c"]])
        _, reload_uid, new_name = dag.insert_spill("a", uses, Addr("%t", 0))
        dag.check_invariants()
        # Duplicated uid in the input must not double-record the use.
        assert dag.value_uses[new_name].count(dag.value_defs["c"]) == 1

    def test_insert_remat_generator_retargets_live_out(self):
        dag = DependenceDAG.from_trace(
            parse_trace("k = 5\na = load [x]\nb = a + k\nstore [y], b"),
            live_out=("k",),
        )
        late = (u for u in [dag.exit])  # generator, consumed once
        new_uid, new_name = dag.insert_remat("k", late)
        dag.check_invariants()
        # The rematerialized value must take over the live-out role.
        assert new_name in dag.live_out and "k" not in dag.live_out
        assert dag.graph.has_edge(new_uid, dag.exit)
