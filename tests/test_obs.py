"""Tests for the observability layer (``repro.obs``).

Covers the contract in docs/observability.md: disabled-by-default (no
events recorded, no observer active), span nesting via the ``depth``
field, counter/peak totals, the JSONL round trip through the schema
validator and the reporting renderer, and the CLI ``--trace`` /
``--profile`` flags.
"""

from __future__ import annotations

import json

import pytest

from repro import MachineModel, compile_trace, obs
from repro.analysis.reporting import trace_summary
from repro.cli import main
from repro.obs import (
    Observer,
    ObserverError,
    SCHEMA_VERSION,
    SchemaError,
    aggregate_spans,
    commit_log,
    read_jsonl,
    scalar_totals,
    validate_record,
)
from repro.workloads.kernels import kernel


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestDisabledByDefault:
    def test_no_observer_active(self):
        assert obs.active() is None

    def test_calls_are_noops_without_capture(self):
        # None of these may raise or record anything anywhere.
        with obs.span("nothing", detail=1):
            obs.count("nothing", 5)
            obs.peak("nothing", 5)
            obs.event("nothing", detail=1)
        assert obs.active() is None

    def test_pipeline_emits_nothing_when_disabled(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 3)
        compile_trace(fig2_trace, machine, method="ursa")
        # A capture opened *afterwards* must start empty: nothing leaked.
        with obs.capture() as trace:
            pass
        assert trace.counters == {}
        assert [r["type"] for r in trace.events][0] == "meta"
        assert all(r["type"] in ("meta", "counter", "peak") for r in trace.events)

    def test_capture_is_scoped(self):
        with obs.capture() as trace:
            obs.count("inside")
        obs.count("outside")  # after exit: no-op
        assert trace.counters == {"inside": 1}


class TestSpansAndEvents:
    def test_span_nesting_depths(self):
        with obs.capture(clock=FakeClock()) as trace:
            with obs.span("outer"):
                with obs.span("inner"):
                    obs.event("tick")
        spans = {r["name"]: r for r in trace.events if r["type"] == "span"}
        assert spans["outer"]["depth"] == 0
        assert spans["inner"]["depth"] == 1
        event = next(r for r in trace.events if r["type"] == "event")
        assert event["depth"] == 2  # inside both spans
        # Spans close inner-first, so the inner record precedes the outer.
        names = [r["name"] for r in trace.events if r["type"] == "span"]
        assert names == ["inner", "outer"]

    def test_span_durations_from_clock(self):
        with obs.capture(clock=FakeClock(step=1.0)) as trace:
            with obs.span("timed"):
                pass
        span = next(r for r in trace.events if r["type"] == "span")
        assert span["dur"] == pytest.approx(1.0)

    def test_user_fields_are_flat(self):
        with obs.capture() as trace:
            obs.event("custom", kind="spill", excess=3)
        event = next(r for r in trace.events if r["name"] == "custom")
        assert event["kind"] == "spill" and event["excess"] == 3

    def test_reserved_field_names_rejected(self):
        with obs.capture():
            with pytest.raises(ObserverError):
                obs.event("bad", dur=1.0)
            with pytest.raises(ObserverError):
                obs.span("bad", type="span")

    def test_emit_after_finish_rejected(self):
        with obs.capture() as trace:
            pass
        with pytest.raises(ObserverError):
            trace.event("late")


class TestCountersAndPeaks:
    def test_counter_totals(self):
        with obs.capture() as trace:
            obs.count("a")
            obs.count("a", 4)
            obs.count("b", 2)
        assert trace.counters == {"a": 5, "b": 2}
        totals = scalar_totals(trace.events, "counter")
        assert totals == {"a": 5, "b": 2}

    def test_peak_keeps_maximum(self):
        with obs.capture() as trace:
            obs.peak("width", 3)
            obs.peak("width", 7)
            obs.peak("width", 5)
        assert trace.peaks == {"width": 7}
        assert scalar_totals(trace.events, "peak") == {"width": 7}

    def test_counters_written_once_on_finish(self):
        with obs.capture() as trace:
            obs.count("x", 2)
            obs.count("x", 3)
        records = [r for r in trace.events if r["type"] == "counter"]
        assert len(records) == 1
        assert records[0]["name"] == "x" and records[0]["total"] == 5


class TestPipelineInstrumentation:
    @pytest.fixture(scope="class")
    def fig2_capture(self):
        machine = MachineModel.homogeneous(2, 3)
        with obs.capture() as trace:
            result = compile_trace(kernel("figure2"), machine, method="ursa")
        return trace, result

    def test_phase_spans_present(self, fig2_capture):
        trace, _ = fig2_capture
        names = {r["name"] for r in trace.events if r["type"] == "span"}
        assert {"phase.build_dag", "phase.allocate", "phase.assign",
                "phase.codegen", "phase.verify"} <= names

    def test_commit_events_match_allocation_records(self, fig2_capture):
        trace, result = fig2_capture
        commits = commit_log(trace.events)
        assert len(commits) == len(result.allocation.records)
        for event, record in zip(commits, result.allocation.records):
            assert event["kind"] == record.kind
            assert event["iteration"] == record.iteration
            assert event["excess_after"] == record.excess_after

    def test_hot_path_counters_fired(self, fig2_capture):
        trace, _ = fig2_capture
        for counter in (
            "matching.augmenting_paths",
            "dilworth.decompositions",
            "measure.calls",
            "kill.selections",
            "allocate.candidates",
            "sched.cycles",
        ):
            assert trace.counters.get(counter, 0) > 0, counter

    def test_measured_widths_as_peaks(self, fig2_capture):
        trace, _ = fig2_capture
        # The paper's Figure 2 numbers: 4 FUs, 5 registers worst case.
        assert trace.peaks["measure.fu_width_peak"] == 4
        assert trace.peaks["measure.reg_width_peak"] == 5


class TestJsonlRoundTrip:
    def test_write_read_validate_render(self, tmp_path):
        machine = MachineModel.homogeneous(2, 3)
        with obs.capture() as trace:
            compile_trace(kernel("figure2"), machine, method="ursa")
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(path)

        records = read_jsonl(path)  # validates every record
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert len(records) == len(trace.events)

        # The renderer accepts the file, the record list, and the live
        # observer, and all three agree.
        from_file = trace_summary(path)
        from_records = trace_summary(records)
        from_observer = trace_summary(trace)
        assert from_file == from_records == from_observer
        assert "phase.allocate" in from_file
        assert "matching.augmenting_paths" in from_file
        assert "committed transformations" in from_file

    def test_streaming_sink_matches_memory(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with path.open("w") as sink:
            with obs.capture(sink=sink) as trace:
                with obs.span("s"):
                    obs.count("c", 3)
        streamed = [json.loads(line) for line in path.read_text().splitlines()]
        assert streamed == trace.events

    def test_unfinished_observer_still_renders_counters(self):
        observer = Observer(clock=FakeClock())
        observer.count("pending", 2)
        text = trace_summary(observer)
        assert "pending" in text

    def test_invalid_records_rejected(self, tmp_path):
        for bad in (
            {"type": "nope", "name": "x", "t": 0.0},
            {"type": "span", "name": "x", "t": 0.0},  # no dur/depth
            {"type": "counter", "name": "x", "t": 0.0},  # no total
            {"type": "event", "t": 0.0},  # no name
        ):
            with pytest.raises(SchemaError):
                validate_record(bad)
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(SchemaError):
            read_jsonl(path)

    def test_aggregate_spans(self):
        records = [
            {"type": "span", "name": "a", "t": 0.0, "dur": 1.0, "depth": 0},
            {"type": "span", "name": "a", "t": 2.0, "dur": 3.0, "depth": 0},
            {"type": "event", "name": "ignored", "t": 0.0, "depth": 0},
        ]
        stats = aggregate_spans(records)
        assert stats["a"]["calls"] == 2
        assert stats["a"]["total"] == pytest.approx(4.0)
        assert stats["a"]["mean"] == pytest.approx(2.0)
        assert stats["a"]["max"] == pytest.approx(3.0)


class TestCli:
    def test_profile_flag_prints_table(self, capsys):
        assert main(
            ["compile", "--kernel", "figure2", "--fus", "2", "--regs", "3",
             "--profile"]
        ) == 0
        captured = capsys.readouterr()
        assert "verified=True" in captured.out
        assert "per-pass timing" in captured.err
        assert "phase.allocate" in captured.err

    def test_trace_flag_writes_valid_jsonl(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        assert main(
            ["compile", "--kernel", "figure2", "--trace", str(path)]
        ) == 0
        records = read_jsonl(path)
        names = {r["name"] for r in records}
        assert "phase.allocate" in names
        assert "trace written" in capsys.readouterr().err

    def test_measure_profile(self, capsys):
        assert main(
            ["measure", "--kernel", "figure2", "--fus", "3", "--regs", "4",
             "--profile"]
        ) == 0
        err = capsys.readouterr().err
        assert "measure.calls" in err

    def test_flags_off_is_silent(self, capsys):
        assert main(["measure", "--kernel", "figure2"]) == 0
        assert capsys.readouterr().err == ""
