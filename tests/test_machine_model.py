"""Unit tests for machine descriptions."""

import pytest

from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, default_fu_class
from repro.machine.model import FUClass, MachineConfigError, MachineModel


class TestFUClass:
    def test_universal_class_executes_anything(self):
        fu = FUClass("any", 2)
        assert fu.executes(Opcode.MUL)
        assert fu.executes(Opcode.LOAD)

    def test_restricted_class(self):
        fu = FUClass("mem", 1, ops=frozenset({Opcode.LOAD, Opcode.STORE}))
        assert fu.executes(Opcode.LOAD)
        assert not fu.executes(Opcode.ADD)


class TestMachineModel:
    def test_homogeneous(self):
        machine = MachineModel.homogeneous(4, 8)
        assert machine.total_fus == 4
        assert machine.register_count() == 8
        assert machine.fu_class_for(Opcode.MUL).name == "any"

    def test_classed_dispatch(self):
        machine = MachineModel.classed(alu=2, mul=1, mem=1, branch=1)
        assert machine.fu_class_for(Opcode.ADD).name == "alu"
        assert machine.fu_class_for(Opcode.MUL).name == "mul"
        assert machine.fu_class_for(Opcode.LOAD).name == "mem"
        assert machine.fu_class_for(Opcode.CBR).name == "branch"

    def test_classed_latencies(self):
        machine = MachineModel.classed(latencies={"mem": 3, "mul": 2})
        load = Instruction(Opcode.LOAD, dest="v", addr=None)
        assert machine.fu_class_for(Opcode.LOAD).latency == 3
        assert machine.fu_class_for(Opcode.MUL).latency == 2
        assert machine.fu_class_for(Opcode.ADD).latency == 1

    def test_latency_of_pseudo_is_zero(self):
        machine = MachineModel.homogeneous(2, 4)
        assert machine.latency_of(Instruction(Opcode.ENTRY)) == 0

    def test_dual_regclass_classification(self):
        machine = MachineModel.dual_regclass()
        assert machine.reg_class_of("f3") == "flt"
        assert machine.reg_class_of("x") == "int"
        assert set(machine.registers) == {"int", "flt"}

    def test_no_fu_classes_rejected(self):
        with pytest.raises(MachineConfigError):
            MachineModel("bad", (), {"gpr": 4})

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(MachineConfigError):
            MachineModel(
                "bad", (FUClass("a", 1), FUClass("a", 1)), {"gpr": 4}
            )

    def test_zero_registers_rejected(self):
        with pytest.raises(MachineConfigError):
            MachineModel.homogeneous(2, 0)

    def test_unknown_fu_class_lookup(self):
        machine = MachineModel.homogeneous(2, 4)
        with pytest.raises(KeyError):
            machine.fu_class("mystery")

    def test_describe_mentions_shape(self):
        text = MachineModel.homogeneous(4, 8).describe()
        assert "4xany" in text and "8 gpr" in text

    def test_default_fu_class_mapping(self):
        assert default_fu_class(Opcode.ADD) == "alu"
        assert default_fu_class(Opcode.DIV) == "mul"
        assert default_fu_class(Opcode.SPILL) == "mem"
        assert default_fu_class(Opcode.HALT) == "branch"
