"""Tests for schedule metrics and table formatting."""

from repro.analysis.metrics import STATS_HEADERS, ScheduleStats, speedup
from repro.ir.printer import format_table
from repro.machine.model import MachineModel
from repro.pipeline import compile_trace
from repro.workloads.kernels import kernel


class TestScheduleStats:
    def test_collect_from_compilation(self):
        machine = MachineModel.homogeneous(4, 6)
        result = compile_trace(kernel("figure2"), machine)
        stats = result.stats
        assert stats.method == "ursa"
        assert stats.machine == machine.name
        assert stats.cycles >= 1
        assert stats.ops >= 12
        assert 0 < stats.utilization <= 1
        assert stats.max_pressure["gpr"] <= 6

    def test_row_matches_headers(self):
        machine = MachineModel.homogeneous(4, 6)
        result = compile_trace(kernel("figure2"), machine)
        assert len(result.stats.row()) == len(STATS_HEADERS)

    def test_verified_rendering(self):
        machine = MachineModel.homogeneous(4, 6)
        ok = compile_trace(kernel("figure2"), machine).stats
        assert ok.row()[-1] == "ok"
        unverified = compile_trace(
            kernel("figure2"), machine, verify=False
        ).stats
        assert unverified.row()[-1] == "?"

    def test_speedup(self):
        machine = MachineModel.homogeneous(4, 6)
        a = compile_trace(kernel("figure2"), machine).stats
        assert speedup(a, a) == 1.0


class TestFormatTable:
    def test_renders_rows_and_title(self):
        text = format_table(
            ["name", "value"], [["x", 1], ["yy", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "yy" in lines[-1]

    def test_column_alignment(self):
        text = format_table(["a"], [["longvalue"], ["x"]])
        lines = text.splitlines()
        assert len(lines[1]) == len("longvalue")
