"""Unit and property tests for the bipartite matching engines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.matching import (
    PrioritizedMatcher,
    hopcroft_karp,
    maximum_matching,
    minimum_vertex_cover,
)


def random_bipartite(n_left, n_right, density, seed):
    rng = random.Random(seed)
    return [
        (f"L{i}", f"R{j}")
        for i in range(n_left)
        for j in range(n_right)
        if rng.random() < density
    ]


class TestPrioritizedMatcher:
    def test_empty(self):
        matcher = PrioritizedMatcher()
        assert matcher.maximize() == 0
        assert matcher.size == 0

    def test_perfect_matching(self):
        matcher = PrioritizedMatcher()
        matcher.add_edges([(i, f"r{i}") for i in range(5)])
        assert matcher.size == 5

    def test_augmenting_path_reroutes(self):
        # L0 can take R0 or R1; L1 only R0 — maximum needs rerouting.
        matcher = PrioritizedMatcher()
        matcher.add_edges([("L0", "R0"), ("L0", "R1"), ("L1", "R0")])
        assert matcher.size == 2

    def test_batched_insertion_is_still_maximum(self):
        edges = random_bipartite(12, 12, 0.3, seed=7)
        matcher = PrioritizedMatcher()
        half = len(edges) // 2
        matcher.add_edges(edges[:half])
        matcher.add_edges(edges[half:])
        reference = hopcroft_karp({u for u, _ in edges}, edges)
        assert matcher.size == len(reference)

    def test_priority_edges_preferred(self):
        # Both (A, X) and (B, X) possible; A-X arrives in the first
        # batch and must survive (B gets nothing).
        matcher = PrioritizedMatcher()
        matcher.add_edges([("A", "X")])
        matcher.add_edges([("B", "X")])
        assert matcher.match_left["A"] == "X"
        assert "B" not in matcher.match_left

    def test_matching_is_consistent(self):
        edges = random_bipartite(10, 8, 0.4, seed=3)
        matcher = PrioritizedMatcher()
        matcher.add_edges(edges)
        # Left->right and right->left views agree and rights are unique.
        rights = list(matcher.match_left.values())
        assert len(rights) == len(set(rights))
        for left, right in matcher.match_left.items():
            assert matcher.match_right[right] == left
            assert (left, right) in set(edges)


class TestMaximumMatching:
    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_hopcroft_karp(self, seed):
        edges = random_bipartite(15, 15, 0.25, seed=seed)
        ours = maximum_matching(edges)
        reference = hopcroft_karp({u for u, _ in edges}, edges)
        assert len(ours) == len(reference)

    def test_with_priorities(self):
        edges = random_bipartite(10, 10, 0.35, seed=11)
        priority = {edge: i % 3 for i, edge in enumerate(edges)}
        ours = maximum_matching(edges, priority)
        reference = hopcroft_karp({u for u, _ in edges}, edges)
        assert len(ours) == len(reference)


class TestKoenigCover:
    @pytest.mark.parametrize("seed", range(5))
    def test_cover_size_equals_matching(self, seed):
        edges = random_bipartite(12, 12, 0.3, seed=seed)
        lefts = {u for u, _ in edges}
        rights = {v for _, v in edges}
        matching = hopcroft_karp(lefts, edges)
        cover_l, cover_r = minimum_vertex_cover(lefts, rights, edges, matching)
        # König: |cover| == |matching|.
        assert len(cover_l) + len(cover_r) == len(matching)

    @pytest.mark.parametrize("seed", range(5))
    def test_cover_covers_every_edge(self, seed):
        edges = random_bipartite(12, 12, 0.3, seed=seed)
        lefts = {u for u, _ in edges}
        rights = {v for _, v in edges}
        matching = hopcroft_karp(lefts, edges)
        cover_l, cover_r = minimum_vertex_cover(lefts, rights, edges, matching)
        for u, v in edges:
            assert u in cover_l or v in cover_r


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**30), st.integers(1, 14), st.integers(1, 14))
def test_property_matcher_maximality(seed, n_left, n_right):
    """PrioritizedMatcher (random batch split) is always maximum."""
    edges = random_bipartite(n_left, n_right, 0.35, seed)
    rng = random.Random(seed ^ 0xABCD)
    matcher = PrioritizedMatcher()
    remaining = list(edges)
    while remaining:
        cut = rng.randrange(1, len(remaining) + 1)
        matcher.add_edges(remaining[:cut])
        remaining = remaining[cut:]
    reference = hopcroft_karp({u for u, _ in edges}, edges)
    assert matcher.size == len(reference)
