"""Tests for the classical scalar optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.interp import Interpreter
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_trace
from repro.ir.rename import is_single_assignment
from repro.machine.model import MachineModel
from repro.opt import (
    OptStats,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    optimize_trace,
    propagate_copies,
    simplify_algebraic,
)
from repro.pipeline import compile_trace
from repro.workloads.random_dags import random_layered_trace


def run_both(before, after, env=None, memory=None):
    interp = Interpreter(memory or {})
    first = interp.run_trace(list(before), env=dict(env or {}))
    second = interp.run_trace(list(after), env=dict(env or {}))
    strip = lambda mem: {c: v for c, v in mem.items() if not c[0].startswith("%")}
    assert strip(first.memory) == strip(second.memory)


class TestFoldConstants:
    def test_binary_fold(self):
        out = fold_constants(parse_trace("a = 3\nb = 4\nc = a * b\nstore [z], c"))
        assert any(str(i) == "c = 12" for i in out)

    def test_chain_folds(self):
        out = fold_constants(
            parse_trace("a = 2\nb = a + 1\nc = b * b\nstore [z], c")
        )
        assert any(str(i) == "c = 9" for i in out)

    def test_division_by_zero_not_folded(self):
        insts = parse_trace("a = 1\nb = 0\nc = a / b")
        out = fold_constants(insts)
        assert any(i.op is Opcode.DIV for i in out)

    def test_neg_folds(self):
        out = fold_constants(parse_trace("a = 5\nb = -a\nstore [z], b"))
        assert any(str(i) == "b = -5" for i in out)


class TestAlgebraic:
    @pytest.mark.parametrize(
        "line,expected",
        [
            ("c = x * 0", "c = 0"),
            ("c = 0 * x", "c = 0"),
            ("c = x * 1", "c = x"),
            ("c = x + 0", "c = x"),
            ("c = 0 + x", "c = x"),
            ("c = x - 0", "c = x"),
            ("c = x - x", "c = 0"),
            ("c = x ^ x", "c = 0"),
            ("c = x & 0", "c = 0"),
            ("c = x | 0", "c = x"),
            ("c = x / 1", "c = x"),
            ("c = x << 0", "c = x"),
            ("c = min(x, x)", "c = x"),
        ],
    )
    def test_identities(self, line, expected):
        (inst,) = simplify_algebraic(parse_trace(line))
        assert str(inst) == expected

    def test_div_by_variable_untouched(self):
        (inst,) = simplify_algebraic(parse_trace("c = 0 / x"))
        assert inst.op is Opcode.DIV


class TestCopyPropagationAndCSE:
    def test_copies_forwarded(self):
        out = propagate_copies(
            parse_trace("a = x\nb = a + 1\nstore [z], b")
        )
        assert str(out[1]) == "b = x + 1"

    def test_cse_reuses_first_computation(self):
        stats = OptStats()
        out = eliminate_common_subexpressions(
            parse_trace("c = a + b\nd = a + b\nstore [z], d"), stats
        )
        assert stats.cse_hits == 1
        assert str(out[1]) == "d = c"

    def test_cse_commutative(self):
        stats = OptStats()
        eliminate_common_subexpressions(
            parse_trace("c = a + b\nd = b + a\nstore [z], d"), stats
        )
        assert stats.cse_hits == 1

    def test_loads_never_csed(self):
        stats = OptStats()
        out = eliminate_common_subexpressions(
            parse_trace("a = load [m]\nb = load [m]\nstore [z], b"), stats
        )
        assert stats.cse_hits == 0
        assert sum(1 for i in out if i.op is Opcode.LOAD) == 2


class TestDeadCode:
    def test_dead_defs_removed(self):
        out = eliminate_dead_code(
            parse_trace("a = 1\nb = 2\nstore [z], b")
        )
        assert all(i.dest != "a" for i in out)

    def test_live_out_kept(self):
        out = eliminate_dead_code(parse_trace("a = 1\nb = 2"), live_out=["a"])
        assert any(i.dest == "a" for i in out)
        assert all(i.dest != "b" for i in out)

    def test_transitively_dead_chain_removed(self):
        out = eliminate_dead_code(
            parse_trace("a = 1\nb = a + 1\nc = b + 1\nstore [z], 7")
        )
        assert len(out) == 1

    def test_stores_and_branches_kept(self):
        out = eliminate_dead_code(
            parse_trace("c = 1\nif c goto L9\nstore [z], 5")
        )
        assert len(out) == 3  # condition needed by branch


class TestOptimizeTrace:
    def test_fixed_point_reached(self):
        insts = parse_trace(
            "a = 4\nb = 5\nc = a * b\nd = a * b\ne = c + d\nf = e\n"
            "g = f + x\nh = 0 * g\ni = g + h\ndead = i * 99\nstore [z], i"
        )
        out, stats = optimize_trace(insts)
        assert len(out) == 2
        assert stats.total > 5
        run_both(insts, out, env={"x": 11})

    def test_result_is_single_assignment(self):
        insts = parse_trace("a = 1\na = a + 1\nstore [z], a")
        out, _ = optimize_trace(insts)
        assert is_single_assignment(out)
        run_both(insts, out)

    def test_idempotent(self):
        insts = parse_trace("v = load [m]\nw = v * 2\nstore [z], w")
        once, _ = optimize_trace(insts)
        twice, stats = optimize_trace(once)
        assert [str(i) for i in once] == [str(i) for i in twice]


class TestPipelineIntegration:
    def test_optimize_flag_shrinks_code(self):
        source = (
            "a = 2\nb = 3\nc = a * b\nd = a * b\ne = c + d\n"
            "v = load [m]\nw = v * e\nstore [z], w"
        )
        machine = MachineModel.homogeneous(2, 4)
        plain = compile_trace(source, machine)
        optimized = compile_trace(source, machine, optimize=True)
        assert optimized.verified and plain.verified
        assert optimized.program.op_count < plain.program.op_count

    def test_optimize_on_dag_rejected(self, fig2_dag):
        from repro.pipeline import PipelineError

        machine = MachineModel.homogeneous(2, 4)
        with pytest.raises(PipelineError):
            compile_trace(fig2_dag, machine, optimize=True)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**30), st.integers(5, 30))
def test_property_optimizer_preserves_semantics(seed, n_ops):
    trace = random_layered_trace(n_ops=n_ops, width=4, seed=seed)
    out, _ = optimize_trace(trace)
    memory = {("in", i): (seed % 13) + i + 2 for i in range(8)}
    run_both(trace, out, memory=memory)
