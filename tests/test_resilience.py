"""Resilience layer: deadlines, budgets, rollback, the fallback ladder,
the spill-everywhere baseline, and structured CLI failures."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.core.allocator import AllocationError, URSAAllocator
from repro.core.kill import (
    _exact_min_cover,
    _exact_min_cover_budgeted,
    _greedy_min_cover,
)
from repro.core.measure import measure_all
from repro.graph.matching import hopcroft_karp
from repro.machine.model import MachineModel
from repro.pipeline import METHODS, PipelineError, build_dag, compile_trace
from repro.resilience import (
    DagCheckpoint,
    Deadline,
    DeadlineExpired,
    RollbackError,
    active_deadline,
    deadline_scope,
    guarded_apply,
)
from repro.resilience.fallback import (
    DegradationReport,
    ladder_for,
    spill_everywhere_rewrite,
    spill_everywhere_schedule,
)
from repro.scheduling.optimal import (
    anytime_schedule_length,
    optimal_schedule_length,
)
from repro.verify import verify_compilation
from tests.conftest import FIGURE2_SOURCE


def expired_deadline() -> Deadline:
    """A deadline that is already tripped (zero work budget)."""
    deadline = Deadline(work=0)
    deadline.tick()
    assert deadline.expired()
    return deadline


# ======================================================================
# Deadline semantics.
# ======================================================================
class TestDeadline:
    def test_unlimited_never_expires(self):
        deadline = Deadline()
        for _ in range(100):
            assert not deadline.tick()
        assert deadline.tripped is None

    def test_work_budget_is_sticky(self):
        deadline = Deadline(work=5)
        assert not deadline.tick(5)
        assert deadline.tick(1)
        assert deadline.tripped == "work"
        # Sticky: stays expired even though no further work is consumed.
        assert deadline.expired()

    def test_time_budget_uses_injected_clock(self):
        now = [0.0]
        deadline = Deadline(seconds=2.0, clock=lambda: now[0])
        assert not deadline.expired()
        now[0] = 1.9
        assert not deadline.expired()
        now[0] = 2.1
        assert deadline.expired()
        assert deadline.tripped == "time"

    def test_check_raises(self):
        deadline = expired_deadline()
        with pytest.raises(DeadlineExpired) as info:
            deadline.check("unit-test")
        assert info.value.site == "unit-test"

    def test_scope_stack(self):
        assert active_deadline() is None
        outer, inner = Deadline(), Deadline()
        with deadline_scope(outer):
            assert active_deadline() is outer
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is outer
        assert active_deadline() is None

    def test_none_scope_is_noop(self):
        with deadline_scope(None):
            assert active_deadline() is None


# ======================================================================
# Budgeted kill cover (satellite: no more unbounded exponential search).
# ======================================================================
def _cover_instance(n_values: int, n_nodes: int):
    """Small sets with heavy overlap: the greedy seed is not provably
    optimal from the root bound, so branch-and-bound must recurse."""
    universe = [f"v{i}" for i in range(n_values)]
    covers = {
        node: frozenset(
            universe[(node + step) % n_values] for step in (0, 1, 5)
        )
        for node in range(n_nodes)
    }
    return universe, list(range(n_nodes)), covers


class TestKillCoverBudget:
    def test_small_instance_completes(self):
        universe, nodes, covers = _cover_instance(6, 5)
        solution, complete = _exact_min_cover_budgeted(universe, nodes, covers)
        assert complete
        assert set().union(*(covers[n] for n in solution)) == set(universe)

    def test_node_budget_truncates_to_valid_cover(self):
        universe, nodes, covers = _cover_instance(12, 14)
        greedy = _greedy_min_cover(universe, nodes, covers)
        solution, complete = _exact_min_cover_budgeted(
            universe, nodes, covers, node_budget=1
        )
        assert not complete
        # Best-so-far is the greedy seed: still a valid cover, never worse.
        assert len(solution) <= len(greedy)
        assert set().union(*(covers[n] for n in solution)) == set(universe)

    def test_wrapper_signature_unchanged(self):
        universe, nodes, covers = _cover_instance(6, 5)
        assert _exact_min_cover(universe, nodes, covers) == \
            _exact_min_cover_budgeted(universe, nodes, covers)[0]

    def test_deadline_truncates(self):
        universe, nodes, covers = _cover_instance(12, 14)
        with deadline_scope(expired_deadline()):
            solution, complete = _exact_min_cover_budgeted(
                universe, nodes, covers
            )
        # The per-256-node deadline check may or may not fire before the
        # search ends on an instance this size; the cover must hold
        # regardless.
        assert set().union(*(covers[n] for n in solution)) == set(universe)


# ======================================================================
# Anytime exact scheduling.
# ======================================================================
class TestAnytimeOptimal:
    def test_exact_when_unconstrained(self, fig2_dag, machine48):
        exact = optimal_schedule_length(fig2_dag, machine48)
        result = anytime_schedule_length(fig2_dag, machine48)
        assert not result.degraded
        assert result.source == "exact"
        assert result.length == exact

    def test_expired_deadline_degrades_to_list_schedule(
        self, fig2_dag, machine48
    ):
        exact = optimal_schedule_length(fig2_dag, machine48)
        with deadline_scope(expired_deadline()):
            result = anytime_schedule_length(fig2_dag, machine48)
        assert result.degraded
        assert result.source == "list-schedule"
        assert result.length is not None
        assert result.length >= exact  # heuristic upper bound

    def test_oversized_instance_degrades(self, machine48):
        dag = build_dag(kernel_big())
        result = anytime_schedule_length(dag, machine48, max_ops=4)
        assert result.degraded
        assert result.length is not None


def kernel_big():
    from repro.workloads.kernels import kernel

    return kernel("dot-product", unroll=4)


# ======================================================================
# Deadline-aware matching.
# ======================================================================
class TestMatchingDeadline:
    EDGES = [(f"l{i}", f"r{j}") for i in range(8) for j in range(8)]
    LEFT = [f"l{i}" for i in range(8)]

    def test_unbudgeted_matching_is_maximum(self):
        matching = hopcroft_karp(self.LEFT, self.EDGES)
        assert len(matching) == 8

    def test_expired_deadline_returns_partial_valid_matching(self):
        with deadline_scope(expired_deadline()):
            matching = hopcroft_karp(self.LEFT, self.EDGES)
        # Possibly non-maximum, but structurally a matching.
        assert len(set(matching.values())) == len(matching)
        assert len(matching) <= 8

    def test_measurement_survives_expired_deadline(self, fig2_dag, machine44):
        honest = measure_all(fig2_dag, machine44)
        with deadline_scope(expired_deadline()):
            degraded = measure_all(fig2_dag, machine44)
        by_key = {(r.kind, r.cls): r.required for r in honest}
        for r in degraded:
            # Fewer augmenting passes => more chains => never underestimates.
            assert r.required >= by_key[(r.kind, r.cls)]


# ======================================================================
# Allocator: non-converged paths (satellite) + deadline + rollback.
# ======================================================================
class TestAllocatorNonConverged:
    def test_max_iterations_zero_measures_only(self, fig2_dag):
        machine = MachineModel.homogeneous(2, 4)
        result = URSAAllocator(machine, max_iterations=0).run(fig2_dag)
        assert not result.converged
        assert result.iterations == 0
        assert result.records == []
        # Requirements are the untouched initial measurement.
        fresh = measure_all(fig2_dag, machine)
        assert [(r.kind, r.cls, r.required) for r in result.requirements] == [
            (r.kind, r.cls, r.required) for r in fresh
        ]
        assert result.total_excess > 0

    def test_max_iterations_one_is_consistent(self, fig2_dag):
        machine = MachineModel.homogeneous(2, 4)
        result = URSAAllocator(machine, max_iterations=1).run(fig2_dag)
        assert not result.converged
        assert result.iterations <= 1
        assert len(result.records) <= 1
        if result.records:
            record = result.records[0]
            assert record.iteration == 1
            # The recorded post-transform excess matches the requirements
            # carried on the result.
            assert record.excess_after == result.total_excess
            assert record.excess_before >= record.excess_after

    def test_non_converged_result_still_compiles(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 4)
        from repro.core.assignment import assign

        dag = build_dag(fig2_trace)
        allocation = URSAAllocator(machine, max_iterations=0).run(dag)
        schedule = assign(allocation.dag, machine, allocation).schedule
        assert schedule.length > 0

    def test_expired_deadline_stops_loop(self, fig2_dag):
        machine = MachineModel.homogeneous(2, 4)
        with deadline_scope(expired_deadline()):
            result = URSAAllocator(machine).run(fig2_dag)
        assert result.degraded
        assert not result.converged
        assert any(
            event.startswith("deadline:") for event in result.degradation_events
        )
        assert result.records == []


class TestTransactionalRollback:
    def test_corrupt_steps_are_rolled_back(self, fig2_dag, monkeypatch):
        machine = MachineModel.homogeneous(2, 4)
        allocator = URSAAllocator(
            machine, verify_each=True, transactional=True
        )
        real_step = allocator._step

        def bad_step(dag, requirements, iteration):
            out = real_step(dag, requirements, iteration)
            if out is None:
                return None
            new_dag, new_reqs, record, txn = out
            victim = next(
                name for name, uses in new_dag.value_uses.items() if uses
            )
            new_dag.value_uses[victim].append(new_dag.value_uses[victim][0])
            return new_dag, new_reqs, record, txn

        monkeypatch.setattr(allocator, "_step", bad_step)
        with obs.capture() as observer:
            result = allocator.run(fig2_dag)
        # Every commit was corrupt, so every commit rolled back.
        assert result.records == []
        assert result.degraded
        assert any(
            event.startswith("rollback:")
            for event in result.degradation_events
        )
        assert observer.counters.get("resilience.rollbacks", 0) >= 1
        # The final DAG is the untouched input copy.
        from repro.verify import verify_dag_state

        assert verify_dag_state(result.dag, machine=machine).ok

    def test_clean_run_unaffected_by_transactional(self, fig2_dag):
        machine = MachineModel.homogeneous(2, 4)
        plain = URSAAllocator(machine).run(fig2_dag)
        transactional = URSAAllocator(machine, transactional=True).run(fig2_dag)
        assert transactional.converged == plain.converged
        assert not transactional.degraded
        assert [r.description for r in transactional.records] == [
            r.description for r in plain.records
        ]


class TestCheckpointHelpers:
    def test_guarded_apply_rejects_bad_edit(self, fig2_dag):
        before = len(fig2_dag)

        def bad_edit(dag):
            raise ValueError("broken edit")

        with pytest.raises(RollbackError):
            guarded_apply(fig2_dag, bad_edit)
        assert len(fig2_dag) == before

    def test_guarded_apply_returns_edited_clone(self, fig2_dag):
        def edit(dag):
            ops = dag.op_nodes()
            dag.add_sequence_edge(ops[0], ops[-1], reason="test")

        clone = guarded_apply(fig2_dag, edit)
        assert clone is not fig2_dag
        assert len(clone) == len(fig2_dag)

    def test_checkpoint_restore_returns_captured_state(self, fig2_dag):
        reqs = ("a", "b")
        checkpoint = DagCheckpoint.capture(fig2_dag, reqs, label="t")
        dag, restored = checkpoint.restore()
        assert dag is fig2_dag
        assert restored == ["a", "b"]


# ======================================================================
# Spill-everywhere baseline.
# ======================================================================
class TestSpillEverywhere:
    def test_rewrite_inserts_spill_reload_pairs(self, fig2_trace):
        flat = list(fig2_trace)
        rewritten = spill_everywhere_rewrite(flat, live_outs=())
        ops = [str(inst.op) for inst in rewritten]
        assert any("SPILL" in op for op in ops)
        assert any("RELOAD" in op for op in ops)
        assert len(rewritten) > len(flat)

    def test_compiles_and_verifies_on_tiny_machine(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(
            fig2_trace, machine, method="spill-everywhere"
        )
        assert result.verified
        assert result.allocation is None
        assert result.stats.spill_ops > 0
        report = verify_compilation(result, remeasure=True)
        assert not report.errors(), report.render()

    def test_method_is_registered(self):
        assert "spill-everywhere" in METHODS

    def test_infeasible_live_outs_raise(self):
        machine = MachineModel.homogeneous(2, 2)
        dag = build_dag(FIGURE2_SOURCE, live_out=["E", "F", "G"])
        with pytest.raises(AllocationError):
            spill_everywhere_schedule(dag, machine)


# ======================================================================
# The escalation ladder.
# ======================================================================
class TestFallbackLadder:
    def test_ladder_orders(self):
        assert ladder_for("ursa") == (
            "ursa", "ursa-phased", "ursa-spill", "spill-everywhere"
        )
        assert ladder_for("ursa-phased") == (
            "ursa-phased", "ursa-spill", "spill-everywhere"
        )
        assert ladder_for("ursa-seq") == (
            "ursa-seq", "ursa-spill", "spill-everywhere"
        )
        assert ladder_for("naive") == ("naive", "spill-everywhere")
        assert ladder_for("spill-everywhere") == ("spill-everywhere",)

    def test_clean_compile_stays_on_first_rung(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(fig2_trace, machine, resilient=True)
        assert result.method == "ursa"
        report = result.degradation
        assert isinstance(report, DegradationReport)
        assert not report.degraded
        assert report.attempts[0].outcome == "ok"

    def test_allocator_failure_escalates(self, fig2_trace, monkeypatch):
        machine = MachineModel.homogeneous(2, 4)

        def boom(self, dag):
            raise AllocationError("injected failure")

        monkeypatch.setattr(URSAAllocator, "run", boom)
        result = compile_trace(fig2_trace, machine, resilient=True)
        assert result.method == "spill-everywhere"
        assert result.verified
        report = result.degradation
        assert report.degraded
        assert report.final_method == "spill-everywhere"
        failed = [a for a in report.attempts if a.outcome == "failed"]
        assert len(failed) == 3  # every URSA rung
        assert all("AllocationError" in a.reason for a in failed)
        assert report.cost_delta == 0  # only one rung produced cycles

    def test_expired_deadline_skips_to_last_rung(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(
            fig2_trace, machine, resilient=True, deadline=expired_deadline()
        )
        assert result.verified
        report = result.degradation
        assert report.deadline_tripped == "work"
        skipped = [a for a in report.attempts if a.outcome == "skipped"]
        assert len(skipped) == 3
        assert report.final_method == "spill-everywhere"

    def test_report_round_trips_to_dict(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(fig2_trace, machine, resilient=True)
        payload = result.degradation.to_dict()
        assert payload["requested_method"] == "ursa"
        assert payload["final_method"] == "ursa"
        assert payload["degraded"] is False
        assert json.loads(json.dumps(payload)) == payload
        assert "degradation report" in result.degradation.render()


# ======================================================================
# Structured CLI failures (satellite).
# ======================================================================
class TestCLIExitCodes:
    def test_compiler_error_exits_2_with_one_line_diagnostic(
        self, monkeypatch, capsys
    ):
        from repro import cli

        def boom(*args, **kwargs):
            raise PipelineError("injected: first line\nsecond line")

        monkeypatch.setattr(cli, "compile_trace", boom)
        code = cli.main(["compile", "--kernel", "figure2"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "PipelineError" in err
        assert "injected: first line" in err
        assert "second line" not in err

    def test_json_diagnostic_parses(self, monkeypatch, capsys):
        from repro import cli
        from repro.core.allocator import AllocationError

        def boom(*args, **kwargs):
            raise AllocationError("too many live-outs")

        monkeypatch.setattr(cli, "compile_trace", boom)
        code = cli.main(["compile", "--kernel", "figure2", "--json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["error"]["type"] == "AllocationError"
        assert payload["error"]["command"] == "compile"
        assert payload["error"]["message"] == "too many live-outs"

    def test_resilient_flag_prints_report(self, capsys):
        from repro import cli

        code = cli.main(
            ["compile", "--kernel", "figure2", "--fus", "2", "--regs", "4",
             "--resilient"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degradation report" in out

    def test_deadline_flag_compiles(self, capsys):
        from repro import cli

        code = cli.main(
            ["compile", "--kernel", "figure2", "--fus", "2", "--regs", "4",
             "--deadline-ms", "10000", "--transactional"]
        )
        assert code == 0
        assert "verified=True" in capsys.readouterr().out
