"""Tests for the baseline register allocators (linear scan + coloring)."""

import pytest

from repro.analysis.liveness import linear_live_before
from repro.ir.interp import Interpreter, run_trace
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_trace
from repro.machine.model import MachineModel
from repro.scheduling.regalloc import (
    LinearScanAllocator,
    RegAllocError,
    color_registers,
)
from repro.workloads.random_dags import random_layered_trace


def check_binding_consistency(outcome, machine):
    """No two values bound to the same register may overlap in the
    allocated linear order (read-at-def sharing allowed)."""
    position_of_def = {}
    last_use = {}
    for position, inst in enumerate(outcome.instructions):
        if inst.dest is not None:
            position_of_def[inst.dest] = position
            last_use.setdefault(inst.dest, position)
        for name in inst.uses():
            last_use[name] = position
    for name in outcome.live_in_regs:
        position_of_def.setdefault(name, -1)
    for name in outcome.live_out_regs:
        last_use[name] = len(outcome.instructions)

    by_reg = {}
    for name, reg in outcome.binding.items():
        if name not in position_of_def:
            continue
        by_reg.setdefault(reg, []).append(
            (position_of_def[name], last_use.get(name, position_of_def[name]), name)
        )
    for reg, ranges in by_reg.items():
        ranges.sort()
        for (s1, e1, n1), (s2, e2, n2) in zip(ranges, ranges[1:]):
            assert s2 >= e1, (
                f"{n1} and {n2} overlap in {reg}: [{s1},{e1}] vs [{s2},{e2}]"
            )


def check_semantics(original, outcome, memory):
    expected = run_trace(original, memory)
    actual = run_trace(outcome.instructions, memory)
    expected_cells = {
        c: v for c, v in expected.memory.items() if not c[0].startswith("%")
    }
    actual_cells = {
        c: v for c, v in actual.memory.items() if not c[0].startswith("%")
    }
    assert actual_cells == expected_cells


class TestLinearScan:
    def test_no_spills_when_plenty(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 16)
        outcome = LinearScanAllocator(machine).run(fig2_trace)
        assert outcome.spill_ops == 0
        check_binding_consistency(outcome, machine)

    @pytest.mark.parametrize("n_regs", [2, 3, 4])
    def test_tight_register_files(self, fig2_trace, n_regs):
        machine = MachineModel.homogeneous(4, n_regs)
        outcome = LinearScanAllocator(machine).run(fig2_trace)
        check_binding_consistency(outcome, machine)
        check_semantics(fig2_trace, outcome, {("v", 0): 6})
        peak = max(ref.index for ref in outcome.binding.values()) + 1
        assert peak <= n_regs

    def test_live_ins_bound(self):
        trace = parse_trace("b = a + 1\nstore [z], b")
        machine = MachineModel.homogeneous(2, 4)
        outcome = LinearScanAllocator(machine).run(trace, live_ins=["a"])
        assert "a" in outcome.live_in_regs

    def test_live_outs_end_in_registers(self):
        trace = parse_trace("a = 1\nb = a + 1")
        machine = MachineModel.homogeneous(2, 2)
        outcome = LinearScanAllocator(machine).run(trace, live_outs=["b"])
        assert "b" in outcome.live_out_regs

    def test_use_before_def_rejected(self):
        trace = parse_trace("b = a + 1")
        machine = MachineModel.homogeneous(2, 4)
        with pytest.raises(RegAllocError):
            LinearScanAllocator(machine).run(trace)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_traces_stay_correct(self, seed):
        trace = random_layered_trace(n_ops=24, width=5, seed=seed)
        machine = MachineModel.homogeneous(4, 3)
        outcome = LinearScanAllocator(machine).run(trace)
        check_binding_consistency(outcome, machine)
        memory = {("in", i): 7 + i for i in range(8)}
        check_semantics(trace, outcome, memory)


class TestColoring:
    def test_colorable_without_spills(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 8)
        outcome = color_registers(fig2_trace, machine)
        assert outcome.spill_ops == 0
        check_binding_consistency(outcome, machine)

    def test_interference_respected(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 5)
        outcome = color_registers(fig2_trace, machine)
        check_binding_consistency(outcome, machine)

    @pytest.mark.parametrize("n_regs", [3, 4])
    def test_spill_everywhere_converges(self, fig2_trace, n_regs):
        machine = MachineModel.homogeneous(4, n_regs)
        outcome = color_registers(fig2_trace, machine)
        check_binding_consistency(outcome, machine)
        check_semantics(fig2_trace, outcome, {("v", 0): 6})

    def test_binding_within_register_file(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 4)
        outcome = color_registers(fig2_trace, machine)
        for reg in outcome.binding.values():
            assert 0 <= reg.index < 4

    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces_correct(self, seed):
        trace = random_layered_trace(n_ops=20, width=5, seed=seed)
        machine = MachineModel.homogeneous(4, 4)
        outcome = color_registers(trace, machine)
        check_binding_consistency(outcome, machine)
        memory = {("in", i): 3 + i for i in range(8)}
        check_semantics(trace, outcome, memory)

    def test_live_out_values_colored(self):
        trace = parse_trace("a = 1\nb = a + 1")
        machine = MachineModel.homogeneous(2, 2)
        outcome = color_registers(trace, machine, live_outs=["b"])
        assert "b" in outcome.live_out_regs
