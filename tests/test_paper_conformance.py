"""Paper-text conformance: every concrete claim the prose makes.

Each test quotes (in its docstring) the statement from the paper it
verifies, against this implementation, on the paper's own example.
"""

import pytest

from repro.core.kill import select_kill
from repro.core.measure import measure_fu, measure_registers
from repro.core.reuse import can_reuse_registers, collect_values
from repro.graph.dag import DependenceDAG
from repro.graph.dilworth import (
    closure_from_dag_pairs,
    maximum_antichain,
    minimum_chain_decomposition,
)
from repro.machine.model import MachineModel

FIG2_COVERS = [
    ("A", "B"), ("A", "C"), ("A", "D"), ("B", "E"), ("B", "F"),
    ("C", "E"), ("C", "F"), ("D", "G"), ("D", "H"), ("E", "I"),
    ("F", "I"), ("G", "J"), ("H", "J"), ("I", "K"), ("J", "K"),
]


@pytest.fixture
def fig2_order():
    return closure_from_dag_pairs("ABCDEFGHIJK", FIG2_COVERS)


class TestSection3Claims:
    def test_listed_chains_are_chains(self, fig2_order):
        """'In Figure 2(b), the sets of nodes {A, B, F, K}, {C, E, I},
        {D, G, J}, and {H} are all chains.'"""
        for members in (["A", "B", "F", "K"], ["C", "E", "I"],
                        ["D", "G", "J"], ["H"]):
            assert fig2_order.is_chain(members)

    def test_noncontiguous_chain_allowed(self, fig2_order):
        """'a chain is not necessarily a path since it may be
        noncontiguous' — {A, B, F, K} skips E/I."""
        assert fig2_order.is_chain(["A", "B", "F", "K"])
        # A -> B -> F is not a single DAG path through to K directly:
        # F's successors are I only, yet (F, K) holds transitively.
        assert fig2_order.less("F", "K")

    def test_minimal_decomposition_has_four_chains(self, fig2_order):
        """'The DAG in Figure 2(b) can be minimally decomposed into a
        set of four chains ... Thus, at most four nodes at a time can
        execute in parallel.'"""
        decomposition = minimum_chain_decomposition(fig2_order)
        assert decomposition.width == 4
        assert len(maximum_antichain(fig2_order)) == 4

    def test_paper_decomposition_is_minimal(self, fig2_order):
        """The specific decomposition the paper lists — {A,B,E,I,K},
        {C,F}, {D,G,J}, {H} — is a valid minimal decomposition."""
        chains = [["A", "B", "E", "I", "K"], ["C", "F"], ["D", "G", "J"], ["H"]]
        covered = sorted(e for chain in chains for e in chain)
        assert covered == sorted(fig2_order.elements)
        for chain in chains:
            assert fig2_order.is_chain(chain)
        assert len(chains) == minimum_chain_decomposition(fig2_order).width


class TestSection32Claims:
    def test_difficult_case_three_chains(self, fig2_dag, fig2_uid_of):
        """'Let the solution be F.  Then Kill(B) = Kill(C) = F, so
        (B,F) ∈ CanReuse_Reg, (C,F) ∈, (B,E) ∉, (C,E) ∉.  Thus, three
        allocation chains are required to decompose this sub-DAG.'"""
        values = collect_values(fig2_dag)
        kill = select_kill(fig2_dag, values)
        shared = kill["B"]
        assert shared == kill["C"]
        order = can_reuse_registers(fig2_dag, values, kill.kill)

        e_uid, f_uid = fig2_uid_of["E"], fig2_uid_of["F"]
        killer_name = "F" if shared == f_uid else "E"
        other_name = "E" if killer_name == "F" else "F"
        # The shared killer is reusable; the non-killer sibling is not.
        assert order.less("B", killer_name)
        assert order.less("C", killer_name)
        assert not order.less("B", other_name)
        assert not order.less("C", other_name)
        # Sub-DAG {B, C, E/F-sibling} stays mutually live: 3 registers.
        assert order.independent("B", "C")
        assert order.independent("B", other_name)
        assert order.independent("C", other_name)

    def test_five_values_simultaneously_live(self, fig2_dag):
        """'...requires five registers because the values from nodes B,
        C, E, G, and H can all be alive at the same time.'  (With the
        symmetric Kill choice E<->F, the witness set swaps E for F; the
        count is what the paper's claim pins down.)"""
        machine = MachineModel.homogeneous(8, 8)
        requirement = measure_registers(fig2_dag, machine)
        assert requirement.required == 5
        witness = maximum_antichain(requirement.order)
        assert len(witness) == 5
        assert {"B", "C", "G", "H"} <= witness
        assert witness - {"B", "C", "G", "H"} <= {"E", "F"}

    def test_fu_computation_polynomial_case(self, fig2_dag):
        """'CanReuse_FU is the partial order represented by the program
        dependence DAG, and the computation ... can be performed in
        polynomial time' — and equals 4 on the example."""
        machine = MachineModel.homogeneous(8, 8)
        assert measure_fu(fig2_dag, machine, "any").required == 4


class TestSection4Claims:
    def test_example_requires_five_regs_four_fus(self, fig2_dag):
        """'As an example, consider the DAG in Figure 2(b).  It requires
        five registers and four functional units to exploit all
        available parallelism.'"""
        machine = MachineModel.homogeneous(8, 8)
        assert measure_fu(fig2_dag, machine, "any").required == 4
        assert measure_registers(fig2_dag, machine).required == 5

    def test_g_to_h_reduces_fu_to_three(self, fig2_dag, fig2_uid_of):
        """'In Figure 3(a) an edge has been added from G to H, reducing
        the functional unit requirements to three.'"""
        fig2_dag.add_sequence_edge(fig2_uid_of["G"], fig2_uid_of["H"])
        machine = MachineModel.homogeneous(8, 8)
        assert measure_fu(fig2_dag, machine, "any").required == 3

    def test_delaying_g_h_reduces_registers_to_four(
        self, fig2_dag, fig2_uid_of
    ):
        """'If nodes G and H are delayed until after the execution of I
        ... the register requirements are reduced to four.'"""
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["G"])
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["H"])
        machine = MachineModel.homogeneous(8, 8)
        assert measure_registers(fig2_dag, machine).required == 4

    def test_sequencing_never_increases_either_resource(
        self, fig2_dag, fig2_uid_of
    ):
        """'Neither transformation can increase the requirements of
        either resource.'"""
        machine = MachineModel.homogeneous(8, 8)
        fu_before = measure_fu(fig2_dag, machine, "any").required
        reg_before = measure_registers(fig2_dag, machine).required
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["G"])
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["H"])
        assert measure_fu(fig2_dag, machine, "any").required <= fu_before
        assert measure_registers(fig2_dag, machine).required <= reg_before

    def test_register_sequencing_reduces_fu_requirements_too(
        self, fig2_dag, fig2_uid_of
    ):
        """'The application of register sequentialization is also likely
        to reduce functional unit requirements' — it does here (4 -> 3)."""
        machine = MachineModel.homogeneous(8, 8)
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["G"])
        fig2_dag.add_sequence_edge(fig2_uid_of["I"], fig2_uid_of["H"])
        assert measure_fu(fig2_dag, machine, "any").required < 4
