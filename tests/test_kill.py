"""Unit tests for Kill() selection (paper §3.2, Theorem 2)."""

import pytest

from repro.core.kill import (
    _exact_min_cover,
    _greedy_min_cover,
    candidate_killers,
    select_kill,
)
from repro.core.reuse import collect_values
from repro.graph.dag import DependenceDAG
from repro.ir.parser import parse_trace


class TestCandidateKillers:
    def test_single_use(self, fig2_dag, fig2_uid_of):
        values = {v.name: v for v in collect_values(fig2_dag)}
        assert candidate_killers(fig2_dag, values["E"]) == [fig2_uid_of["I"]]

    def test_independent_uses_all_candidates(self, fig2_dag, fig2_uid_of):
        values = {v.name: v for v in collect_values(fig2_dag)}
        assert set(candidate_killers(fig2_dag, values["A"])) == {
            fig2_uid_of["B"], fig2_uid_of["C"], fig2_uid_of["D"]
        }

    def test_ordered_uses_only_maximal(self):
        dag = DependenceDAG.from_trace(
            parse_trace("a = 1\nb = a + 1\nc = a + b\nstore [z], c")
        )
        values = {v.name: v for v in collect_values(dag)}
        # `a` is used by b's def and c's def, but b -> c, so only c's
        # definition can execute last.
        (candidate,) = candidate_killers(dag, values["a"])
        assert dag.instruction(candidate).dest == "c"


class TestSelectKill:
    def test_fig2_shared_killer(self, fig2_dag, fig2_uid_of):
        """The paper's difficult case: B and C must share one killer so
        that B, C and a third value can be simultaneously live."""
        values = collect_values(fig2_dag)
        kill = select_kill(fig2_dag, values)
        assert kill["B"] == kill["C"]
        assert kill["B"] in (fig2_uid_of["E"], fig2_uid_of["F"])

    def test_fig2_contested_values(self, fig2_dag):
        values = collect_values(fig2_dag)
        kill = select_kill(fig2_dag, values)
        assert kill.contested == frozenset("ABCD")
        assert kill.exact

    def test_forced_killers(self, fig2_dag, fig2_uid_of):
        values = collect_values(fig2_dag)
        kill = select_kill(fig2_dag, values)
        assert kill["E"] == fig2_uid_of["I"]
        assert kill["J"] == fig2_uid_of["K"]

    def test_dead_value_killed_by_own_def(self):
        dag = DependenceDAG.from_trace(parse_trace("a = 1\nb = 2\nstore [z], b"))
        values = collect_values(dag)
        kill = select_kill(dag, values)
        assert kill["a"] == dag.value_defs["a"]

    def test_live_out_killed_by_exit(self):
        dag = DependenceDAG.from_trace(parse_trace("a = 1"), live_out=["a"])
        values = collect_values(dag)
        kill = select_kill(dag, values)
        assert kill["a"] == dag.exit

    def test_greedy_fallback_on_large_instances(self, fig2_dag):
        values = collect_values(fig2_dag)
        kill = select_kill(fig2_dag, values, exact_limit=0)
        # Greedy still produces a complete assignment.
        assert set(kill.keys()) == {v.name for v in values}
        assert not kill.exact


class TestMinCover:
    def test_exact_beats_or_ties_greedy(self):
        universe = ["u1", "u2", "u3", "u4"]
        covers = {
            1: frozenset({"u1", "u2"}),
            2: frozenset({"u3", "u4"}),
            3: frozenset({"u1", "u3"}),
            4: frozenset({"u2"}),
            5: frozenset({"u4"}),
        }
        nodes = sorted(covers)
        exact = _exact_min_cover(universe, nodes, covers)
        greedy = _greedy_min_cover(universe, nodes, covers)
        assert len(exact) <= len(greedy)
        assert len(exact) == 2

    def test_exact_on_greedy_trap(self):
        # Classic instance where greedy picks the big set first and pays.
        universe = list("abcdef")
        covers = {
            0: frozenset("abcd"),
            1: frozenset("abe"),
            2: frozenset("cdf"),
        }
        exact = _exact_min_cover(universe, [0, 1, 2], covers)
        assert len(exact) == 2
        assert set(exact) == {1, 2}

    def test_single_set_cover(self):
        universe = ["x"]
        covers = {9: frozenset({"x"})}
        assert _exact_min_cover(universe, [9], covers) == [9]
