"""Tests for repro.pm: analysis caching, incremental trials, pass specs.

The load-bearing suites:

* a seeded fuzz comparing the incremental trial path against
  from-scratch ``measure_all`` on 50 random DAGs across every
  edges-only transform family;
* the lying-transform tripwire: a candidate that declares
  ``edges_only`` but inserts nodes is caught by the transaction's
  mutation guard, surfaced as :class:`VerifyError` under
  ``verify_each`` and scored honestly on the clone path otherwise;
* bit-identity of the incremental allocator against the legacy
  clone-and-remeasure path (same process, uid counter reset before
  each build, so tie-breaks see identical instruction identities).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

import repro.ir.instructions as instructions_mod
from repro.core.allocator import URSAAllocator
from repro.core.measure import (
    ResourceKind,
    ResourceRequirement,
    find_excessive_sets,
    measure_all,
)
from repro.core.transforms.base import (
    EDGES_ONLY,
    TransformCandidate,
    TransformError,
)
from repro.graph.dag import CycleError, DependenceDAG, TransactionError
from repro.machine.model import MachineModel
from repro.pm import AnalysisManager, IncrementalMeasurer, InvalidationError
from repro.resilience.checkpoint import DagCheckpoint
from repro.workloads.kernels import kernel
from repro.workloads.random_dags import (
    random_layered_trace,
    random_series_parallel,
    random_wide_trace,
)


def _reset_uids() -> None:
    instructions_mod._UID_COUNTER[0] = 0


def _excesses(
    requirements: List[ResourceRequirement],
) -> Dict[Tuple[ResourceKind, str], int]:
    return {(r.kind, r.cls): max(0, r.required - r.available) for r in requirements}


# ======================================================================
# AnalysisManager.
# ======================================================================
class TestAnalysisManager:
    def test_hit_on_same_version(self, fig2_dag):
        manager = AnalysisManager()
        first = manager.asap(fig2_dag)
        second = manager.asap(fig2_dag)
        assert first is second
        assert manager.hits == 1 and manager.misses == 1

    def test_version_bump_invalidates(self, fig2_dag):
        manager = AnalysisManager()
        manager.asap(fig2_dag)
        order = fig2_dag.topological_order()
        fig2_dag.add_sequence_edge(order[0], order[-1], reason="test")
        manager.asap(fig2_dag)
        assert manager.misses == 2
        assert manager.invalidations == 1

    def test_rollback_revalidates_cached_entries(self, fig2_dag):
        manager = AnalysisManager()
        before = manager.asap(fig2_dag)
        txn = fig2_dag.begin_transaction()
        order = fig2_dag.topological_order()
        fig2_dag.add_sequence_edge(order[0], order[-1], reason="test")
        manager.asap(fig2_dag)  # miss at the new version
        txn.rollback()
        after = manager.asap(fig2_dag)
        assert after is before  # old-version entry servable again
        assert manager.hits == 1 and manager.misses == 2

    def test_shared_across_dags(self, fig2_trace):
        manager = AnalysisManager()
        a = DependenceDAG.from_trace(fig2_trace)
        b = DependenceDAG.from_trace(fig2_trace)
        assert a.version != b.version
        assert manager.asap(a) is not manager.asap(b)
        assert manager.misses == 2 and manager.hits == 0

    def test_stats_shape(self, fig2_dag):
        manager = AnalysisManager()
        manager.asap(fig2_dag)
        stats = manager.stats()
        assert set(stats) == {
            "hits", "misses", "invalidations", "evictions", "hit_rate",
            "entries",
        }


# ======================================================================
# DagCheckpoint over an open transaction.
# ======================================================================
class TestTransactionalCheckpoint:
    def test_restore_rolls_back_txn_and_version(self, fig2_dag):
        manager = AnalysisManager()
        cached = manager.asap(fig2_dag)
        version = fig2_dag.version
        edges_before = set(fig2_dag.graph.edges)

        txn = fig2_dag.begin_transaction()
        checkpoint = DagCheckpoint.capture(fig2_dag, [], label="t", txn=txn)
        order = fig2_dag.topological_order()
        fig2_dag.add_sequence_edge(order[0], order[-1], reason="test")
        assert fig2_dag.version != version

        restored, _ = checkpoint.restore()
        assert restored is fig2_dag
        assert fig2_dag.version == version
        assert set(fig2_dag.graph.edges) == edges_before
        assert not txn.active
        # The rollback restored the cache generation: the pre-capture
        # analysis is served without recomputation.
        assert manager.asap(fig2_dag) is cached

    def test_restore_without_txn_is_identity(self, fig2_dag):
        checkpoint = DagCheckpoint.capture(fig2_dag, [], label="t")
        restored, _ = checkpoint.restore()
        assert restored is fig2_dag


# ======================================================================
# Fuzz: incremental trials == from-scratch measure_all.
# ======================================================================
def _edges_only_candidates(
    alloc: URSAAllocator,
    dag: DependenceDAG,
    requirements: List[ResourceRequirement],
) -> List[TransformCandidate]:
    out: List[TransformCandidate] = []
    for req in requirements:
        if not req.is_excessive:
            continue
        for ecs in find_excessive_sets(dag, req):
            out.extend(alloc._proposals(dag, ecs))
        out.extend(alloc._schedule_guided_fu_candidates(dag, req))
        out.extend(alloc._global_merge_candidates(dag, req))
        out.extend(alloc._fallback_candidates(dag, req))
    return [
        c for c in out
        if c.invalidation.edges_only and not c.invalidation.invalidates_all
    ]


def _fuzz_traces():
    for seed in range(20):
        yield random_layered_trace(n_ops=14, width=4, seed=seed)
    for seed in range(15):
        yield random_series_parallel(
            n_blocks=3, block_width=3, block_depth=2, seed=seed
        )
    for seed in range(15):
        yield random_wide_trace(n_chains=5, chain_length=3, seed=seed)


class TestIncrementalTrialFuzz:
    def test_trials_match_from_scratch_measurement(self):
        machines = [
            MachineModel.homogeneous(2, 3),
            MachineModel.homogeneous(3, 4),
        ]
        kinds_seen = set()
        compared = 0
        for index, trace in enumerate(_fuzz_traces()):
            machine = machines[index % len(machines)]
            dag = DependenceDAG.from_trace(trace)
            requirements = measure_all(dag, machine)
            base_excess = sum(_excesses(requirements).values())
            if base_excess == 0:
                continue
            alloc = URSAAllocator(machine)
            candidates = _edges_only_candidates(alloc, dag, requirements)[:10]

            measurer = IncrementalMeasurer(machine)
            measurer.rebase(dag, requirements)
            version = dag.version
            edge_count = len(dag.graph.edges)
            for candidate in candidates:
                kinds_seen.add(candidate.kind)
                clone = dag.copy()
                try:
                    candidate.edits(clone)
                except CycleError:
                    with pytest.raises(TransformError):
                        measurer.trial(candidate)
                    continue
                scratch = _excesses(measure_all(clone, machine))
                outcome = measurer.trial(candidate)
                compared += 1
                if outcome is None:
                    # Progress filter: the candidate must really not
                    # have improved the weighted excess.
                    assert sum(scratch.values()) >= base_excess
                else:
                    trial = {
                        (b.req.kind, b.req.cls): max(0, w - b.available)
                        for b, w in zip(measurer._bases, outcome.widths)
                    }
                    assert trial == scratch, (
                        f"dag {index} [{candidate.kind}] "
                        f"{candidate.description}: {trial} != {scratch}"
                    )
                # Trials never leak state into the base DAG.
                assert dag.version == version
                assert len(dag.graph.edges) == edge_count
        assert compared >= 50, f"only {compared} comparisons ran"
        assert any(k.startswith("fu-") for k in kinds_seen)
        assert any(k.startswith("reg-") for k in kinds_seen)
        assert len(kinds_seen) >= 4, kinds_seen


# ======================================================================
# The lying transform.
# ======================================================================
def _lying_spill_candidate(dag, machine) -> TransformCandidate:
    """A real spill candidate relabelled as edges-only (a lie)."""
    from repro.core.transforms.spill import propose_spills

    for req in measure_all(dag, machine):
        if req.kind is not ResourceKind.REGISTER or not req.is_excessive:
            continue
        for ecs in find_excessive_sets(dag, req):
            for candidate in propose_spills(dag, ecs):
                candidate.invalidation = EDGES_ONLY
                return candidate
    raise AssertionError("workload proposed no spill candidate")


class TestLyingTransform:
    MACHINE = MachineModel.homogeneous(2, 3)

    def test_trial_raises_invalidation_error(self):
        dag = DependenceDAG.from_trace(kernel("figure2"))
        requirements = measure_all(dag, self.MACHINE)
        liar = _lying_spill_candidate(dag, self.MACHINE)

        measurer = IncrementalMeasurer(self.MACHINE)
        measurer.rebase(dag, requirements)
        version = dag.version
        node_count = len(dag)
        with pytest.raises(InvalidationError):
            measurer.trial(liar)
        # The guard fired before any mutation; rollback left no trace.
        assert dag.version == version
        assert len(dag) == node_count

    def _lying_allocator(self, monkeypatch, **kwargs) -> URSAAllocator:
        original = URSAAllocator._proposals

        def lying(self, dag, ecs):
            candidates = original(self, dag, ecs)
            for candidate in candidates:
                if candidate.kind == "spill":
                    candidate.invalidation = EDGES_ONLY
            return candidates

        monkeypatch.setattr(URSAAllocator, "_proposals", lying)
        return URSAAllocator(self.MACHINE, **kwargs)

    def test_verify_each_surfaces_the_lie(self, monkeypatch):
        from repro.verify import VerifyError

        alloc = self._lying_allocator(
            monkeypatch, verify_each=True, incremental=True
        )
        with pytest.raises(VerifyError, match="invalidation contract"):
            alloc.run(DependenceDAG.from_trace(kernel("figure2")))

    def test_without_verify_each_falls_back_to_clone_path(self, monkeypatch):
        _reset_uids()
        honest = URSAAllocator(self.MACHINE).run(
            DependenceDAG.from_trace(kernel("figure2"))
        )
        _reset_uids()
        alloc = self._lying_allocator(monkeypatch, incremental=True)
        lied = alloc.run(DependenceDAG.from_trace(kernel("figure2")))
        assert lied.converged == honest.converged
        assert [
            (r.kind, r.description) for r in lied.records
        ] == [(r.kind, r.description) for r in honest.records]


# ======================================================================
# Bit-identity: incremental == legacy clone-and-remeasure.
# ======================================================================
def _assert_bit_identical(source, machine) -> None:
    """Legacy and incremental paths must agree bit for bit — including
    on workloads this machine cannot schedule at all, where both must
    fail with the same diagnostic."""
    from repro.pipeline import compile_trace

    results = {}
    for incremental in (False, True):
        _reset_uids()
        try:
            result = compile_trace(
                source, machine, method="ursa", verify=False,
                incremental=incremental,
            )
        except Exception as exc:
            results[incremental] = ("error", type(exc).__name__, str(exc))
            continue
        records = tuple(
            (r.kind, r.description) for r in result.allocation.records
        )
        results[incremental] = (
            str(result.program), result.stats.cycles, records
        )
    assert results[False] == results[True]


class TestBitIdentity:
    @pytest.mark.parametrize("name", ["figure2", "saxpy", "fft-butterfly"])
    @pytest.mark.parametrize("fus,regs", [(2, 3), (4, 6)])
    def test_same_programs_and_records(self, name, fus, regs):
        _assert_bit_identical(kernel(name), MachineModel.homogeneous(fus, regs))

    EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "traces"

    @pytest.mark.parametrize(
        "example", sorted(p.name for p in EXAMPLES.glob("*.ursa"))
    )
    def test_example_traces(self, example):
        from repro.ir.parser import parse_trace

        trace = parse_trace((self.EXAMPLES / example).read_text())
        _assert_bit_identical(trace, MachineModel.homogeneous(2, 4))


# ======================================================================
# Pass registry and the `repro passes` CLI.
# ======================================================================
class TestPassRegistry:
    def test_pipeline_registers_core_passes(self):
        import repro.pipeline  # noqa: F401 — registration side effect
        from repro.pm import PASS_REGISTRY

        names = [spec.name for spec in PASS_REGISTRY]
        for expected in (
            "build_dag", "allocate", "assign", "schedule",
            "static_checks", "codegen", "verify",
        ):
            assert expected in names

    def test_build_pipeline_orders(self):
        from repro.pipeline import build_pipeline

        ursa = [p.spec.name for p in build_pipeline("ursa").passes]
        assert ursa[:3] == ["build_dag", "allocate", "assign"]
        baseline = [p.spec.name for p in build_pipeline("prepass").passes]
        assert "schedule" in baseline and "allocate" not in baseline


class TestPassesCLI:
    def test_text_listing(self, capsys):
        from repro.cli import main

        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        assert "build_dag" in out
        assert "reachability" in out
        assert "fu-seq" in out
        assert "invalidates-all" in out

    def test_json_listing_with_cache_stats(self, capsys):
        from repro.cli import main

        assert main([
            "passes", "--json", "--kernel", "figure2",
            "--fus", "2", "--regs", "3",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {"passes", "analyses", "invalidation_contracts", "cache"} <= (
            set(payload)
        )
        assert payload["cache"]["hits"] > 0
        kinds = payload["invalidation_contracts"]
        assert kinds["spill"]["invalidates_all"] is True
        assert kinds["fu-seq"]["edges_only"] is True


# ======================================================================
# Counters.
# ======================================================================
class TestCounters:
    def test_trial_counters_emitted(self):
        from repro import obs
        from repro.pipeline import compile_trace

        with obs.capture() as observer:
            compile_trace(
                kernel("figure2"), MachineModel.homogeneous(2, 3),
                method="ursa", verify=False,
            )
        counters = observer.counters
        assert counters.get("pm.trial.incremental", 0) > 0
        assert counters.get("pm.cache_hit", 0) + counters.get(
            "pm.cache_miss", 0
        ) > 0
        recomputed = counters.get("pm.trial.recomputed", 0)
        assert recomputed == counters.get("pm.trial.warm", 0) + counters.get(
            "pm.trial.cold", 0
        )
