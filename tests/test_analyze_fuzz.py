"""Soundness sweep for the static lower bounds (``repro.analyze``).

Every bound the analyzer emits must hold against ground truth:

* register / FU lower bounds and the pressure floor never exceed the
  *measured* requirement (``measure_all`` — the paper's width of the
  reuse order under the actual ``Kill()`` choice);
* the length lower bound never exceeds any achieved schedule length.

Checked across 50 random layered DAGs, random structured programs,
and every ``examples/traces/*.ursa``, on homogeneous and classed
machines. A single violation here means a "lower bound" silently
became a heuristic — the one thing ``docs/analysis.md`` promises it
is not.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.liveness import block_live_sets
from repro.analyze import analyze_program, feasibility_report
from repro.core.measure import ResourceKind, measure_all
from repro.graph.dag import DependenceDAG
from repro.ir.parser import parse_program
from repro.machine.model import MachineModel
from repro.pipeline import build_dag, compile_trace
from repro.workloads.random_dags import random_layered_trace
from repro.workloads.random_programs import random_structured_program

REPO = Path(__file__).resolve().parent.parent
EXAMPLE_TRACES = sorted((REPO / "examples" / "traces").glob("*.ursa"))

MACHINES = [
    MachineModel.homogeneous(2, 4),
    MachineModel.homogeneous(4, 8),
    MachineModel.classed(alu=2, mul=1, mem=2, branch=1, alu_regs=8),
]

SWEEP_SEEDS = range(50)
COMPILE_SEEDS = range(12)


def measured_requirements(dag, machine):
    return {
        (r.kind, r.cls): r.required for r in measure_all(dag, machine)
    }


def assert_bounds_sound(dag, machine, context=""):
    measured = measured_requirements(dag, machine)
    report = feasibility_report(dag, machine)
    for cls, bound in report.registers.items():
        req = measured[(ResourceKind.REGISTER, cls)]
        assert bound.lower_bound <= req, (
            f"{context}: reg {cls} bound {bound.lower_bound} > "
            f"measured {req}"
        )
        assert bound.pressure_floor <= req, (
            f"{context}: reg {cls} floor {bound.pressure_floor} > "
            f"measured {req}"
        )
    for cls, bound in report.fus.items():
        req = measured[(ResourceKind.FUNCTIONAL_UNIT, cls)]
        assert bound.lower_bound <= req, (
            f"{context}: fu {cls} bound {bound.lower_bound} > "
            f"measured {req}"
        )
    return report


@pytest.mark.parametrize("seed", SWEEP_SEEDS)
def test_random_dag_bounds_sound(seed):
    trace = random_layered_trace(n_ops=24, width=5, seed=seed)
    dag = build_dag(trace)
    for machine in MACHINES:
        assert_bounds_sound(dag, machine, f"seed {seed} on {machine.name}")


@pytest.mark.parametrize("seed", COMPILE_SEEDS)
def test_length_bound_sound_vs_achieved(seed):
    """The length bound must hold for *every* method's real schedule."""
    trace = random_layered_trace(n_ops=16, width=4, seed=seed)
    dag = build_dag(trace)
    for machine in (MACHINES[0], MACHINES[1]):
        report = feasibility_report(dag, machine)
        for method in ("ursa", "prepass", "postpass"):
            result = compile_trace(dag, machine, method=method)
            assert report.length.lower_bound <= result.cycles, (
                f"seed {seed}, {method} on {machine.name}: length bound "
                f"{report.length.lower_bound} > achieved {result.cycles}"
            )


@pytest.mark.parametrize("seed", range(15))
def test_random_program_bounds_sound(seed):
    program = random_structured_program(seed=seed, max_depth=2, body_size=5)
    machine = MACHINES[0]
    report = analyze_program(program, machine=machine)
    if not report.ok:
        pytest.fail(
            f"seed {seed}: generator produced an ill-formed program:\n"
            + report.render()
        )
    _, live_out = block_live_sets(program)
    for block in program:
        dag = DependenceDAG.from_trace(
            block.instructions, live_out=live_out[block.label]
        )
        assert_bounds_sound(dag, machine, f"seed {seed} block {block.label}")
        assert block.label in report.feasibility


@pytest.mark.parametrize(
    "path", EXAMPLE_TRACES, ids=lambda p: p.stem
)
def test_example_traces_bounds_sound(path):
    source = path.read_text()
    program = parse_program(source)
    assert len(program.blocks) == 1
    dag = DependenceDAG.from_trace(program.blocks[0].instructions)
    for machine in MACHINES:
        report = assert_bounds_sound(dag, machine, path.name)
        result = compile_trace(dag, machine, method="ursa")
        assert report.length.lower_bound <= result.cycles


def test_figure2_bound_vs_paper_measurement():
    """The paper's block measures FU 4 / reg 5 on the base machine; the
    static bounds must sit at or below those exact published numbers."""
    source = (REPO / "examples" / "traces" / "figure2.ursa").read_text()
    dag = build_dag(source)
    machine = MachineModel.homogeneous(3, 4)
    measured = measured_requirements(dag, machine)
    assert measured[(ResourceKind.FUNCTIONAL_UNIT, "any")] == 4
    assert measured[(ResourceKind.REGISTER, "gpr")] == 5
    report = feasibility_report(dag, machine)
    assert report.fus["any"].lower_bound <= 4
    assert report.registers["gpr"].lower_bound <= 5
