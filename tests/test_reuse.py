"""Unit and property tests for the CanReuse relations (paper §3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kill import select_kill
from repro.core.reuse import (
    can_reuse_fu,
    can_reuse_registers,
    collect_values,
    fu_elements,
)
from repro.graph.dag import DependenceDAG
from repro.machine.model import MachineModel
from repro.workloads.random_dags import random_layered_trace


class TestCollectValues:
    def test_fig2_values(self, fig2_dag):
        values = collect_values(fig2_dag)
        names = {v.name for v in values}
        assert names == set("ABCDEFGHIJK")

    def test_uses_recorded(self, fig2_dag, fig2_uid_of):
        values = {v.name: v for v in collect_values(fig2_dag)}
        assert set(values["A"].use_uids) == {
            fig2_uid_of["B"], fig2_uid_of["C"], fig2_uid_of["D"]
        }

    def test_live_in_value_defined_by_entry(self):
        from repro.ir.parser import parse_trace

        dag = DependenceDAG.from_trace(parse_trace("b = a + 1\nstore [z], b"))
        values = {v.name: v for v in collect_values(dag)}
        assert values["a"].def_uid == dag.entry

    def test_register_classes(self):
        from repro.ir.parser import parse_trace

        machine = MachineModel.dual_regclass()
        dag = DependenceDAG.from_trace(
            parse_trace("i0 = load [a]\nf0 = load [b]\nstore [z], i0\nstore [w], f0")
        )
        values = {v.name: v for v in collect_values(dag, machine)}
        assert values["i0"].reg_class == "int"
        assert values["f0"].reg_class == "flt"


class TestCanReuseFU:
    def test_is_dag_reachability(self, fig2_dag, fig2_uid_of, machine44):
        elements = fu_elements(fig2_dag, machine44, "any")
        order = can_reuse_fu(fig2_dag, elements)
        assert order.less(fig2_uid_of["A"], fig2_uid_of["K"])
        assert order.independent(fig2_uid_of["E"], fig2_uid_of["G"])

    def test_valid_partial_order(self, fig2_dag, machine44):
        elements = fu_elements(fig2_dag, machine44, "any")
        can_reuse_fu(fig2_dag, elements).validate()

    def test_classed_elements_partition(self, fig2_dag):
        machine = MachineModel.classed(alu=2, mul=1, mem=1, branch=1)
        all_elements = set()
        for fu in machine.fu_classes:
            elements = fu_elements(fig2_dag, machine, fu.name)
            assert not (all_elements & set(elements))
            all_elements |= set(elements)
        assert all_elements == set(fig2_dag.op_nodes())

    def test_reuse_through_other_class(self, fig2_dag):
        """A mul can reuse a unit freed via a path through ALU ops."""
        machine = MachineModel.classed(alu=2, mul=1, mem=1, branch=1)
        elements = fu_elements(fig2_dag, machine, "mul")
        order = can_reuse_fu(fig2_dag, elements)
        order.validate()
        assert len(order.elements) > 0


class TestCanReuseRegisters:
    def test_valid_partial_order(self, fig2_dag, machine44):
        values = collect_values(fig2_dag, machine44)
        kill = select_kill(fig2_dag, values)
        can_reuse_registers(fig2_dag, values, kill.kill).validate()

    def test_dead_value_relation(self):
        from repro.ir.parser import parse_trace

        dag = DependenceDAG.from_trace(
            parse_trace("a = 1\nb = 2\nc = b + 1\nstore [z], c")
        )
        values = collect_values(dag)
        kill = select_kill(dag, values)
        order = can_reuse_registers(dag, values, kill.kill)
        order.validate()
        # Dead `a` frees its register immediately; nothing is downstream
        # of its definition, so no reuse pairs originate at `a`.
        assert not order.above["a"]

    def test_live_out_never_reusable(self):
        from repro.ir.parser import parse_trace

        dag = DependenceDAG.from_trace(
            parse_trace("a = 1\nb = 2\nc = a + b"), live_out=["c"]
        )
        values = collect_values(dag)
        kill = select_kill(dag, values)
        order = can_reuse_registers(dag, values, kill.kill)
        assert not order.above["c"]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**30), st.integers(4, 24))
def test_property_register_relation_is_strict_partial_order(seed, n_ops):
    """CanReuse_Reg is always a valid strict partial order."""
    trace = random_layered_trace(n_ops=n_ops, width=4, seed=seed)
    dag = DependenceDAG.from_trace(trace)
    values = collect_values(dag)
    kill = select_kill(dag, values)
    order = can_reuse_registers(dag, values, kill.kill)
    order.validate()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**30), st.integers(4, 24))
def test_property_fu_relation_is_strict_partial_order(seed, n_ops):
    trace = random_layered_trace(n_ops=n_ops, width=4, seed=seed)
    dag = DependenceDAG.from_trace(trace)
    machine = MachineModel.homogeneous(4, 8)
    order = can_reuse_fu(dag, fu_elements(dag, machine, "any"))
    order.validate()
