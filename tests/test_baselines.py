"""Tests for the prepass / postpass / Goodman-Hsu baseline compilers."""

import pytest

from repro.core.codegen import lower_schedule
from repro.graph.dag import DependenceDAG, EdgeKind
from repro.ir.interp import run_trace
from repro.machine.model import MachineModel
from repro.machine.simulator import VLIWSimulator
from repro.machine.vliw import RegRef
from repro.pipeline import synthesize_memory
from repro.scheduling.goodman_hsu import compile_goodman_hsu
from repro.scheduling.packer import pack_in_order
from repro.scheduling.postpass import add_register_reuse_edges, compile_postpass
from repro.scheduling.prepass import compile_prepass
from repro.scheduling.regalloc import LinearScanAllocator
from repro.workloads.kernels import kernel
from repro.workloads.random_dags import random_layered_trace


def verify(trace, machine, compiler, seed=0):
    dag = DependenceDAG.from_trace(trace)
    schedule = compiler(dag, machine)
    program = lower_schedule(schedule)
    memory = synthesize_memory(dag, seed)
    expected = run_trace(dag.linearize(), memory)
    actual = VLIWSimulator(machine, memory).run(program)
    expected_cells = {
        c: v for c, v in expected.memory.items() if not c[0].startswith("%")
    }
    actual_cells = {
        c: v for c, v in actual.memory.items() if not c[0].startswith("%")
    }
    assert actual_cells == expected_cells
    return schedule, program


MACHINES = [
    MachineModel.homogeneous(2, 4),
    MachineModel.homogeneous(4, 6),
    MachineModel.homogeneous(8, 16),
]


class TestPrepass:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_correct_on_fig2(self, fig2_trace, machine):
        verify(fig2_trace, machine, compile_prepass)

    @pytest.mark.parametrize("name", ["dot-product", "fft-butterfly", "matmul"])
    def test_correct_on_kernels(self, name):
        machine = MachineModel.homogeneous(4, 6)
        verify(kernel(name), machine, compile_prepass)

    def test_spills_appear_under_pressure(self):
        machine = MachineModel.homogeneous(8, 4)
        dag = DependenceDAG.from_trace(kernel("fft-butterfly"))
        schedule = compile_prepass(dag, machine)
        assert schedule.spill_count > 0

    def test_registers_within_bounds(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 4)
        schedule, program = verify(fig2_trace, machine, compile_prepass)
        assert program.max_registers_used()["gpr"] <= 4


class TestPostpass:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_correct_on_fig2(self, fig2_trace, machine):
        verify(fig2_trace, machine, compile_postpass)

    @pytest.mark.parametrize("name", ["dot-product", "stencil5", "hydro"])
    def test_correct_on_kernels(self, name):
        machine = MachineModel.homogeneous(4, 6)
        verify(kernel(name), machine, compile_postpass)

    def test_reuse_edges_serialize(self, fig2_trace):
        """The phase-ordering cost: with few registers, postpass code
        runs longer than with many registers."""
        dag_few = DependenceDAG.from_trace(fig2_trace)
        few = compile_postpass(dag_few, MachineModel.homogeneous(4, 4))
        dag_many = DependenceDAG.from_trace(fig2_trace)
        many = compile_postpass(dag_many, MachineModel.homogeneous(4, 16))
        assert few.length >= many.length

    def test_add_register_reuse_edges(self, fig2_trace):
        from repro.scheduling.regalloc import color_registers

        machine = MachineModel.homogeneous(4, 5)
        outcome = color_registers(fig2_trace, machine)
        dag = DependenceDAG.from_trace(outcome.instructions, rename=False)
        added = add_register_reuse_edges(
            dag, outcome.instructions, outcome.binding
        )
        assert added > 0
        dag.topological_order()  # still acyclic
        reuse_edges = [
            (u, v)
            for u, v, d in dag.graph.edges(data=True)
            if d.get("reason") == "reg-reuse"
        ]
        assert len(reuse_edges) == added


class TestGoodmanHsu:
    @pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
    def test_correct_on_fig2(self, fig2_trace, machine):
        verify(fig2_trace, machine, compile_goodman_hsu)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_traces(self, seed):
        trace = random_layered_trace(n_ops=26, width=5, seed=seed)
        machine = MachineModel.homogeneous(4, 5)
        verify(trace, machine, compile_goodman_hsu, seed=seed)

    def test_threshold_parameter(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 4)
        dag = DependenceDAG.from_trace(fig2_trace)
        schedule = compile_goodman_hsu(dag, machine, threshold=3)
        assert schedule.length > 0


class TestPacker:
    def test_in_order_packing_respects_order(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 8)
        allocation = LinearScanAllocator(machine).run(fig2_trace)
        schedule = pack_in_order(allocation.instructions, machine, allocation)
        cycles = [op.cycle for op in schedule.ops]
        assert cycles == sorted(cycles)

    def test_packing_is_correct(self, fig2_trace):
        machine = MachineModel.homogeneous(3, 8)
        allocation = LinearScanAllocator(machine).run(fig2_trace)
        schedule = pack_in_order(allocation.instructions, machine, allocation)
        program = lower_schedule(schedule)
        result = VLIWSimulator(machine, {("v", 0): 6}).run(program)
        assert result.stores_to("z") == {0: 25}

    def test_memory_conflicts_separated(self):
        from repro.ir.parser import parse_trace

        trace = parse_trace("a = 5\nstore [m], a\nv = load [m]\nstore [z], v")
        machine = MachineModel.homogeneous(4, 4)
        allocation = LinearScanAllocator(machine).run(trace)
        schedule = pack_in_order(allocation.instructions, machine, allocation)
        mem_ops = [
            op for op in schedule.ops if op.inst.is_memory and op.inst.addr.base == "m"
        ]
        assert mem_ops[0].cycle < mem_ops[1].cycle
