"""Unit tests for hammock (SESE) analysis."""

import pytest

from repro.graph.dag import DependenceDAG
from repro.graph.hammock import HammockAnalysis
from repro.ir.parser import parse_trace


@pytest.fixture
def analysis(fig2_dag):
    return HammockAnalysis(fig2_dag)


class TestDominators:
    def test_entry_dominates_everything(self, fig2_dag, analysis):
        for uid in fig2_dag.nodes():
            assert analysis.dominates(fig2_dag.entry, uid)

    def test_exit_postdominates_everything(self, fig2_dag, analysis):
        for uid in fig2_dag.nodes():
            assert analysis.postdominates(fig2_dag.exit, uid)

    def test_a_dominates_all_ops(self, fig2_dag, analysis, fig2_uid_of):
        # Every value flows from A's load.
        for name in "BCDEFGHIJK":
            assert analysis.dominates(fig2_uid_of["A"], fig2_uid_of[name])

    def test_d_dominates_its_diamond(self, analysis, fig2_uid_of):
        assert analysis.dominates(fig2_uid_of["D"], fig2_uid_of["G"])
        assert analysis.dominates(fig2_uid_of["D"], fig2_uid_of["J"])
        assert not analysis.dominates(fig2_uid_of["D"], fig2_uid_of["E"])

    def test_j_postdominates_d(self, analysis, fig2_uid_of):
        assert analysis.postdominates(fig2_uid_of["J"], fig2_uid_of["D"])

    def test_dominance_is_reflexive(self, fig2_dag, analysis):
        for uid in fig2_dag.nodes():
            assert analysis.dominates(uid, uid)


class TestHammocks:
    def test_whole_dag_is_a_hammock(self, fig2_dag, analysis):
        hammocks = analysis.hammocks()
        whole = hammocks[0]  # sorted largest first
        assert whole.entry == fig2_dag.entry
        assert whole.exit == fig2_dag.exit
        assert len(whole.nodes) == len(fig2_dag)

    def test_d_to_j_hammock_exists(self, analysis, fig2_uid_of):
        d, j = fig2_uid_of["D"], fig2_uid_of["J"]
        matches = [
            h for h in analysis.hammocks() if h.entry == d and h.exit == j
        ]
        assert len(matches) == 1
        names_inside = matches[0].nodes
        assert fig2_uid_of["G"] in names_inside
        assert fig2_uid_of["H"] in names_inside
        assert fig2_uid_of["E"] not in names_inside

    def test_nesting_levels_deeper_inside(self, analysis, fig2_uid_of):
        levels = analysis.nesting_levels()
        # G sits inside the D..J hammock, so it is at least as deep as A.
        assert levels[fig2_uid_of["G"]] >= levels[fig2_uid_of["A"]]

    def test_edge_priority_zero_within_level(self, analysis, fig2_uid_of):
        levels = analysis.nesting_levels()
        g, h = fig2_uid_of["G"], fig2_uid_of["H"]
        assert levels[g] == levels[h]
        assert analysis.edge_priority(g, h) == 0

    def test_innermost_hammock_containing(self, analysis, fig2_uid_of):
        hammock = analysis.innermost_hammock_containing(
            [fig2_uid_of["G"], fig2_uid_of["H"]]
        )
        assert fig2_uid_of["E"] not in hammock.nodes

    def test_innermost_containing_unknown_raises(self, analysis):
        with pytest.raises(ValueError):
            analysis.innermost_hammock_containing([999999999])

    def test_hammock_interior(self, analysis, fig2_uid_of):
        d, j = fig2_uid_of["D"], fig2_uid_of["J"]
        (hammock,) = [
            h for h in analysis.hammocks() if h.entry == d and h.exit == j
        ]
        assert d not in hammock.interior()
        assert fig2_uid_of["G"] in hammock.interior()


class TestChainStructure:
    def test_two_parallel_diamonds(self):
        insts = parse_trace(
            """
            a = load [p]
            b = a + 1
            c = a + 2
            d = b + c
            e = load [q]
            f = e + 1
            g = e + 2
            h = f + g
            r = d + h
            store [z], r
            """
        )
        dag = DependenceDAG.from_trace(insts)
        analysis = HammockAnalysis(dag)
        entries = {(h.entry, h.exit) for h in analysis.hammocks()}
        ops = {str(dag.instruction(u)).split(" ")[0]: u for u in dag.op_nodes()}
        assert (ops["a"], ops["d"]) in entries
        assert (ops["e"], ops["h"]) in entries
