"""Unit tests for single-assignment renaming."""

from repro.ir.parser import parse_trace
from repro.ir.rename import is_single_assignment, rename_trace


class TestRenameTrace:
    def test_already_single_assignment_unchanged(self):
        insts = parse_trace("v = load [a]\nw = v * 2\nstore [z], w")
        result = rename_trace(insts)
        assert [str(i) for i in result.instructions] == [str(i) for i in insts]

    def test_redefinitions_get_versions(self):
        insts = parse_trace("x = 1\nx = x + 1\nx = x + 1\nstore [z], x")
        result = rename_trace(insts)
        texts = [str(i) for i in result.instructions]
        assert texts == [
            "x = 1",
            "x.1 = x + 1",
            "x.2 = x.1 + 1",
            "store [z], x.2",
        ]

    def test_result_is_single_assignment(self):
        insts = parse_trace("x = 1\nx = x + 1\ny = x\ny = y * y\nstore [z], y")
        result = rename_trace(insts)
        assert is_single_assignment(result.instructions)

    def test_live_ins_detected(self):
        insts = parse_trace("w = v * 2\nstore [z], w")
        result = rename_trace(insts)
        assert result.live_ins == {"v"}

    def test_live_in_then_redefined(self):
        # `x` is read before being written: the incoming value and the
        # new definition must stay distinct.
        insts = parse_trace("y = x + 1\nx = 5\nstore [z], x\nstore [w], y")
        result = rename_trace(insts)
        assert result.live_ins == {"x"}
        texts = [str(i) for i in result.instructions]
        assert texts[1] == "x.1 = 5"
        assert texts[2] == "store [z], x.1"

    def test_final_names_map(self):
        insts = parse_trace("x = 1\nx = x + 1")
        result = rename_trace(insts)
        assert result.final_names["x"] == "x.1"

    def test_uids_preserved(self):
        insts = parse_trace("x = 1\nx = x + 1")
        result = rename_trace(insts)
        assert [i.uid for i in result.instructions] == [i.uid for i in insts]


class TestIsSingleAssignment:
    def test_true_case(self):
        insts = parse_trace("a = 1\nb = 2\nc = a + b")
        assert is_single_assignment(insts)

    def test_false_case(self):
        insts = parse_trace("a = 1\na = 2")
        assert not is_single_assignment(insts)
