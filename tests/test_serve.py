"""Tests for ``repro.serve``: cache, sharding, protocol, and server.

Three properties carry the serving story (docs/serving.md):

* cache keys are content addresses — uid-independent, sensitive to
  everything that changes compiled output, stable across processes;
* the sharded parallel compile path is bit-identical to the serial
  path (checked via ``program_signature``, the uid-free rendering);
* the HTTP endpoint speaks the documented protocol, including batch
  isolation and structured error codes.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.ir.parser import parse_program, parse_trace
from repro.machine.model import MachineModel
from repro.program_compiler import compile_program, verify_compiled_program
from repro.serve.cache import (
    CompileCache,
    TraceArtifact,
    program_signature,
    resolve_cache,
    trace_key,
)

TRACE_SRC = """\
a = load [A]
b = load [B]
t0 = a + b
t1 = t0 * a
store [OUT], t1
"""

PROGRAM_SRC = """\
start:
  n = 6
  i = 0
loop:
  x = load [v]
  s = x + i
  store [w], s
  i = i + 1
  c = i < n
  if c goto loop
done:
  halt
"""

MACHINE = MachineModel.homogeneous(2, 4)


@pytest.fixture
def cache(tmp_path):
    return CompileCache(tmp_path / "store")


# ======================================================================
# Key derivation.
# ======================================================================
class TestTraceKey:
    def test_uid_independent(self):
        # Two parses allocate disjoint uid ranges; the key must not care.
        first = parse_trace(TRACE_SRC)
        second = parse_trace(TRACE_SRC)
        assert [inst.uid for inst in first] != [inst.uid for inst in second]
        assert trace_key(first, MACHINE, "ursa") == trace_key(
            second, MACHINE, "ursa"
        )

    def test_sensitive_to_trace_text(self):
        base = parse_trace(TRACE_SRC)
        changed = parse_trace(TRACE_SRC.replace("t0 * a", "t0 * b"))
        assert trace_key(base, MACHINE, "ursa") != trace_key(
            changed, MACHINE, "ursa"
        )

    def test_sensitive_to_machine(self):
        trace = parse_trace(TRACE_SRC)
        key = trace_key(trace, MACHINE, "ursa")
        assert key != trace_key(
            trace, MachineModel.homogeneous(4, 8), "ursa"
        )
        assert key != trace_key(
            trace, MachineModel.homogeneous(2, 4, latency=2), "ursa"
        )

    def test_sensitive_to_method_engine_extra(self):
        trace = parse_trace(TRACE_SRC)
        key = trace_key(trace, MACHINE, "ursa")
        assert key != trace_key(trace, MACHINE, "postpass")
        assert key != trace_key(trace, MACHINE, "ursa", engine="legacy")
        assert key != trace_key(
            trace, MACHINE, "ursa", extra=("resilient",)
        )

    def test_classifier_behavior_is_keyed(self):
        trace = parse_trace(TRACE_SRC)
        dual = MachineModel.dual_regclass(2, 4, 4)
        assert trace_key(trace, dual, "ursa") != trace_key(
            trace, MACHINE, "ursa"
        )

    def test_stable_across_processes(self):
        # The content address must be reproducible in a fresh
        # interpreter, or cross-run cache hits cannot exist.
        trace = parse_trace(TRACE_SRC)
        local = trace_key(trace, MACHINE, "ursa")
        script = (
            "from repro.ir.parser import parse_trace\n"
            "from repro.machine.model import MachineModel\n"
            "from repro.serve.cache import trace_key\n"
            f"trace = parse_trace({TRACE_SRC!r})\n"
            "print(trace_key(trace, MachineModel.homogeneous(2, 4), 'ursa'))\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        remote = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        ).stdout.strip()
        assert remote == local


# ======================================================================
# The persistent store.
# ======================================================================
class TestCompileCache:
    def test_round_trip_fresh_instance(self, tmp_path):
        root = tmp_path / "store"
        compiled = compile_program(
            parse_program(PROGRAM_SRC), MACHINE, cache=root
        )
        assert compiled.cache_hits == 0 and compiled.cache_misses == 2

        # A brand-new cache object on the same root: pure disk hits.
        again = compile_program(
            parse_program(PROGRAM_SRC), MACHINE, cache=root
        )
        assert again.cache_hits == 2 and again.cache_misses == 0
        for head in compiled.traces:
            assert program_signature(
                compiled.traces[head].program
            ) == program_signature(again.traces[head].program)
        _, ok = verify_compiled_program(again, {("v", 0): 5})
        assert ok

    def test_cached_artifact_is_correct_cross_process(self, tmp_path):
        # Populate the store from a *different* interpreter, then hit
        # it here: the artifact must unpickle and verify.
        root = tmp_path / "store"
        script = (
            "from repro.ir.parser import parse_program\n"
            "from repro.machine.model import MachineModel\n"
            "from repro.program_compiler import compile_program\n"
            f"compiled = compile_program(parse_program({PROGRAM_SRC!r}),\n"
            f"    MachineModel.homogeneous(2, 4), cache={str(root)!r})\n"
            "assert compiled.cache_misses == 2, compiled.cache_misses\n"
        )
        src = Path(__file__).resolve().parent.parent / "src"
        subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        compiled = compile_program(
            parse_program(PROGRAM_SRC), MACHINE, cache=root
        )
        assert compiled.cache_hits == 2 and compiled.cache_misses == 0
        _, ok = verify_compiled_program(compiled, {("v", 0): 5})
        assert ok

    def test_corrupt_object_is_a_miss(self, cache):
        trace = parse_trace(TRACE_SRC)
        key = trace_key(trace, MACHINE, "ursa")
        path = cache._object_path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()  # deleted on first read

    def test_hot_memo_skips_disk(self, cache):
        compiled = compile_program(
            parse_program(PROGRAM_SRC), MACHINE, cache=cache
        )
        assert compiled.cache_misses == 2
        # Same cache object: the memo answers without touching disk.
        for path in cache._objects():
            path.unlink()
        again = compile_program(
            parse_program(PROGRAM_SRC), MACHINE, cache=cache
        )
        assert again.cache_hits == 2
        assert cache.hot_hits >= 2

    def test_deadline_bypasses_cache(self, cache):
        compiled = compile_program(
            parse_program(PROGRAM_SRC), MACHINE,
            cache=cache, deadline_ms=5000,
        )
        # Deadline'd output is time-dependent: never read, never stored.
        assert compiled.cache_hits == 0
        assert cache.stats()["entries"] == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_gc_and_clear(self, cache):
        compile_program(parse_program(PROGRAM_SRC), MACHINE, cache=cache)
        assert cache.stats()["entries"] == 2
        outcome = cache.gc(max_bytes=0)
        assert outcome["removed"] == 2 and outcome["remaining"] == 0
        # Fresh instance (no hot memo): the recompile rewrites the store.
        refill = CompileCache(cache.root)
        compile_program(parse_program(PROGRAM_SRC), MACHINE, cache=refill)
        assert refill.clear() == 2
        assert refill.stats()["entries"] == 0

    def test_resolve_cache_forms(self, tmp_path, cache):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        assert resolve_cache(cache) is cache
        store = resolve_cache(tmp_path / "elsewhere")
        assert isinstance(store, CompileCache)
        assert store.root == tmp_path / "elsewhere"


# ======================================================================
# Sharded parallel compilation.
# ======================================================================
class TestParallelCompile:
    def _identical(self, serial, parallel):
        assert sorted(serial.traces) == sorted(parallel.traces)
        for head in serial.traces:
            assert program_signature(
                serial.traces[head].program
            ) == program_signature(parallel.traces[head].program), head

    def test_bit_identical_to_serial(self):
        program = parse_program(PROGRAM_SRC)
        serial = compile_program(program, MACHINE)
        parallel = compile_program(program, MACHINE, jobs=2)
        self._identical(serial, parallel)
        run_s, ok_s = verify_compiled_program(serial, {("v", 0): 5})
        run_p, ok_p = verify_compiled_program(parallel, {("v", 0): 5})
        assert ok_s and ok_p
        assert run_s.cycles == run_p.cycles
        assert run_s.user_memory() == run_p.user_memory()

    def test_bit_identical_on_random_programs(self):
        from repro.workloads.random_programs import random_structured_program

        for seed in (7, 11):
            program = random_structured_program(seed=seed)
            serial = compile_program(program, MACHINE)
            parallel = compile_program(program, MACHINE, jobs=2)
            self._identical(serial, parallel)

    def test_parallel_populates_shared_cache(self, cache):
        program = parse_program(PROGRAM_SRC)
        first = compile_program(program, MACHINE, jobs=2, cache=cache)
        assert first.cache_misses == 2
        second = compile_program(program, MACHINE, jobs=2, cache=cache)
        assert second.cache_hits == 2 and second.cache_misses == 0
        self._identical(first, second)

    def test_pool_failure_degrades_to_serial(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no process spawning here")

        monkeypatch.setattr(
            "multiprocessing.Pool", broken_pool
        )
        program = parse_program(PROGRAM_SRC)
        compiled = compile_program(program, MACHINE, jobs=2)
        serial = compile_program(program, MACHINE)
        self._identical(serial, compiled)


# ======================================================================
# The server.
# ======================================================================
@pytest.fixture
def server(tmp_path):
    from repro.serve.server import make_server

    srv = make_server(port=0, cache=tmp_path / "store", jobs=None)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    srv.app.close()


@pytest.fixture
def client(server):
    from repro.serve.client import ServeClient

    host, port = server.server_address[:2]
    return ServeClient(f"http://{host}:{port}")


class TestServer:
    def test_health_and_stats_routes(self, client):
        assert client.health()
        stats = client.stats()
        assert stats["ok"] and stats["config"]["caching"]

    def test_stats_report_method_catalogue(self, client):
        from repro.methods import method_names

        stats = client.stats()
        entries = stats["methods"]
        assert [e["name"] for e in entries] == list(method_names())
        by_name = {e["name"]: e for e in entries}
        assert by_name["bnb-exact"]["capabilities"]["exact"]
        assert by_name["ursa"]["ladder"][-1] == "spill-everywhere"

    def test_unknown_method_rejected_with_catalogue(self):
        from repro.serve.protocol import handle_payload

        status, body = handle_payload(
            {"source": TRACE_SRC, "method": "bogus"}, cache=None
        )
        assert status == 400
        assert body["error"]["code"] == "bad_request"
        assert "known methods" in body["error"]["message"]
        assert "ursa" in body["error"]["message"]

    def test_trace_compile_and_hot_hit(self, client):
        first = client.compile_trace(
            TRACE_SRC, machine={"fus": 2, "regs": 4}, verify=True
        )
        assert first["verified"] is True
        assert first["cache"] == {
            "hit": False, "hot": False, "key": first["cache"]["key"]
        }
        second = client.compile_trace(TRACE_SRC, machine={"fus": 2, "regs": 4})
        assert second["cache"]["hit"] and second["cache"]["hot"]
        assert first["program"] == second["program"]

    def test_program_compile(self, client):
        result = client.compile_program(
            PROGRAM_SRC, machine={"preset": "research"},
            memory={"v": 5},
        )
        assert result["verified"] is True
        assert result["cache"] == {"hits": 0, "misses": 2}
        assert result["dispatch_path"][0] == "start"

    def test_batch_isolates_failures(self, client):
        responses = client.batch([
            {"kind": "trace", "source": TRACE_SRC, "id": "good"},
            {"kind": "trace", "source": "definitely ( not code", "id": "bad"},
            {"kind": "trace", "source": TRACE_SRC, "method": "nope"},
        ])
        assert [r["ok"] for r in responses] == [True, False, False]
        assert responses[0]["id"] == "good"
        assert responses[1]["error"]["code"] == "parse_error"
        assert responses[2]["error"]["code"] == "bad_request"

    def test_error_codes_and_statuses(self, client):
        from repro.serve.client import ServeError

        with pytest.raises(ServeError) as err:
            client.compile_trace("garbage ( <<")
        assert err.value.code == "parse_error" and err.value.status == 400

        with pytest.raises(ServeError) as err:
            client.compile_trace(TRACE_SRC, machine={"preset": "atari"})
        assert err.value.code == "bad_request" and err.value.status == 400

        with pytest.raises(ServeError) as err:
            client._request("POST", "/v1/compile", {"kind": "sculpture"})
        assert err.value.code == "bad_request"

    def test_stats_reflect_traffic(self, client):
        client.compile_trace(TRACE_SRC)
        client.compile_trace(TRACE_SRC)
        counters = client.stats()["counters"]
        assert counters["serve.requests"] >= 2
        assert counters["serve.cache_hit"] >= 1
        session = client.cache_stats()["session"]
        assert session["hits"] >= 1 and session["puts"] >= 1


class TestProtocolUnit:
    def test_handle_payload_without_server(self):
        from repro.serve.protocol import handle_payload

        status, body = handle_payload(
            {"kind": "trace", "source": TRACE_SRC}, cache=None
        )
        assert status == 200 and body["ok"]
        status, body = handle_payload({"kind": "trace"}, cache=None)
        assert status == 400
        assert body["error"]["code"] == "bad_request"

    def test_oversized_batch_rejected(self):
        from repro.serve.protocol import handle_payload

        status, body = handle_payload(
            {"requests": [{"kind": "trace"}] * 5}, cache=None, max_batch=4
        )
        assert status == 400 and "max_batch" in body["error"]["message"]

    def test_machine_from_spec(self):
        from repro.serve.protocol import ProtocolError, machine_from_spec

        assert machine_from_spec(None).name == "vliw-4fu-8r"
        assert machine_from_spec({"preset": "research"}).total_fus > 0
        classed = machine_from_spec({"fus": 4, "regs": 8, "classed": True})
        assert len(classed.fu_classes) > 1
        with pytest.raises(ProtocolError):
            machine_from_spec({"warp": 9})
