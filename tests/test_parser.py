"""Unit tests for the ursa-lang parser."""

import pytest

from repro.ir.instructions import Addr, Imm, Var
from repro.ir.opcodes import Opcode
from repro.ir.parser import ParseError, parse_program, parse_trace


class TestExpressions:
    def test_load(self):
        (inst,) = parse_trace("v = load [a]")
        assert inst.op is Opcode.LOAD
        assert inst.addr == Addr("a", 0)

    def test_load_with_offset(self):
        (inst,) = parse_trace("v = load [a+8]")
        assert inst.addr == Addr("a", 8)

    def test_load_with_negative_offset(self):
        (inst,) = parse_trace("v = load [a - 4]")
        assert inst.addr == Addr("a", -4)

    @pytest.mark.parametrize(
        "text,op",
        [
            ("x = a + b", Opcode.ADD),
            ("x = a - b", Opcode.SUB),
            ("x = a * b", Opcode.MUL),
            ("x = a / b", Opcode.DIV),
            ("x = a % b", Opcode.MOD),
            ("x = a & b", Opcode.AND),
            ("x = a | b", Opcode.OR),
            ("x = a ^ b", Opcode.XOR),
            ("x = a << b", Opcode.SHL),
            ("x = a >> b", Opcode.SHR),
            ("x = a == b", Opcode.CMPEQ),
            ("x = a != b", Opcode.CMPNE),
            ("x = a < b", Opcode.CMPLT),
            ("x = a <= b", Opcode.CMPLE),
            ("x = a > b", Opcode.CMPGT),
            ("x = a >= b", Opcode.CMPGE),
        ],
    )
    def test_binary_operators(self, text, op):
        (inst,) = parse_trace(text)
        assert inst.op is op
        assert inst.srcs == (Var("a"), Var("b"))

    def test_minmax(self):
        (inst,) = parse_trace("x = min(a, 3)")
        assert inst.op is Opcode.MIN
        assert inst.srcs == (Var("a"), Imm(3))

    def test_const(self):
        (inst,) = parse_trace("x = 42")
        assert inst.op is Opcode.CONST
        assert inst.srcs == (Imm(42),)

    def test_negative_const(self):
        (inst,) = parse_trace("x = -42")
        assert inst.op is Opcode.CONST
        assert inst.srcs == (Imm(-42),)

    def test_mov(self):
        (inst,) = parse_trace("x = y")
        assert inst.op is Opcode.MOV

    def test_neg(self):
        (inst,) = parse_trace("x = -y")
        assert inst.op is Opcode.NEG

    def test_immediate_operand(self):
        (inst,) = parse_trace("x = a * 2")
        assert inst.srcs == (Var("a"), Imm(2))


class TestStatements:
    def test_store(self):
        (inst,) = parse_trace("store [z], t")
        assert inst.op is Opcode.STORE
        assert inst.addr == Addr("z", 0)
        assert inst.srcs == (Var("t"),)

    def test_store_offset(self):
        (inst,) = parse_trace("store [z+4], 7")
        assert inst.addr == Addr("z", 4)
        assert inst.srcs == (Imm(7),)

    def test_halt_and_nop(self):
        insts = parse_trace("nop\nhalt")
        assert [i.op for i in insts] == [Opcode.NOP, Opcode.HALT]

    def test_cbr_side_exit(self):
        insts = parse_trace("c = 1\nif c goto Lexit")
        assert insts[1].op is Opcode.CBR
        assert insts[1].target == "Lexit"

    def test_comments_and_blanks(self):
        insts = parse_trace("# header\n\nx = 1  # trailing\n")
        assert len(insts) == 1

    def test_unparseable_raises(self):
        with pytest.raises(ParseError):
            parse_trace("x = = 2")

    def test_garbage_statement_raises(self):
        with pytest.raises(ParseError):
            parse_trace("frobnicate everything")

    def test_empty_program_raises(self):
        with pytest.raises(ParseError):
            parse_program("   \n# just comments\n")


class TestPrograms:
    def test_labels_create_blocks(self):
        prog = parse_program("L0:\nx = 1\nbr L1\nL1:\nhalt")
        assert [b.label for b in prog.blocks] == ["L0", "L1"]

    def test_implicit_entry_block(self):
        prog = parse_program("x = 1\nhalt")
        assert prog.entry.label == "L0"

    def test_parse_trace_rejects_multi_block(self):
        with pytest.raises(ParseError):
            parse_trace("L0:\nbr L1\nL1:\nhalt")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(Exception):
            parse_program("L0:\nx = 1\nL0:\nhalt")

    def test_cfg_edges(self):
        prog = parse_program(
            "L0:\nc = 1\nif c goto L2\nL1:\nhalt\nL2:\nhalt"
        )
        cfg = prog.cfg()
        assert set(cfg.successors("L0")) == {"L1", "L2"}

    def test_roundtrip_through_str(self):
        source = "v = load [a]\nw = v * 2\nstore [z], w"
        insts = parse_trace(source)
        again = parse_trace("\n".join(str(i) for i in insts))
        assert [str(i) for i in again] == [str(i) for i in insts]
