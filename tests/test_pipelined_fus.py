"""Tests for pipelined functional units (the §6 superscalar direction)."""

import pytest

from repro.graph.dag import DependenceDAG
from repro.ir.parser import parse_trace
from repro.machine.model import FUClass, MachineModel
from repro.pipeline import compile_trace
from repro.workloads.random_dags import random_wide_trace


def machine_pair(n_fus=1, n_regs=16, latency=3):
    non_pipelined = MachineModel(
        "np", (FUClass("any", n_fus, latency),), {"gpr": n_regs}
    )
    pipelined = MachineModel(
        "pp", (FUClass("any", n_fus, latency, pipelined=True),), {"gpr": n_regs}
    )
    return non_pipelined, pipelined


INDEPENDENT = "\n".join(
    [f"v{i} = load [in+{i}]" for i in range(6)]
    + [f"store [out+{i}], v{i}" for i in range(6)]
)


class TestOccupancy:
    def test_fuclass_occupancy(self):
        assert FUClass("any", 1, 3).occupancy == 3
        assert FUClass("any", 1, 3, pipelined=True).occupancy == 1

    def test_pipelining_improves_throughput(self):
        non_pipelined, pipelined = machine_pair()
        trace = parse_trace(INDEPENDENT)
        # Pure scheduling comparison (no URSA width transformations).
        slow = compile_trace(trace, non_pipelined, method="goodman-hsu")
        fast = compile_trace(trace, pipelined, method="goodman-hsu")
        assert slow.verified and fast.verified
        # 12 independent mem ops at latency 3 on one unit: non-pipelined
        # needs >= 34 cycles; pipelined issues one per cycle.
        assert slow.stats.cycles >= 34
        assert fast.stats.cycles <= 16

    def test_latency_still_respected_when_pipelined(self):
        _, pipelined = machine_pair(n_fus=2)
        trace = parse_trace("a = load [m]\nb = a + 1\nstore [z], b")
        result = compile_trace(trace, pipelined)
        assert result.verified
        # The dependent add still waits out the 3-cycle load latency.
        assert result.stats.cycles >= 7

    def test_simulator_rejects_premature_reuse_nonpipelined(self):
        from repro.machine.simulator import SimulationError, VLIWSimulator
        from repro.machine.vliw import MachineOp, RegRef, VLIWProgram, VLIWWord
        from repro.ir.opcodes import Opcode

        non_pipelined, _ = machine_pair()
        program = VLIWProgram(non_pipelined)
        w0, w1 = VLIWWord(), VLIWWord()
        w0.place("any", 0, MachineOp(Opcode.CONST, dest=RegRef(0), srcs=(1,)))
        w1.place("any", 0, MachineOp(Opcode.CONST, dest=RegRef(1), srcs=(2,)))
        program.words = [w0, w1]
        with pytest.raises(SimulationError):
            VLIWSimulator(non_pipelined).run(program)

    def test_simulator_allows_back_to_back_pipelined(self):
        from repro.machine.simulator import VLIWSimulator
        from repro.machine.vliw import MachineOp, RegRef, VLIWProgram, VLIWWord
        from repro.ir.opcodes import Opcode

        _, pipelined = machine_pair()
        program = VLIWProgram(pipelined)
        w0, w1 = VLIWWord(), VLIWWord()
        w0.place("any", 0, MachineOp(Opcode.CONST, dest=RegRef(0), srcs=(1,)))
        w1.place("any", 0, MachineOp(Opcode.CONST, dest=RegRef(1), srcs=(2,)))
        program.words = [w0, w1]
        result = VLIWSimulator(pipelined).run(program)
        assert result.issued_ops == 2


class TestPipelinedCompilation:
    @pytest.mark.parametrize(
        "method", ["ursa", "prepass", "postpass", "goodman-hsu", "naive"]
    )
    def test_all_methods_on_pipelined_machine(self, method):
        machine = MachineModel.homogeneous(2, 8, latency=2, pipelined=True)
        trace = random_wide_trace(n_chains=4, chain_length=3, seed=9)
        result = compile_trace(trace, machine, method=method, seed=9)
        assert result.verified

    def test_homogeneous_factory_flag(self):
        machine = MachineModel.homogeneous(2, 4, pipelined=True)
        assert machine.fu_classes[0].pipelined
        assert machine.name.endswith("p")
