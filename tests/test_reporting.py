"""Tests for the Markdown compilation report."""

import pytest

from repro.analysis.reporting import compilation_report
from repro.machine.model import MachineModel
from repro.pipeline import compile_trace
from repro.workloads.kernels import kernel


@pytest.fixture
def ursa_result():
    machine = MachineModel.homogeneous(2, 3)
    return compile_trace(kernel("figure2"), machine, memory={("v", 0): 6})


class TestCompilationReport:
    def test_contains_core_sections(self, ursa_result):
        report = compilation_report(ursa_result)
        assert "# Compilation report" in report
        assert "## Measured requirements" in report
        assert "## URSA allocation" in report
        assert "## VLIW code" in report
        assert "## Unit occupancy" in report
        assert "verified ✅" in report

    def test_custom_title(self, ursa_result):
        report = compilation_report(ursa_result, title="Figure 2 walkthrough")
        assert report.startswith("# Figure 2 walkthrough")

    def test_transformation_rows_present(self, ursa_result):
        report = compilation_report(ursa_result)
        for record in ursa_result.allocation.records:
            assert record.kind in report

    def test_sections_can_be_disabled(self, ursa_result):
        report = compilation_report(
            ursa_result, include_code=False, include_charts=False
        )
        assert "## VLIW code" not in report
        assert "## Unit occupancy" not in report
        assert "## Measured requirements" in report

    def test_baseline_report_has_no_allocation_section(self):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(kernel("saxpy"), machine, method="prepass")
        report = compilation_report(result)
        assert "## URSA allocation" not in report
        assert "`prepass`" in report

    def test_unverified_report(self):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(kernel("saxpy"), machine, verify=False)
        report = compilation_report(result)
        assert "not simulated" in report

    def test_cli_report_flag(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(
            ["compile", "--kernel", "figure2", "--fus", "2", "--regs", "3",
             "--report", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert "Measured requirements" in text
