"""Golden tests for requirement measurement against the paper's numbers."""

import pytest

from repro.core.measure import (
    ResourceKind,
    find_excessive_sets,
    measure_all,
    measure_fu,
    measure_registers,
    trim_excessive_chains,
)
from repro.graph.dag import DependenceDAG
from repro.graph.dilworth import closure_from_dag_pairs
from repro.graph.hammock import HammockAnalysis
from repro.ir.parser import parse_trace
from repro.machine.model import MachineModel


class TestFigure2Measurement:
    """Paper §3: the Figure 2 DAG needs 4 FUs and 5 registers."""

    def test_fu_requirement_is_four(self, fig2_dag, machine44):
        req = measure_fu(fig2_dag, machine44, "any")
        assert req.required == 4

    def test_register_requirement_is_five(self, fig2_dag, machine44):
        req = measure_registers(fig2_dag, machine44)
        assert req.required == 5

    def test_decomposition_partitions_ops(self, fig2_dag, machine44):
        req = measure_fu(fig2_dag, machine44, "any")
        covered = [e for chain in req.decomposition.chains for e in chain]
        assert sorted(covered) == sorted(fig2_dag.op_nodes())

    def test_excess_accounting(self, fig2_dag):
        machine = MachineModel.homogeneous(3, 4)
        reqs = {r.kind: r for r in measure_all(fig2_dag, machine)}
        assert reqs[ResourceKind.FUNCTIONAL_UNIT].excess == 1
        assert reqs[ResourceKind.REGISTER].excess == 1

    def test_no_excess_on_big_machine(self, fig2_dag, big_machine):
        assert all(not r.is_excessive for r in measure_all(fig2_dag, big_machine))

    def test_measurement_idempotent(self, fig2_dag, machine44):
        first = measure_registers(fig2_dag, machine44)
        second = measure_registers(fig2_dag, machine44)
        assert first.required == second.required


class TestPaperTrimmingExample:
    """§3.1's worked trimming of { {A,B,E,I,K}, {C,F}, {D,G,J}, {H} }."""

    def test_trimming_matches_paper(self):
        covers = [
            ("A", "B"), ("A", "C"), ("A", "D"), ("B", "E"), ("B", "F"),
            ("C", "E"), ("C", "F"), ("D", "G"), ("D", "H"), ("E", "I"),
            ("F", "I"), ("G", "J"), ("H", "J"), ("I", "K"), ("J", "K"),
        ]
        order = closure_from_dag_pairs("ABCDEFGHIJK", covers)
        chains = [["A", "B", "E", "I", "K"], ["C", "F"], ["D", "G", "J"], ["H"]]
        trimmed = trim_excessive_chains(order, chains)
        assert trimmed == [["B", "E"], ["C", "F"], ["G"], ["H"]]

    def test_trimmed_heads_tails_independent(self):
        covers = [
            ("A", "B"), ("A", "C"), ("A", "D"), ("B", "E"), ("B", "F"),
            ("C", "E"), ("C", "F"), ("D", "G"), ("D", "H"), ("E", "I"),
            ("F", "I"), ("G", "J"), ("H", "J"), ("I", "K"), ("J", "K"),
        ]
        order = closure_from_dag_pairs("ABCDEFGHIJK", covers)
        chains = [["A", "B", "E", "I", "K"], ["C", "F"], ["D", "G", "J"], ["H"]]
        trimmed = trim_excessive_chains(order, chains)
        heads = [c[0] for c in trimmed]
        tails = [c[-1] for c in trimmed]
        for i, a in enumerate(heads):
            for b in heads[i + 1:]:
                assert order.independent(a, b)
        for i, a in enumerate(tails):
            for b in tails[i + 1:]:
                assert order.independent(a, b)

    def test_empty_chains_vanish(self):
        order = closure_from_dag_pairs("ab", [("a", "b")])
        assert trim_excessive_chains(order, [["a"], ["b"], []]) in (
            [["a"]], [["b"]],
        )


class TestExcessiveSets:
    def test_fig2_fu_excess_set(self, fig2_dag, fig2_names):
        machine = MachineModel.homogeneous(3, 8)
        req = measure_fu(fig2_dag, machine, "any")
        sets = find_excessive_sets(fig2_dag, req)
        assert sets, "3 FUs must be excessive"
        ecs = sets[0]
        assert ecs.excess == 1
        members = {fig2_names[e] for chain in ecs.chains for e in chain}
        # Trimmed members are drawn from the parallel middle of the DAG.
        assert members <= set("BCDEFGH")

    def test_no_sets_when_not_excessive(self, fig2_dag, big_machine):
        req = measure_fu(fig2_dag, big_machine, "any")
        assert find_excessive_sets(fig2_dag, req) == []

    def test_scope_all_returns_nested(self, fig2_dag):
        machine = MachineModel.homogeneous(1, 8)
        req = measure_fu(fig2_dag, machine, "any")
        all_sets = find_excessive_sets(fig2_dag, req, scope="all")
        both = find_excessive_sets(fig2_dag, req, scope="both")
        assert len(all_sets) >= len(both) >= 1

    def test_scope_validation(self, fig2_dag, machine44):
        machine = MachineModel.homogeneous(1, 8)
        req = measure_fu(fig2_dag, machine, "any")
        with pytest.raises(ValueError):
            find_excessive_sets(fig2_dag, req, scope="bogus")

    def test_register_excess_set_elements_are_values(self, fig2_dag):
        machine = MachineModel.homogeneous(8, 3)
        req = measure_registers(fig2_dag, machine)
        sets = find_excessive_sets(fig2_dag, req)
        assert sets
        for chain in sets[0].chains:
            for element in chain:
                assert isinstance(element, str)


class TestMultiClassMeasurement:
    def test_classed_machine_measures_each_class(self, fig2_dag):
        machine = MachineModel.classed(alu=2, mul=2, mem=1, branch=1)
        reqs = measure_all(fig2_dag, machine)
        classes = {r.cls for r in reqs if r.kind is ResourceKind.FUNCTIONAL_UNIT}
        assert classes == {"alu", "mul", "mem", "branch"}

    def test_dual_register_classes(self):
        machine = MachineModel.dual_regclass(int_regs=4, flt_regs=4)
        dag = DependenceDAG.from_trace(
            parse_trace(
                "i0 = load [a]\nf0 = load [b]\ni1 = i0 + 1\nf1 = f0 + 1\n"
                "store [z], i1\nstore [w], f1"
            )
        )
        reqs = [r for r in measure_all(dag, machine) if r.kind is ResourceKind.REGISTER]
        by_class = {r.cls: r.required for r in reqs}
        assert set(by_class) == {"int", "flt"}
        assert by_class["int"] >= 1 and by_class["flt"] >= 1
