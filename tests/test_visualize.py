"""Tests for the DOT/ASCII visualization helpers."""

import pytest

from repro.analysis.visualize import (
    chains_to_dot,
    dag_to_dot,
    pressure_profile,
    schedule_gantt,
)
from repro.core.measure import measure_fu
from repro.graph.dag import DependenceDAG
from repro.machine.model import FUClass, MachineModel
from repro.scheduling.list_scheduler import ListScheduler, Schedule


class TestDot:
    def test_dag_to_dot_wellformed(self, fig2_dag):
        dot = dag_to_dot(fig2_dag)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        # Every op node appears.
        for uid in fig2_dag.op_nodes():
            assert f"n{uid} [" in dot

    def test_pseudo_nodes_excluded_by_default(self, fig2_dag):
        dot = dag_to_dot(fig2_dag)
        assert "ENTRY" not in dot
        assert "EXIT" not in dot

    def test_pseudo_nodes_included_on_request(self, fig2_dag):
        dot = dag_to_dot(fig2_dag, include_pseudo=True)
        assert "ENTRY" in dot and "EXIT" in dot

    def test_highlight_marks_nodes(self, fig2_dag, fig2_uid_of):
        dot = dag_to_dot(fig2_dag, highlight=[fig2_uid_of["G"]])
        assert "lightgoldenrod" in dot

    def test_seq_edges_dashed(self, fig2_dag, fig2_uid_of):
        fig2_dag.add_sequence_edge(fig2_uid_of["G"], fig2_uid_of["H"])
        dot = dag_to_dot(fig2_dag)
        assert "style=dashed" in dot

    def test_chains_to_dot(self, fig2_dag, machine44):
        requirement = measure_fu(fig2_dag, machine44, "any")
        dot = chains_to_dot(fig2_dag, requirement.decomposition.chains)
        assert "color=red" in dot
        assert dot.count("fillcolor") >= len(fig2_dag.op_nodes())


class TestGantt:
    def test_rows_per_unit(self, fig2_dag):
        machine = MachineModel.homogeneous(3, 8)
        schedule = ListScheduler(fig2_dag, machine).run()
        chart = schedule_gantt(schedule)
        assert "any[0]" in chart and "any[2]" in chart
        assert "any[3]" not in chart

    def test_latency_occupancy_marked(self, fig2_dag):
        machine = MachineModel("lat2", (FUClass("any", 4, 2),), {"gpr": 16})
        schedule = ListScheduler(fig2_dag, machine).run()
        chart = schedule_gantt(schedule)
        assert "=====" in chart

    def test_spill_code_tagged(self, fig2_dag):
        machine = MachineModel.homogeneous(2, 3)
        schedule = ListScheduler(fig2_dag, machine).run()
        if schedule.spill_count == 0:
            pytest.skip("this configuration resolved without spilling")
        chart = schedule_gantt(schedule)
        tokens = set(chart.split())
        assert "sp" in tokens and "re" in tokens

    def test_empty_schedule(self):
        machine = MachineModel.homogeneous(1, 1)
        schedule = Schedule(machine, [], 0, {}, {}, {})
        assert schedule_gantt(schedule) == "(empty schedule)"


class TestPressureProfile:
    def test_profile_has_one_line_per_cycle(self, fig2_dag):
        machine = MachineModel.homogeneous(4, 8)
        schedule = ListScheduler(fig2_dag, machine).run()
        profile = pressure_profile(schedule)
        cycles = max(op.cycle for op in schedule.ops) + 1
        assert len(profile.splitlines()) == cycles

    def test_profile_counts_bounded_by_file(self, fig2_dag):
        machine = MachineModel.homogeneous(4, 4)
        schedule = ListScheduler(fig2_dag, machine).run()
        profile = pressure_profile(schedule)
        counts = [int(line.split()[-1]) for line in profile.splitlines()]
        assert max(counts) <= 4  # never more than the register file
