"""Property fuzz and unit tests for the bitset measurement kernels.

The bitset engine's contract is *bit-identity*: every kernel — chain
decomposition, antichain extraction, reuse-relation construction, kill
selection, the full ``measure_all`` — must produce exactly what the
legacy (dict-of-sets) path produces, not merely results of equal size.
These tests fuzz that claim over seeded random DAGs, and pin down the
shared uid<->bit index table's stability under transaction rollback
(the property ``repro.pm``'s warm re-measurement relies on).

Engine comparisons always run both engines on the *same* DAG instance:
uids come from a global counter, so two separately-built DAGs of the
same trace get different uids and are not comparable.
"""

import random

import pytest

from repro.core.kill import select_kill
from repro.core.measure import measure_all
from repro.core.reuse import (
    can_reuse_fu,
    can_reuse_fu_reference,
    can_reuse_registers_sound,
    can_reuse_registers_sound_reference,
    collect_values,
)
from repro.graph import bitset
from repro.graph.dag import DependenceDAG
from repro.graph.dilworth import (
    PartialOrder,
    closure_from_dag_pairs,
    maximum_antichain,
    minimum_chain_decomposition,
)
from repro.machine.model import MachineModel
from repro.workloads.random_dags import random_layered_trace

FUZZ_SEEDS = range(12)


def random_order(n, density, seed):
    rng = random.Random(seed)
    covers = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < density
    ]
    return closure_from_dag_pairs(range(n), covers)


def random_levels(order, seed, depth=3):
    rng = random.Random(seed)
    return {e: rng.randrange(depth) for e in order.elements}


def decomposition_key(decomposition):
    return (
        tuple(tuple(c) for c in decomposition.chains),
        tuple(sorted(decomposition.successor.items())),
    )


def measurement_key(requirements):
    return [
        (
            r.kind.value,
            r.cls,
            r.required,
            tuple(sorted(tuple(c) for c in r.decomposition.chains)),
            tuple(sorted(r.kill.kill.items())) if r.kill is not None else None,
        )
        for r in requirements
    ]


# ======================================================================
# Kernel-level identity fuzz.
# ======================================================================
class TestDecompositionIdentity:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_unprioritized_same_width_and_valid(self, seed):
        # The unprioritized path intentionally swaps matchers (batched
        # Hopcroft-Karp vs legacy Kuhn): chain *sets* may differ, the
        # width may not — and bit-identity is reserved for the
        # prioritized paths the measurement core uses (below).
        order = random_order(6 + seed * 3, 0.2 + 0.04 * (seed % 5), seed)
        fast = minimum_chain_decomposition(order, engine="bitset")
        slow = minimum_chain_decomposition(order, engine="legacy")
        assert len(fast.chains) == len(slow.chains)
        for decomposition in (fast, slow):
            seen = [e for chain in decomposition.chains for e in chain]
            assert sorted(seen) == sorted(order.elements)  # a partition
            for chain in decomposition.chains:
                for a, b in zip(chain, chain[1:]):
                    assert order.less(a, b)  # each chain is a chain

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_levels_matches_legacy(self, seed):
        order = random_order(6 + seed * 3, 0.25, seed)
        levels = random_levels(order, seed)
        fast = minimum_chain_decomposition(order, levels=levels, engine="bitset")
        slow = minimum_chain_decomposition(order, levels=levels, engine="legacy")
        assert decomposition_key(fast) == decomposition_key(slow)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_priority_callable_matches_legacy(self, seed):
        order = random_order(6 + seed * 2, 0.3, seed)
        levels = random_levels(order, seed + 99)
        priority = lambda a, b: abs(levels[a] - levels[b])  # noqa: E731
        fast = minimum_chain_decomposition(order, priority=priority, engine="bitset")
        slow = minimum_chain_decomposition(order, priority=priority, engine="legacy")
        assert decomposition_key(fast) == decomposition_key(slow)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_antichain_identical_not_just_equal_sized(self, seed):
        order = random_order(8 + seed * 3, 0.22, seed)
        fast = maximum_antichain(order, engine="bitset")
        slow = maximum_antichain(order, engine="legacy")
        assert fast == slow
        width = len(minimum_chain_decomposition(order).chains)
        assert len(fast) == width  # Dilworth, both engines


class TestReuseRelationIdentity:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fu_and_register_relations(self, seed):
        rng = random.Random(seed)
        trace = random_layered_trace(
            n_ops=rng.choice([10, 25, 60]), width=rng.choice([3, 5, 9]),
            seed=seed,
        )
        dag = DependenceDAG.from_trace(trace)
        machine = MachineModel.homogeneous(2, 4)
        elements = sorted(dag.op_nodes())
        assert (
            can_reuse_fu(dag, elements).pairs()
            == can_reuse_fu_reference(dag, elements).pairs()
        )
        values = collect_values(dag, machine)
        assert (
            can_reuse_registers_sound(dag, values).pairs()
            == can_reuse_registers_sound_reference(dag, values).pairs()
        )
        with bitset.engine("legacy"):
            legacy_kill = select_kill(dag, values)
        assert dict(select_kill(dag, values).items()) == dict(legacy_kill.items())


class TestMeasurementIdentity:
    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_measure_all_bit_identical(self, seed):
        rng = random.Random(seed)
        trace = random_layered_trace(
            n_ops=rng.choice([12, 30, 64, 100]),
            width=rng.choice([2, 4, 7]),
            seed=seed,
        )
        dag = DependenceDAG.from_trace(trace)
        machine = MachineModel.homogeneous(
            rng.choice([1, 2, 4]), rng.choice([4, 8])
        )
        fast = measure_all(dag, machine)
        with bitset.engine("legacy"):
            slow = measure_all(dag, machine)
        assert measurement_key(fast) == measurement_key(slow)


# ======================================================================
# BitsetKuhn state machinery.
# ======================================================================
class TestBitsetKuhn:
    def test_from_state_resumes_matching(self):
        # Two lefts matched, one unmatched with one free right.
        adj = [0b001, 0b011, 0b110]
        matcher = bitset.BitsetKuhn.from_state(adj, [0, 1, -1], [0, 1, -1])
        assert matcher.maximize() == 1
        assert matcher.match_left == [0, 1, 2]

    def test_from_state_augments_through_occupied_rights(self):
        # Left 2's only right is taken; augmentation must displace.
        adj = [0b011, 0b100, 0b001]
        matcher = bitset.BitsetKuhn.from_state(adj, [0, 2, -1], [0, -1, 1])
        assert matcher.maximize() == 1
        assert matcher.match_left.count(-1) == 0

    def test_multi_batch_preserves_first_batch_pairs(self):
        # The reference matcher never unmatches: a pair made in batch 1
        # survives batch 2 even when batch 2 could improve on it.
        matcher = bitset.BitsetKuhn(3)
        matcher.add_batch([(0, 0b001)])
        assert matcher.match_left[0] == 0
        matcher.add_batch([(1, 0b001), (2, 0b110)])
        assert matcher.match_left[0] == 0  # kept
        assert matcher.size >= 2

    def test_empty_rows_are_ignored(self):
        matcher = bitset.BitsetKuhn(4)
        assert matcher.add_batch([(0, 0), (1, 0b10)]) == 1
        assert matcher.match_left[0] == -1
        assert matcher.match_left[1] == 1


# ======================================================================
# The shared uid<->bit table under transactions.
# ======================================================================
class TestClosureMaskStability:
    def _dag(self, seed=7):
        trace = random_layered_trace(n_ops=30, width=4, seed=seed)
        return DependenceDAG.from_trace(trace)

    def _free_pair(self, dag):
        desc, index, order = dag.closure_masks()
        for a in order:
            for b in order:
                if a != b and dag.independent(a, b):
                    return a, b
        pytest.skip("no independent pair in this DAG")

    def test_rollback_restores_masks_and_table(self):
        dag = self._dag()
        desc_before, index_before, order_before = dag.closure_masks()
        snapshot = dict(desc_before)
        a, b = self._free_pair(dag)

        txn = dag.begin_transaction()
        assert dag.add_sequence_edge(a, b)
        desc_mid, index_mid, order_mid = dag.closure_masks()
        assert index_mid is index_before or index_mid == index_before
        assert desc_mid[a] >> index_mid[b] & 1, "edge not folded into closure"
        txn.rollback()

        desc_after, index_after, order_after = dag.closure_masks()
        assert desc_after == snapshot, "rollback did not restore masks"
        assert index_after == index_before
        assert order_after == order_before

    def test_commit_keeps_incremental_closure_exact(self):
        dag = self._dag(seed=11)
        a, b = self._free_pair(dag)
        txn = dag.begin_transaction()
        assert dag.add_sequence_edge(a, b)
        txn.commit()
        desc, index, order = dag.closure_masks()
        # Rebuild from scratch on a structural copy and compare in uid
        # space (the copy may lay bits out differently).
        rebuilt = dag.copy()
        rdesc, rindex, rorder = rebuilt.closure_masks()
        for uid in order:
            assert dag.descendants(uid) == rebuilt.descendants(uid)

    def test_measurement_identical_before_and_after_rollback(self):
        dag = self._dag(seed=13)
        machine = MachineModel.homogeneous(2, 4)
        before = measurement_key(measure_all(dag, machine))
        a, b = self._free_pair(dag)
        txn = dag.begin_transaction()
        dag.add_sequence_edge(a, b)
        txn.rollback()
        after = measurement_key(measure_all(dag, machine))
        assert before == after

    def test_version_keyed_caches_survive_rollback(self):
        # topo order / asap / hammocks are version-keyed; a rollback
        # must not leave them serving the transaction's view.
        dag = self._dag(seed=17)
        topo_before = dag.topological_order()
        asap_before = dag.asap()
        a, b = self._free_pair(dag)
        txn = dag.begin_transaction()
        dag.add_sequence_edge(a, b)
        dag.asap()  # warm the cache inside the transaction
        txn.rollback()
        assert dag.topological_order() == topo_before
        assert dag.asap() == asap_before
