"""Tests for schedule lowering and VLIW program containers."""

import pytest

from repro.core.codegen import CodegenError, lower_schedule
from repro.graph.dag import DependenceDAG
from repro.ir.opcodes import Opcode
from repro.machine.model import MachineModel
from repro.machine.vliw import MachineOp, RegRef, VLIWProgram, VLIWWord
from repro.scheduling.list_scheduler import ListScheduler


class TestLowering:
    def test_lowered_words_match_cycles(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 8)
        dag = DependenceDAG.from_trace(fig2_trace)
        schedule = ListScheduler(dag, machine).run()
        program = lower_schedule(schedule)
        assert program.issue_cycles == max(o.cycle for o in schedule.ops) + 1
        assert program.op_count == len(schedule.ops)

    def test_source_uids_preserved(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 8)
        dag = DependenceDAG.from_trace(fig2_trace)
        schedule = ListScheduler(dag, machine).run()
        program = lower_schedule(schedule)
        uids = {
            op.source_uid
            for word in program.words
            for op in word.ops
            if op.source_uid is not None
        }
        assert uids == set(dag.op_nodes())

    def test_missing_binding_raises(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 8)
        dag = DependenceDAG.from_trace(fig2_trace)
        schedule = ListScheduler(dag, machine).run()
        schedule.reg_assignment.clear()
        with pytest.raises(CodegenError):
            lower_schedule(schedule)

    def test_empty_schedule(self):
        machine = MachineModel.homogeneous(2, 2)
        from repro.scheduling.list_scheduler import Schedule

        schedule = Schedule(machine, [], 0, {}, {}, {})
        program = lower_schedule(schedule)
        assert program.issue_cycles == 0


class TestVLIWContainers:
    def test_word_rejects_double_placement(self):
        word = VLIWWord()
        op = MachineOp(Opcode.NOP)
        word.place("any", 0, op)
        with pytest.raises(ValueError):
            word.place("any", 0, op)

    def test_program_metrics(self):
        machine = MachineModel.homogeneous(2, 4)
        program = VLIWProgram(machine)
        word = VLIWWord()
        word.place("any", 0, MachineOp(Opcode.CONST, dest=RegRef(0), srcs=(1,)))
        word.place(
            "any", 1,
            MachineOp(Opcode.SPILL, srcs=(RegRef(0),), addr=None),
        )
        program.words.append(word)
        assert program.op_count == 2
        assert program.spill_op_count == 1
        assert program.utilization() == 1.0
        assert program.max_registers_used() == {"gpr": 1}

    def test_str_rendering(self):
        machine = MachineModel.homogeneous(1, 2)
        program = VLIWProgram(machine)
        program.words.append(VLIWWord())
        text = str(program)
        assert "(nop)" in text
