"""Unit and property tests for Dilworth machinery (Theorem 1)."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.dilworth import (
    ChainDecomposition,
    PartialOrder,
    PartialOrderError,
    closure_from_dag_pairs,
    maximum_antichain,
    minimum_chain_decomposition,
    width,
)


def random_dag_order(n, density, seed):
    """A random partial order from a random DAG's transitive closure."""
    rng = random.Random(seed)
    covers = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < density
    ]
    return closure_from_dag_pairs(range(n), covers)


class TestPartialOrder:
    def test_from_pairs_and_queries(self):
        po = PartialOrder.from_pairs("abc", [("a", "b"), ("a", "c"), ("b", "c")])
        assert po.less("a", "c")
        assert not po.less("c", "a")
        assert po.independent("b", "b") is False

    def test_validate_rejects_reflexive(self):
        with pytest.raises(PartialOrderError):
            PartialOrder.from_pairs("a", [("a", "a")])

    def test_validate_rejects_symmetric(self):
        po = PartialOrder.from_pairs("ab", [("a", "b"), ("b", "a")])
        with pytest.raises(PartialOrderError):
            po.validate()

    def test_validate_rejects_intransitive(self):
        po = PartialOrder.from_pairs("abc", [("a", "b"), ("b", "c")])
        with pytest.raises(PartialOrderError):
            po.validate()

    def test_closure_is_valid(self):
        po = random_dag_order(20, 0.2, seed=1)
        po.validate()

    def test_closure_rejects_cycles(self):
        with pytest.raises(PartialOrderError):
            closure_from_dag_pairs([0, 1], [(0, 1), (1, 0)])

    def test_is_chain_definition_1(self):
        """The paper's Definition 1 on the Figure 2 DAG structure."""
        covers = [
            ("A", "B"), ("A", "C"), ("A", "D"), ("B", "E"), ("B", "F"),
            ("C", "E"), ("C", "F"), ("D", "G"), ("D", "H"), ("E", "I"),
            ("F", "I"), ("G", "J"), ("H", "J"), ("I", "K"), ("J", "K"),
        ]
        po = closure_from_dag_pairs("ABCDEFGHIJK", covers)
        # The chains the paper lists below Figure 2.
        assert po.is_chain(["A", "B", "F", "K"])
        assert po.is_chain(["C", "E", "I"])
        assert po.is_chain(["D", "G", "J"])
        assert po.is_chain(["H"])
        assert not po.is_chain(["B", "C"])

    def test_sort_chain(self):
        po = closure_from_dag_pairs("abc", [("a", "b"), ("b", "c")])
        assert po.sort_chain(["c", "a", "b"]) == ["a", "b", "c"]


class TestDecomposition:
    def test_fig2_width_is_four(self):
        covers = [
            ("A", "B"), ("A", "C"), ("A", "D"), ("B", "E"), ("B", "F"),
            ("C", "E"), ("C", "F"), ("D", "G"), ("D", "H"), ("E", "I"),
            ("F", "I"), ("G", "J"), ("H", "J"), ("I", "K"), ("J", "K"),
        ]
        po = closure_from_dag_pairs("ABCDEFGHIJK", covers)
        decomposition = minimum_chain_decomposition(po)
        decomposition.validate()
        # Theorem 1: at most four nodes can execute in parallel.
        assert decomposition.width == 4
        assert len(maximum_antichain(po)) == 4

    def test_total_order_one_chain(self):
        po = closure_from_dag_pairs(range(6), [(i, i + 1) for i in range(5)])
        assert minimum_chain_decomposition(po).width == 1

    def test_antichain_all_independent(self):
        po = PartialOrder.from_pairs(range(5), [])
        assert minimum_chain_decomposition(po).width == 5

    def test_chain_index(self):
        po = closure_from_dag_pairs("ab", [("a", "b")])
        decomposition = minimum_chain_decomposition(po)
        index = decomposition.chain_index()
        assert index["a"] == index["b"]

    def test_empty_order(self):
        po = PartialOrder.from_pairs([], [])
        assert minimum_chain_decomposition(po).width == 0


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 2**30), st.integers(1, 18), st.floats(0.05, 0.5))
def test_property_dilworth_theorem(seed, n, density):
    """Minimum decomposition size == maximum antichain size (Dilworth)."""
    po = random_dag_order(n, density, seed)
    decomposition = minimum_chain_decomposition(po)
    decomposition.validate()
    antichain = maximum_antichain(po)
    assert decomposition.width == len(antichain)
    # The extracted antichain really is an antichain.
    members = sorted(antichain)
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            assert po.independent(a, b)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**30), st.integers(1, 15))
def test_property_width_function(seed, n):
    po = random_dag_order(n, 0.25, seed)
    assert width(po) == minimum_chain_decomposition(po).width


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**30), st.integers(2, 15))
def test_property_prioritized_decomposition_still_minimal(seed, n):
    """Priority batching never costs minimality (paper §3.1)."""
    po = random_dag_order(n, 0.3, seed)
    rng = random.Random(seed)
    plain = minimum_chain_decomposition(po)
    prioritized = minimum_chain_decomposition(
        po, priority=lambda a, b: rng.randrange(3)
    )
    prioritized.validate()
    assert prioritized.width == plain.width
