"""§3.1: hammock-prioritized matching gives per-hammock-minimal
decompositions, plus Definition 4 (transitive reduction) fidelity."""

import pytest

from repro.core.measure import measure_fu, measure_registers
from repro.graph.dag import DependenceDAG
from repro.graph.dilworth import (
    PartialOrder,
    closure_from_dag_pairs,
    minimum_chain_decomposition,
    transitive_reduction,
    width,
)
from repro.graph.hammock import HammockAnalysis
from repro.ir.parser import parse_trace
from repro.machine.model import MachineModel
from repro.workloads.random_dags import random_series_parallel


def projected_chain_count(decomposition, members):
    return sum(
        1
        for chain in decomposition.chains
        if any(element in members for element in chain)
    )


def restricted_width(order: PartialOrder, members) -> int:
    sub_elements = [e for e in order.elements if e in members]
    pairs = [
        (a, b)
        for a, bs in order.above.items()
        if a in members
        for b in bs
        if b in members
    ]
    return width(PartialOrder.from_pairs(sub_elements, pairs))


class TestTransitiveReduction:
    def test_fig2_reduction_matches_dag_edges(self, fig2_dag, fig2_uid_of):
        """For Figure 2, the program DAG *is* the Reuse_FU DAG: its edge
        set equals the transitive reduction of reachability (§3.2)."""
        machine = MachineModel.homogeneous(4, 8)
        requirement = measure_fu(fig2_dag, machine, "any")
        covers = set(transitive_reduction(requirement.order))
        dag_edges = {
            (u, v)
            for u, v, d in fig2_dag.graph.edges(data=True)
            if u not in (fig2_dag.entry, fig2_dag.exit)
            and v not in (fig2_dag.entry, fig2_dag.exit)
        }
        assert covers == dag_edges

    def test_reduction_has_no_transitive_edges(self, fig2_dag):
        machine = MachineModel.homogeneous(4, 8)
        order = measure_fu(fig2_dag, machine, "any").order
        covers = transitive_reduction(order)
        cover_set = set(covers)
        for a, b in covers:
            for c in order.above[a]:
                if c != b and b in order.above[c]:
                    pytest.fail(f"transitive edge ({a},{b}) kept via {c}")

    def test_reduction_closure_roundtrip(self):
        order = closure_from_dag_pairs("abcd", [("a", "b"), ("b", "c"), ("a", "d")])
        covers = transitive_reduction(order)
        rebuilt = closure_from_dag_pairs(order.elements, covers)
        assert rebuilt.above == order.above


class TestHammockMinimality:
    def test_fig2_fu_projections_minimal(self, fig2_dag):
        machine = MachineModel.homogeneous(4, 8)
        requirement = measure_fu(fig2_dag, machine, "any")
        analysis = HammockAnalysis(fig2_dag)
        for hammock in analysis.hammocks():
            members = set(hammock.nodes) & set(requirement.order.elements)
            if not members:
                continue
            projected = projected_chain_count(requirement.decomposition, members)
            minimal = restricted_width(requirement.order, members)
            # The projection uses at most one extra chain: a chain may
            # pass through the hammock with elements on both sides.
            assert projected >= minimal
            # And on this DAG the prioritized matching achieves equality
            # for the nested D..J hammock the paper's example relies on.

    def test_d_to_j_hammock_exactly_minimal(self, fig2_dag, fig2_uid_of):
        machine = MachineModel.homogeneous(4, 8)
        requirement = measure_fu(fig2_dag, machine, "any")
        analysis = HammockAnalysis(fig2_dag)
        d, j = fig2_uid_of["D"], fig2_uid_of["J"]
        (hammock,) = [
            h for h in analysis.hammocks() if h.entry == d and h.exit == j
        ]
        members = set(hammock.nodes)
        projected = projected_chain_count(requirement.decomposition, members)
        minimal = restricted_width(requirement.order, members)
        assert projected == minimal

    @pytest.mark.parametrize("seed", range(4))
    def test_series_parallel_hammocks_near_minimal(self, seed):
        trace = random_series_parallel(
            n_blocks=3, block_width=3, block_depth=2, seed=seed
        )
        dag = DependenceDAG.from_trace(trace)
        machine = MachineModel.homogeneous(4, 8)
        requirement = measure_fu(dag, machine, "any")
        analysis = HammockAnalysis(dag)
        for hammock in sorted(analysis.hammocks(), key=len)[:6]:
            members = set(hammock.nodes) & set(requirement.order.elements)
            if len(members) < 2:
                continue
            projected = projected_chain_count(requirement.decomposition, members)
            minimal = restricted_width(requirement.order, members)
            # Prioritized insertion keeps the projection within one
            # chain of the true minimum on nested structures.
            assert projected <= minimal + 1
