"""Unit tests for liveness analysis."""

from repro.analysis.liveness import (
    block_live_sets,
    block_use_def,
    linear_live_before,
    max_linear_pressure,
)
from repro.ir.parser import parse_program, parse_trace


class TestUseDef:
    def test_simple(self):
        insts = parse_trace("a = x + 1\nb = a + y\nstore [z], b")
        uses, defs = block_use_def(insts)
        assert uses == {"x", "y"}
        assert defs == {"a", "b"}

    def test_use_after_def_not_upward_exposed(self):
        insts = parse_trace("a = 1\nb = a + 1")
        uses, _ = block_use_def(insts)
        assert uses == set()


class TestBlockLiveness:
    def test_diamond(self):
        prog = parse_program(
            """
            L0:
              v = load [a]
              c = v < 10
              if c goto L2
            L1:
              store [z], v
              halt
            L2:
              w = v * 2
              store [z], w
              halt
            """
        )
        live_in, live_out = block_live_sets(prog)
        assert "v" in live_in["L1"]
        assert "v" in live_in["L2"]
        assert "v" in live_out["L0"]
        assert live_out["L1"] == frozenset()

    def test_loop_carried_value(self):
        prog = parse_program(
            """
            L0:
              i = 0
            Lloop:
              i = i + 1
              c = i < 5
              if c goto Lloop
            Ldone:
              store [z], i
              halt
            """
        )
        live_in, live_out = block_live_sets(prog)
        assert "i" in live_in["Lloop"]
        assert "i" in live_out["Lloop"]


class TestLinearLiveness:
    def test_live_before_each_point(self):
        insts = parse_trace("a = 1\nb = a + 1\nstore [z], b")
        before = linear_live_before(insts)
        assert before[0] == frozenset()
        assert before[1] == frozenset({"a"})
        assert before[2] == frozenset({"b"})

    def test_live_out_extends_range(self):
        insts = parse_trace("a = 1\nb = 2")
        before = linear_live_before(insts, live_out=frozenset({"a"}))
        assert "a" in before[1]

    def test_max_pressure(self):
        insts = parse_trace(
            "a = 1\nb = 2\nc = 3\nd = a + b\ne = d + c\nstore [z], e"
        )
        assert max_linear_pressure(insts) == 3

    def test_pressure_counts_live_out(self):
        insts = parse_trace("a = 1")
        assert max_linear_pressure(insts, live_out=frozenset({"a"})) == 1

    def test_empty_sequence(self):
        assert max_linear_pressure([], live_out=frozenset({"a", "b"})) == 2
