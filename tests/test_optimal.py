"""Tests for the exact scheduling oracles, and heuristics-vs-optimal."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.measure import measure_registers, sound_register_width
from repro.graph.dag import DependenceDAG
from repro.machine.model import FUClass, MachineModel
from repro.pipeline import compile_trace
from repro.scheduling.optimal import (
    OptimalSearchError,
    minimum_register_schedule,
    optimal_schedule_length,
)
from repro.workloads.random_dags import random_layered_trace


class TestOptimalLength:
    def test_fig2_critical_path_bound(self, fig2_dag, big_machine):
        # With unlimited resources the optimum is the critical path.
        machine = MachineModel.homogeneous(16, 64)
        assert optimal_schedule_length(fig2_dag, machine) == 6

    def test_fig2_known_values(self, fig2_dag):
        assert optimal_schedule_length(
            fig2_dag, MachineModel.homogeneous(2, 4)
        ) == 8
        assert optimal_schedule_length(
            fig2_dag, MachineModel.homogeneous(3, 8)
        ) == 7

    def test_infeasible_register_file(self, fig2_dag):
        # A 1-wide machine needs 4 registers for Figure 2 without spills.
        assert optimal_schedule_length(
            fig2_dag, MachineModel.homogeneous(1, 3)
        ) is None

    def test_register_limit_can_cost_cycles(self, fig2_dag):
        free = optimal_schedule_length(
            fig2_dag, MachineModel.homogeneous(4, 64)
        )
        tight = optimal_schedule_length(
            fig2_dag, MachineModel.homogeneous(4, 4)
        )
        assert tight >= free

    def test_too_many_ops_rejected(self):
        trace = random_layered_trace(n_ops=30, width=4, seed=0)
        dag = DependenceDAG.from_trace(trace)
        with pytest.raises(OptimalSearchError):
            optimal_schedule_length(dag, MachineModel.homogeneous(2, 8))

    def test_latency_machines_rejected(self, fig2_dag):
        machine = MachineModel("lat", (FUClass("any", 2, 2),), {"gpr": 8})
        with pytest.raises(OptimalSearchError):
            optimal_schedule_length(fig2_dag, machine)


class TestMinimumRegisters:
    def test_fig2_values(self, fig2_dag):
        # Wide machines can swap dying registers atomically: 3 suffice;
        # a 1-wide (sequential) machine needs 4.
        assert minimum_register_schedule(fig2_dag) == 3
        assert minimum_register_schedule(
            fig2_dag, MachineModel.homogeneous(1, 1)
        ) == 4

    def test_best_case_below_worst_case(self, fig2_dag, machine44):
        worst = measure_registers(fig2_dag, machine44).required
        best = minimum_register_schedule(fig2_dag)
        assert best <= worst

    def test_serial_chain_needs_two(self):
        from repro.ir.parser import parse_trace

        dag = DependenceDAG.from_trace(
            parse_trace("a = load [m]\nb = a + 1\nc = b + 1\nstore [z], c")
        )
        # One live value plus the def being produced each step.
        assert minimum_register_schedule(dag) <= 2


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**30), st.integers(4, 10))
def test_property_heuristics_never_beat_optimal(seed, n_ops):
    """No compiled schedule finishes in fewer cycles than the exact
    optimum for its machine (with spill-free feasibility)."""
    trace = random_layered_trace(n_ops=n_ops, width=3, seed=seed, n_inputs=2)
    machine = MachineModel.homogeneous(2, 6)
    dag = DependenceDAG.from_trace(trace)
    if len(dag.op_nodes()) > 15:
        return  # beyond the exact-search cap
    optimum = optimal_schedule_length(dag, machine)
    if optimum is None:
        return
    for method in ("ursa", "prepass", "goodman-hsu"):
        result = compile_trace(trace, machine, method=method, seed=seed)
        assert result.stats.cycles >= optimum


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**30), st.integers(4, 10))
def test_property_register_bounds_ordering(seed, n_ops):
    """Both the heuristic measure and the true best case sit under the
    sound bound.

    Note the heuristic (Kill-based) measure and the best-case minimum
    are NOT ordered: Theorem 2 leakage can push the heuristic measure
    below even the best case (observed; see EXPERIMENTS.md).
    """
    trace = random_layered_trace(n_ops=n_ops, width=3, seed=seed, n_inputs=2)
    dag = DependenceDAG.from_trace(trace)
    if len(dag.op_nodes()) > 15:
        return  # beyond the exact-search cap
    wide = MachineModel.homogeneous(64, 512)
    best = minimum_register_schedule(dag)
    worst = measure_registers(dag, wide).required
    sound = sound_register_width(dag, wide)
    assert worst <= sound
    assert best <= sound
