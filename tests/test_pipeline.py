"""End-to-end pipeline tests: every method, verified compilation."""

import pytest

from repro.ir.parser import parse_program, parse_trace
from repro.ir.trace import main_trace
from repro.machine.model import MachineModel
from repro.pipeline import (
    METHODS,
    PipelineError,
    build_dag,
    compare_methods,
    compile_trace,
    synthesize_memory,
)
from repro.workloads.kernels import kernel


class TestCompileTrace:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_method_verifies_fig2(self, fig2_trace, method):
        machine = MachineModel.homogeneous(4, 6)
        result = compile_trace(fig2_trace, machine, method=method)
        assert result.verified
        assert result.stats.cycles > 0

    @pytest.mark.parametrize("method", ["ursa", "prepass", "postpass", "goodman-hsu"])
    @pytest.mark.parametrize("n_fus,n_regs", [(2, 4), (4, 8)])
    def test_methods_on_kernels(self, method, n_fus, n_regs):
        machine = MachineModel.homogeneous(n_fus, n_regs)
        result = compile_trace(kernel("saxpy"), machine, method=method)
        assert result.verified

    def test_unknown_method_rejected(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 6)
        with pytest.raises(PipelineError):
            compile_trace(fig2_trace, machine, method="magic")

    def test_source_string_input(self):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(
            "v = load [a]\nw = v * 3\nstore [z], w", machine
        )
        assert result.verified

    def test_explicit_memory(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 6)
        # v=10: B=20, C=30, D=15, E=50, F=600, G=30, H=5, I=0, J=35, K=35.
        result = compile_trace(
            fig2_trace, machine, memory={("v", 0): 10}
        )
        assert result.simulation.stores_to("z") == {0: 35}

    def test_verify_false_skips_simulation(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 6)
        result = compile_trace(fig2_trace, machine, verify=False)
        assert result.simulation is None
        assert result.verified is None

    def test_ursa_attaches_allocation(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 3)
        result = compile_trace(fig2_trace, machine, method="ursa")
        assert result.allocation is not None
        assert result.allocation.records

    def test_baselines_have_no_allocation(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 6)
        result = compile_trace(fig2_trace, machine, method="prepass")
        assert result.allocation is None


class TestCompareMethods:
    def test_shared_dag_consistent_results(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 6)
        results = compare_methods(fig2_trace, machine)
        assert set(results) == {"ursa", "prepass", "postpass", "goodman-hsu"}
        assert all(r.verified for r in results.values())

    def test_stats_rows_renderable(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 6)
        results = compare_methods(fig2_trace, machine, methods=("ursa", "naive"))
        for result in results.values():
            row = result.stats.row()
            assert row[0] in ("ursa", "naive")


class TestTraceInput:
    def test_compile_program_trace(self):
        program = parse_program(
            """
            L0:
              v = load [a]
              c = v < 100
              if c goto L2
            L1:
              store [z], 0
              halt
            L2:
              w = v * 2
              store [z], w
              halt
            """
        )
        program.set_edge_weight("L0", "L2", 10.0)
        trace = main_trace(program)
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(trace, machine, method="ursa")
        assert result.verified

    def test_side_exit_pins_live_values(self):
        program = parse_program(
            """
            L0:
              v = load [a]
              u = v + 7
              c = v < 100
              if c goto L2
            L1:
              store [z], u
              halt
            L2:
              store [z], v
              halt
            """
        )
        program.set_edge_weight("L0", "L2", 10.0)
        trace = main_trace(program)
        dag = build_dag(trace)
        cbr = next(
            uid for uid in dag.op_nodes()
            if dag.instruction(uid).op.value == "cbr"
        )
        # u is live into off-trace L1, so its definition precedes the CBR.
        u_def = dag.value_defs["u"]
        assert dag.reaches(u_def, cbr)


class TestSynthesizeMemory:
    def test_covers_every_load(self, fig2_dag):
        memory = synthesize_memory(fig2_dag)
        assert ("v", 0) in memory

    def test_deterministic(self, fig2_dag):
        assert synthesize_memory(fig2_dag, 3) == synthesize_memory(fig2_dag, 3)

    def test_seed_changes_values(self, fig2_dag):
        assert synthesize_memory(fig2_dag, 1) != synthesize_memory(fig2_dag, 2)

    def test_values_nonzero(self, fig2_dag):
        assert all(v >= 2 for v in synthesize_memory(fig2_dag).values())
