"""Edge-case coverage for containers, printers and small utilities."""

import pytest

from repro.graph.dag import DependenceDAG
from repro.ir.block import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_program, parse_trace
from repro.ir.printer import format_program, format_table, format_trace
from repro.ir.program import IRError, Program, straightline_program
from repro.machine.model import MachineModel
from repro.scheduling.priorities import (
    latency_weighted_height,
    source_order_priority,
)


class TestProgramContainer:
    def test_straightline_program(self):
        insts = parse_trace("a = 1\nstore [z], a")
        program = straightline_program(insts)
        assert program.entry.label == "L0"
        assert len(program.entry) == 2

    def test_duplicate_block_rejected(self):
        program = Program()
        program.add_block(BasicBlock("L0"))
        with pytest.raises(IRError):
            program.add_block(BasicBlock("L0"))

    def test_unknown_block_lookup(self):
        program = straightline_program(parse_trace("a = 1"))
        with pytest.raises(KeyError):
            program.block("Lmissing")

    def test_fallthrough_of_last_block_is_none(self):
        program = straightline_program(parse_trace("a = 1"))
        assert program.fallthrough_label("L0") is None

    def test_empty_program_entry_raises(self):
        with pytest.raises(IRError):
            Program().entry

    def test_strict_validation_rejects_external_targets(self):
        program = parse_program("L0:\nc = 1\nif c goto Lout")
        with pytest.raises(IRError):
            program.validate(allow_external_targets=False)

    def test_all_instructions_iterates_blocks(self):
        program = parse_program("L0:\na = 1\nbr L1\nL1:\nstore [z], a")
        assert len(list(program.all_instructions())) == 3

    def test_block_str_contains_label(self):
        program = parse_program("Lfoo:\nhalt")
        assert "Lfoo:" in str(program)


class TestPrinters:
    def test_format_trace_unnumbered(self):
        insts = parse_trace("a = 1")
        assert format_trace(insts, numbered=False).strip() == "a = 1"

    def test_format_trace_with_uids(self):
        insts = parse_trace("a = 1")
        assert f"uid={insts[0].uid}" in format_trace(insts, show_uids=True)

    def test_format_program_roundtrip(self):
        program = parse_program("L0:\na = 1\nhalt")
        text = format_program(program)
        assert "L0:" in text and "halt" in text

    def test_format_table_empty_rows(self):
        text = format_table(["h1", "h2"], [])
        assert "h1" in text

    def test_dag_str_rendering(self, fig2_dag):
        text = str(fig2_dag)
        assert "DAG with 12 ops" in text


class TestPriorities:
    def test_source_order_priority_descends(self, fig2_dag):
        priority = source_order_priority(fig2_dag)
        order = fig2_dag.topological_order()
        values = [priority[uid] for uid in order]
        assert values == sorted(values, reverse=True)

    def test_height_respects_latency(self, fig2_dag):
        machine = MachineModel.classed(
            alu=2, mul=2, mem=2, branch=1, latencies={"mul": 3}
        )
        unit = latency_weighted_height(fig2_dag)
        weighted = latency_weighted_height(fig2_dag, machine)
        # Latency-weighted heights dominate unit heights everywhere.
        for uid in fig2_dag.op_nodes():
            assert weighted[uid] >= unit[uid]

    def test_entry_has_max_height(self, fig2_dag):
        height = latency_weighted_height(fig2_dag)
        assert height[fig2_dag.entry] == max(height.values())


class TestDagEdgeCases:
    def test_empty_trace_dag(self):
        dag = DependenceDAG.from_trace([])
        assert dag.op_nodes() == []
        assert dag.critical_path_length() == 0

    def test_single_instruction(self):
        dag = DependenceDAG.from_trace(parse_trace("a = 1"))
        assert len(dag.op_nodes()) == 1
        assert dag.critical_path_length() == 1

    def test_branch_only_trace(self):
        dag = DependenceDAG.from_trace(parse_trace("c = 1\nif c goto Lx"))
        cbr = [u for u in dag.op_nodes() if dag.instruction(u).op is Opcode.CBR]
        assert len(cbr) == 1

    def test_would_cycle(self, fig2_dag, fig2_uid_of):
        assert fig2_dag.would_cycle(fig2_uid_of["K"], fig2_uid_of["A"])
        assert not fig2_dag.would_cycle(fig2_uid_of["A"], fig2_uid_of["K"])

    def test_replace_instruction_uid_guard(self, fig2_dag, fig2_uid_of):
        inst = Instruction(Opcode.NOP)
        with pytest.raises(ValueError):
            fig2_dag.replace_instruction(fig2_uid_of["A"], inst)

    def test_data_edges_listing(self, fig2_dag):
        edges = fig2_dag.data_edges()
        values = {value for _, _, value in edges}
        assert "A" in values and "K" in values
