"""CLI coverage for ``repro verify`` and ``repro compile --verify``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.verify import REPORT_SCHEMA_VERSION, RULES, VerifyReport


def test_verify_kernel_text(capsys):
    assert main(["verify", "--kernel", "figure2", "--fus", "2", "--regs", "4"]) == 0
    out = capsys.readouterr().out
    assert "error(s)" in out


def test_verify_kernel_json_schema(capsys):
    code = main(
        ["verify", "--kernel", "figure2", "--fus", "2", "--regs", "4",
         "--format", "json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == REPORT_SCHEMA_VERSION
    assert payload["ok"] is True
    assert set(payload["counts"]) == {"error", "warning", "info"}
    # The JSON output round-trips through the report API.
    report = VerifyReport.from_dict(payload)
    assert report.ok


def test_verify_source_file(tmp_path, capsys):
    src = tmp_path / "t.ursa"
    src.write_text("a = load [x]\nb = a + 1\nstore [y], b\n")
    assert main(["verify", str(src)]) == 0
    assert "0 error(s)" in capsys.readouterr().out


def test_verify_exit_code_on_errors(monkeypatch, capsys):
    # Rule detection is covered by test_verify_rules; here only the CLI
    # contract (exit 1, rendered rule id) matters.
    broken = VerifyReport(artifact="rigged")
    broken.add(RULES["dag.cycle"].diag("rigged failure", location="n1"))

    import repro.verify

    monkeypatch.setattr(
        repro.verify, "verify_source", lambda *a, **k: broken
    )
    assert main(["verify", "--kernel", "figure2"]) == 1
    out = capsys.readouterr().out
    assert "dag.cycle" in out


def test_verify_no_lint_suppresses_warnings(tmp_path, capsys):
    src = tmp_path / "dead.ursa"
    # 'b' is computed but never stored: lint.unused-def material.
    src.write_text("a = load [x]\nb = a + 1\nstore [y], a\n")
    assert main(["verify", str(src)]) == 0
    with_lint = capsys.readouterr().out
    assert "lint.unused-def" in with_lint

    assert main(["verify", str(src), "--no-lint"]) == 0
    without = capsys.readouterr().out
    assert "lint.unused-def" not in without


def test_verify_method_flag(capsys):
    for method in ("prepass", "goodman-hsu"):
        assert main(["verify", "--kernel", "figure2", "--method", method]) == 0


def test_compile_verify_flag(capsys):
    code = main(
        ["compile", "--kernel", "figure2", "--fus", "2", "--regs", "4",
         "--verify"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_compile_verify_each_flag(capsys):
    code = main(
        ["compile", "--kernel", "figure2", "--fus", "2", "--regs", "4",
         "--verify-each"]
    )
    assert code == 0


def test_verify_profile_shows_verifier_spans(capsys):
    code = main(
        ["verify", "--kernel", "figure2", "--fus", "2", "--regs", "4",
         "--profile"]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "verify.dag" in err
    assert "verify.schedule" in err
