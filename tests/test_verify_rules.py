"""Tests for the ``repro.verify`` rule packs.

For every rule there is a deliberately-broken artifact asserting the
exact rule id fires, and for every pack a clean-pipeline test asserting
zero error-severity diagnostics over all ``METHODS``.  Report API
(render/JSON round trip) and the registry catalogue are covered at the
end.
"""

from __future__ import annotations

import re

import pytest

from repro.core.allocator import (
    AllocationResult,
    Policy,
    TransformationRecord,
    URSAAllocator,
)
from repro.core.measure import measure_all
from repro.graph.dag import DependenceDAG, EdgeKind
from repro.graph.hammock import Hammock, HammockAnalysis
from repro.ir.instructions import Addr
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_trace
from repro.machine.model import FUClass, MachineModel
from repro.machine.vliw import RegRef
from repro.pipeline import METHODS, compile_trace
from repro.verify import (
    RULES,
    Diagnostic,
    Severity,
    VerifyError,
    VerifyReport,
    lint_dag,
    register,
    verify_allocation,
    verify_allocation_step,
    verify_compilation,
    verify_dag,
    verify_dag_state,
    verify_schedule,
    verify_source,
)
from repro.workloads.kernels import kernel

TRACE = """
a = load [x]
b = load [x+4]
c = a * b
d = a + b
e = c - d
store [y], e
"""


def make_dag(text: str = TRACE, live_out=()) -> DependenceDAG:
    return DependenceDAG.from_trace(parse_trace(text), live_out=live_out)


def uid_of(dag: DependenceDAG, name: str) -> int:
    return dag.value_defs[name]


def fired(report) -> set:
    return set(report.rules_fired())


def error_rules(report) -> set:
    return {d.rule for d in report.errors()}


# ======================================================================
# dag.* pack
# ======================================================================
class TestDagRules:
    def test_clean(self):
        report = verify_dag(make_dag(), MachineModel.homogeneous(2, 8))
        assert report.ok and not report.diagnostics

    def test_cycle(self):
        dag = make_dag()
        dag.graph.add_edge(
            uid_of(dag, "e"), uid_of(dag, "c"), kind=EdgeKind.SEQ, reason="bad"
        )
        dag._invalidate()
        assert "dag.cycle" in error_rules(verify_dag(dag))

    def test_self_edge(self):
        dag = make_dag()
        dag.graph.add_edge(
            uid_of(dag, "c"), uid_of(dag, "c"), kind=EdgeKind.SEQ, reason="bad"
        )
        dag._invalidate()
        assert "dag.self-edge" in error_rules(verify_dag(dag))

    def test_uid_mismatch(self):
        dag = make_dag()
        uid = uid_of(dag, "c")
        dag.graph.nodes[uid]["inst"] = dag.instruction(uid).fresh_copy()
        assert "dag.uid-mismatch" in error_rules(verify_dag(dag))

    def test_entry_exit(self):
        dag = make_dag()
        dag.graph.remove_edge(dag.entry, uid_of(dag, "a"))
        dag._invalidate()
        assert "dag.entry-exit" in error_rules(verify_dag(dag))

    def test_def_before_use(self):
        dag = make_dag()
        del dag.value_defs["a"]
        assert "dag.def-before-use" in error_rules(verify_dag(dag))

    def test_missing_data_edge(self):
        dag = make_dag()
        dag.graph.remove_edge(uid_of(dag, "a"), uid_of(dag, "c"))
        dag._invalidate()
        assert "dag.missing-data-edge" in error_rules(verify_dag(dag))

    def test_dangling_data_edge(self):
        dag = make_dag()
        dag.graph.add_edge(
            uid_of(dag, "c"), uid_of(dag, "d"), kind=EdgeKind.DATA, value="a"
        )
        dag._invalidate()
        assert "dag.dangling-data-edge" in error_rules(verify_dag(dag))

    def test_value_def(self):
        dag = make_dag()
        dag.value_defs["c"] = uid_of(dag, "d")
        assert "dag.value-def" in error_rules(verify_dag(dag))

    def test_value_use_stale(self):
        dag = make_dag()
        dag.value_uses["a"].append(uid_of(dag, "e"))
        assert "dag.value-use" in error_rules(verify_dag(dag))

    def test_duplicate_use(self):
        dag = make_dag()
        dag.value_uses["a"].append(uid_of(dag, "c"))
        assert "dag.duplicate-use" in error_rules(verify_dag(dag))

    def test_hammock(self):
        dag = make_dag()
        store_uid = dag.value_uses["e"][0]
        dag.graph.remove_edge(store_uid, dag.exit)
        dag._invalidate()
        assert "dag.hammock" in error_rules(verify_dag(dag))

    def test_hammock_structure(self, monkeypatch):
        dag = make_dag()
        bogus = Hammock(
            entry=uid_of(dag, "c"),
            exit=uid_of(dag, "e"),
            nodes=frozenset(
                {uid_of(dag, "c"), uid_of(dag, "e"), uid_of(dag, "a")}
            ),
        )

        class Rigged(HammockAnalysis):
            def hammocks(self):
                return [bogus]

        monkeypatch.setattr(
            "repro.verify.dag_rules.HammockAnalysis", Rigged
        )
        assert "dag.hammock-structure" in error_rules(verify_dag(dag))

    def test_unknown_op(self):
        machine = MachineModel(
            "add-only",
            (FUClass("alu", 2, ops=frozenset({Opcode.ADD, Opcode.LOAD,
                                              Opcode.STORE, Opcode.SUB})),),
            {"gpr": 8},
        )
        report = verify_dag(make_dag(), machine)  # trace contains MUL
        assert "dag.unknown-op" in error_rules(report)


# ======================================================================
# alloc.* pack
# ======================================================================
def fake_allocation(dag, machine, requirements, converged, records=()):
    return AllocationResult(
        dag=dag,
        machine=machine,
        policy=Policy.INTEGRATED,
        records=list(records),
        requirements=list(requirements),
        converged=converged,
        iterations=len(list(records)),
    )


class TestAllocRules:
    def test_capacity_error_when_converged(self):
        dag = make_dag()
        machine = MachineModel.homogeneous(1, 2)
        requirements = measure_all(dag, machine)
        assert any(r.is_excessive for r in requirements)
        allocation = fake_allocation(dag, machine, requirements, converged=True)
        report = verify_allocation(allocation, remeasure=False)
        assert error_rules(report) & {"alloc.fu-capacity", "alloc.reg-capacity"}
        assert "alloc.converged-flag" in error_rules(report)

    def test_capacity_warning_when_delegated(self):
        # Leftover excess handed to assignment (§2) is a warning, not
        # an invariant violation.
        dag = make_dag()
        machine = MachineModel.homogeneous(1, 2)
        requirements = measure_all(dag, machine)
        allocation = fake_allocation(dag, machine, requirements, converged=False)
        report = verify_allocation(allocation, remeasure=False)
        assert report.ok
        assert {d.rule for d in report.warnings()} & {
            "alloc.fu-capacity", "alloc.reg-capacity",
        }

    def test_converged_flag_without_excess(self):
        dag = make_dag()
        machine = MachineModel.homogeneous(4, 8)
        requirements = measure_all(dag, machine)
        assert not any(r.is_excessive for r in requirements)
        allocation = fake_allocation(dag, machine, requirements, converged=False)
        report = verify_allocation(allocation, remeasure=False)
        assert "alloc.converged-flag" in error_rules(report)

    def test_stale_measure(self):
        machine = MachineModel.homogeneous(2, 4)
        dag = DependenceDAG.from_trace(kernel("figure2"))
        real = URSAAllocator(machine).run(dag)
        assert real.records, "figure2 should need transformations"
        stale = fake_allocation(
            dag, machine, real.requirements, converged=real.converged
        )
        report = verify_allocation(stale, remeasure=True)
        assert "alloc.stale-measure" in error_rules(report)

    def test_orphaned_spill_load(self):
        dag = make_dag()
        spill_uid, _, _ = dag.insert_spill(
            "c", [uid_of(dag, "e")], Addr("%t", 0)
        )
        dag.graph.remove_node(spill_uid)
        dag._invalidate()
        report = verify_allocation_step(dag, [])
        assert "alloc.spill-pairing" in error_rules(report)

    def test_spill_slot_clash(self):
        dag = make_dag()
        dag.insert_spill("c", [uid_of(dag, "e")], Addr("%t", 1))
        dag.insert_spill("d", [uid_of(dag, "e")], Addr("%t", 1))
        report = verify_allocation_step(dag, [])
        assert "alloc.spill-slot-clash" in error_rules(report)

    def test_kill_missing_entry(self):
        dag = make_dag()
        machine = MachineModel.homogeneous(2, 8)
        requirement = next(
            r for r in measure_all(dag, machine) if r.kind.value == "reg"
        )
        del requirement.kill.kill["c"]
        report = verify_allocation_step(dag, [requirement], machine)
        assert "alloc.kill-coverage" in error_rules(report)

    def test_kill_illegal_killer(self):
        dag = make_dag()
        machine = MachineModel.homogeneous(2, 8)
        requirement = next(
            r for r in measure_all(dag, machine) if r.kind.value == "reg"
        )
        # 'a' dies at c/d; its own definition is not a legal killer.
        requirement.kill.kill["a"] = uid_of(dag, "a")
        report = verify_allocation_step(dag, [requirement], machine)
        assert "alloc.kill-coverage" in error_rules(report)

    def test_record_chain(self):
        dag = make_dag()
        machine = MachineModel.homogeneous(4, 8)
        records = [
            TransformationRecord(1, "reg_seq", "x", 4, 3, 5, 5),
            TransformationRecord(1, "reg_seq", "y", 7, 0, 5, 5),
        ]
        allocation = fake_allocation(
            dag, machine, measure_all(dag, machine), True, records
        )
        report = verify_allocation(allocation, remeasure=False)
        assert "alloc.records" in error_rules(report)


# ======================================================================
# sched.* pack
# ======================================================================
def compiled(machine=None, method="ursa", live_out=()):
    machine = machine or MachineModel.homogeneous(2, 8)
    return compile_trace(
        TRACE, machine, method=method, live_out=live_out, verify=False
    )


def op_with_uid(schedule, uid):
    return next(op for op in schedule.ops if op.uid == uid)


class TestSchedRules:
    def test_clean(self):
        result = compiled()
        report = verify_schedule(
            result.schedule, dag=result.dag, machine=result.machine
        )
        assert report.ok

    def test_dependence_and_use_before_def(self):
        result = compiled()
        e_op = op_with_uid(result.schedule, uid_of(result.dag, "e"))
        c_op = op_with_uid(result.schedule, uid_of(result.dag, "c"))
        e_op.cycle = c_op.cycle  # issue before the multiply's writeback
        rules = error_rules(
            verify_schedule(result.schedule, result.dag, result.machine)
        )
        assert "sched.dependence" in rules
        assert "sched.use-before-def" in rules

    def test_unscheduled_op(self):
        result = compiled()
        uid = uid_of(result.dag, "e")
        result.schedule.ops = [
            op for op in result.schedule.ops if op.uid != uid
        ]
        rules = error_rules(
            verify_schedule(result.schedule, result.dag, result.machine)
        )
        assert "sched.unscheduled-op" in rules

    def test_fu_class_bad_index(self):
        result = compiled()
        result.schedule.ops[0].fu_index = 7
        rules = error_rules(verify_schedule(result.schedule))
        assert "sched.fu-class" in rules

    def test_fu_class_unknown(self):
        result = compiled()
        result.schedule.ops[0].fu_class = "warp"
        rules = error_rules(verify_schedule(result.schedule))
        assert "sched.fu-class" in rules

    def test_fu_overlap(self):
        result = compiled()
        a, b = result.schedule.ops[0], result.schedule.ops[-1]
        b.fu_class, b.fu_index, b.cycle = a.fu_class, a.fu_index, a.cycle
        rules = error_rules(verify_schedule(result.schedule))
        assert "sched.fu-overlap" in rules

    def test_reg_unassigned(self):
        result = compiled()
        del result.schedule.reg_assignment["c"]
        rules = error_rules(verify_schedule(result.schedule))
        assert "sched.reg-unassigned" in rules

    def test_reg_range(self):
        result = compiled()
        result.schedule.reg_assignment["c"] = RegRef(99, "gpr")
        rules = error_rules(verify_schedule(result.schedule))
        assert "sched.reg-range" in rules

    def test_reg_range_unknown_class(self):
        result = compiled()
        result.schedule.reg_assignment["c"] = RegRef(0, "vec")
        rules = error_rules(verify_schedule(result.schedule))
        assert "sched.reg-range" in rules

    def test_reg_overwrite(self):
        result = compiled()
        # a and b are both live until c/d read them: share one register.
        result.schedule.reg_assignment["b"] = result.schedule.reg_assignment["a"]
        rules = error_rules(verify_schedule(result.schedule))
        assert "sched.reg-overwrite" in rules

    def test_reg_pressure(self):
        # Four loads live at once, judged against a 2-register machine.
        wide = (
            "a = load [x]\nb = load [x+4]\nc = load [x+8]\nd = load [x+12]\n"
            "s1 = a + b\ns2 = c + d\ns3 = s1 + s2\nstore [y], s3"
        )
        result = compile_trace(
            wide, MachineModel.homogeneous(4, 8), method="ursa", verify=False
        )
        tiny = MachineModel.homogeneous(4, 2)
        rules = error_rules(verify_schedule(result.schedule, machine=tiny))
        assert "sched.reg-pressure" in rules

    def test_live_out(self):
        result = compiled(live_out=("e",))
        held = result.schedule.live_out_regs["e"]
        result.schedule.live_out_regs["e"] = RegRef(
            (held.index + 1) % 8, held.cls
        )
        rules = error_rules(verify_schedule(result.schedule))
        assert "sched.live-out" in rules


# ======================================================================
# lint.* pack
# ======================================================================
class TestLintRules:
    def test_unused_def(self):
        dag = make_dag("a = load [x]\nb = a + 1\nstore [y], a")
        report = lint_dag(dag)
        assert "lint.unused-def" in fired(report)
        assert report.ok  # warnings do not fail verification

    def test_dead_spill_slot(self):
        dag = make_dag()
        _, reload_uid, _ = dag.insert_spill(
            "c", [uid_of(dag, "e")], Addr("%t", 0)
        )
        dag.graph.remove_node(reload_uid)
        dag._invalidate()
        assert "lint.dead-spill-slot" in fired(lint_dag(dag))

    def test_constant_branch(self):
        dag = make_dag(
            "c = 7\nx = load [a]\nif c goto OUT\nstore [b], x\nhalt"
        )
        assert "lint.constant-branch" in fired(lint_dag(dag))

    def test_zero_latency_edge(self):
        class ZeroLatency:
            @staticmethod
            def latency_of(inst):
                return 0

        dag = make_dag()
        assert "lint.zero-latency-edge" in fired(lint_dag(dag, ZeroLatency()))

    def test_redundant_seq_edge(self):
        dag = make_dag(
            "store [z], a\nstore [z], b\nstore [z], c"
        )
        assert "lint.redundant-seq-edge" in fired(lint_dag(dag))
        assert lint_dag(dag).ok  # INFO severity

    def test_clean_trace_has_no_warnings(self):
        report = lint_dag(make_dag(), MachineModel.homogeneous(2, 8))
        assert not report.diagnostics


# ======================================================================
# clean pipeline over all METHODS + verify_each
# ======================================================================
MACHINES = [
    MachineModel.homogeneous(2, 4),
    MachineModel.classed(alu=2, mul=1, mem=1, branch=1, alu_regs=6),
]


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("kernel_name", ["figure2", "dot-product"])
def test_clean_pipeline_no_error_diagnostics(kernel_name, method, machine):
    result = compile_trace(kernel(kernel_name), machine, method=method)
    report = verify_compilation(result, remeasure=True)
    assert not report.errors(), report.render()


def test_verify_each_clean_on_kernels():
    machine = MachineModel.homogeneous(2, 4)
    for name in ("figure2", "estrin"):
        allocator = URSAAllocator(machine, verify_each=True)
        allocation = allocator.run(DependenceDAG.from_trace(kernel(name)))
        assert allocation.iterations >= 0  # ran without VerifyError


def test_verify_each_raises_on_corrupt_step(monkeypatch):
    # Sabotage the step committer so every "transform" leaves a broken
    # DAG behind; verify_each must catch it at that exact commit.
    machine = MachineModel.homogeneous(2, 4)
    allocator = URSAAllocator(machine, verify_each=True)
    real_step = allocator._step

    def bad_step(dag, requirements, iteration):
        out = real_step(dag, requirements, iteration)
        if out is None:
            return None
        new_dag, new_reqs, record, txn = out
        victim = next(iter(new_dag.value_uses))
        new_dag.value_uses[victim].append(new_dag.value_uses[victim][0])
        return new_dag, new_reqs, record, txn

    monkeypatch.setattr(allocator, "_step", bad_step)
    with pytest.raises(VerifyError) as err:
        allocator.run(DependenceDAG.from_trace(kernel("figure2")))
    assert "dag.duplicate-use" in str(err.value)


def test_pipeline_static_checks_gate(monkeypatch):
    # A scheduler emitting an over-busy FU must be caught statically
    # (PipelineError naming the rule), before any simulation runs.
    from repro.scheduling.list_scheduler import ListScheduler

    real_run = ListScheduler.run

    def bad_run(self):
        schedule = real_run(self)
        if len(schedule.ops) >= 2:
            a, b = schedule.ops[0], schedule.ops[1]
            b.fu_class, b.fu_index, b.cycle = a.fu_class, a.fu_index, a.cycle
        return schedule

    monkeypatch.setattr(ListScheduler, "run", bad_run)
    from repro.pipeline import PipelineError

    with pytest.raises(PipelineError) as err:
        compile_trace(TRACE, MachineModel.homogeneous(2, 8), method="ursa")
    assert "sched.fu-overlap" in str(err.value)


def test_verify_source_clean():
    report = verify_source(
        kernel("figure2"), MachineModel.homogeneous(4, 8), method="ursa"
    )
    assert report.ok
    assert set(report.packs) == {"dag", "lint", "alloc", "sched"}


def test_verify_dag_state_flags_corruption():
    dag = make_dag()
    dag.value_uses["a"].append(uid_of(dag, "c"))
    report = verify_dag_state(dag, (), None, artifact="corrupted")
    assert "dag.duplicate-use" in error_rules(report)
    with pytest.raises(VerifyError):
        report.raise_if_errors()


# ======================================================================
# registry + report API
# ======================================================================
class TestCatalogueAndReport:
    def test_rule_ids_well_formed(self):
        assert RULES, "packs must register rules at import"
        for rule_id, info in RULES.items():
            assert re.fullmatch(r"(dag|alloc|sched|lint)\.[a-z][a-z-]*", rule_id)
            assert info.rule_id == rule_id
            assert info.pack == rule_id.split(".")[0]
            assert isinstance(info.severity, Severity)
            assert info.summary

    def test_every_pack_registers_rules(self):
        packs = {info.pack for info in RULES.values()}
        assert packs == {"dag", "alloc", "sched", "lint"}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register("dag.cycle", Severity.ERROR, "again")

    def test_report_render_and_counts(self):
        report = VerifyReport(artifact="unit")
        report.add(RULES["dag.cycle"].diag("boom", location="n1"))
        report.add(RULES["lint.unused-def"].diag("meh"))
        assert report.counts() == {"error": 1, "warning": 1, "info": 0}
        text = report.render()
        assert "dag.cycle" in text and "ERROR" in text and "@ n1" in text
        assert not report.ok

    def test_severity_override(self):
        diag = RULES["alloc.fu-capacity"].diag("d", severity=Severity.WARNING)
        assert diag.severity is Severity.WARNING

    def test_json_round_trip(self):
        report = VerifyReport(artifact="rt", packs=["dag"])
        report.add(
            RULES["dag.cycle"].diag("boom", location="n1", extra=3)
        )
        clone = VerifyReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()
        assert clone.diagnostics[0].data == {"extra": 3}

    def test_json_schema_guard(self):
        with pytest.raises(ValueError):
            VerifyReport.from_dict({"schema": 99, "diagnostics": []})

    def test_verify_error_message_truncates(self):
        report = VerifyReport(artifact="many")
        for i in range(6):
            report.add(RULES["dag.cycle"].diag(f"bad {i}"))
        err = VerifyError(report, context="ctx")
        assert "6 invariant violation(s)" in str(err)
        assert "(2 more)" in str(err)

    def test_docs_catalogue_in_sync(self):
        from pathlib import Path

        doc = Path(__file__).resolve().parent.parent / "docs" / "verification.md"
        text = doc.read_text()
        for rule_id in RULES:
            assert f"`{rule_id}`" in text, (
                f"{rule_id} missing from docs/verification.md"
            )
        documented = set(
            re.findall(r"`((?:dag|alloc|sched|lint)\.[a-z-]+)`", text)
        )
        assert documented <= set(RULES), (
            f"docs mention unknown rules: {documented - set(RULES)}"
        )

    def test_diagnostic_from_dict_defaults(self):
        diag = Diagnostic.from_dict(
            {"rule": "dag.cycle", "severity": "error", "message": "m"}
        )
        assert diag.location is None and diag.data == {}
