"""Tests for the assignment backends (bind-at-issue vs color)."""

import pytest

from repro.core.allocator import allocate
from repro.core.assignment import (
    AssignmentOverflow,
    assign,
    color_assign,
)
from repro.core.codegen import lower_schedule
from repro.graph.dag import DependenceDAG
from repro.ir.interp import run_trace
from repro.machine.model import MachineModel
from repro.machine.simulator import VLIWSimulator
from repro.pipeline import compile_trace, synthesize_memory
from repro.workloads.kernels import kernel
from repro.workloads.random_dags import random_layered_trace


def verify_schedule(dag, machine, schedule, seed=0):
    program = lower_schedule(schedule)
    memory = synthesize_memory(dag, seed)
    expected = run_trace(dag.linearize(), memory)
    actual = VLIWSimulator(machine, memory).run(program)
    strip = lambda mem: {c: v for c, v in mem.items() if not c[0].startswith("%")}
    assert strip(actual.memory) == strip(expected.memory)
    return program


class TestColorBackend:
    def test_colors_allocated_fig2(self, fig2_trace):
        machine = MachineModel.homogeneous(2, 3)
        dag = DependenceDAG.from_trace(fig2_trace)
        allocation = allocate(dag, machine)
        schedule = color_assign(allocation.dag, machine)
        program = verify_schedule(allocation.dag, machine, schedule)
        assert program.max_registers_used()["gpr"] <= 3
        assert schedule.spill_count == 0  # coloring never spills

    def test_overflow_without_allocation(self, fig2_trace):
        # The untransformed Figure 2 DAG needs 5 registers worst case;
        # a bad schedule on 3 registers must overflow the colorer.
        machine = MachineModel.homogeneous(4, 3)
        dag = DependenceDAG.from_trace(fig2_trace)
        with pytest.raises(AssignmentOverflow):
            color_assign(dag, machine)

    def test_assign_falls_back_to_bind(self, fig2_trace):
        machine = MachineModel.homogeneous(4, 3)
        dag = DependenceDAG.from_trace(fig2_trace)
        result = assign(dag, machine, backend="color")
        # Unallocated DAG: coloring fails, the binder takes over.
        assert result.backend == "bind"
        verify_schedule(dag, machine, result.schedule)

    def test_unknown_backend_rejected(self, fig2_dag, machine44):
        with pytest.raises(ValueError):
            assign(fig2_dag, machine44, backend="quantum")

    @pytest.mark.parametrize("seed", range(5))
    def test_color_after_allocation_random(self, seed):
        trace = random_layered_trace(n_ops=18, width=4, seed=seed)
        machine = MachineModel.homogeneous(2, 5)
        dag = DependenceDAG.from_trace(trace)
        allocation = allocate(dag, machine)
        result = assign(allocation.dag, machine, allocation, backend="color")
        verify_schedule(allocation.dag, machine, result.schedule, seed)

    def test_live_in_out_bindings(self):
        from repro.ir.parser import parse_trace

        machine = MachineModel.homogeneous(2, 4)
        dag = DependenceDAG.from_trace(
            parse_trace("b = a + 1"), live_out=["b"]
        )
        schedule = color_assign(dag, machine)
        assert "a" in schedule.live_in_regs
        assert "b" in schedule.live_out_regs


class TestPipelineBackendFlag:
    @pytest.mark.parametrize("backend", ["bind", "color"])
    def test_compile_trace_with_backend(self, backend):
        machine = MachineModel.homogeneous(2, 4)
        result = compile_trace(
            kernel("figure2"), machine, assignment=backend,
            memory={("v", 0): 6},
        )
        assert result.verified
        assert result.simulation.stores_to("z") == {0: 25}

    def test_backends_agree_semantically(self):
        machine = MachineModel.homogeneous(2, 4)
        results = {
            backend: compile_trace(
                kernel("stencil5"), machine, assignment=backend, seed=3
            )
            for backend in ("bind", "color")
        }
        assert all(r.verified for r in results.values())
