#!/usr/bin/env python3
"""Static contract lint for ``src/repro`` (stdlib-only, AST-based).

Three rules, each guarding an invariant the test suite cannot easily
see because violations only bite in another process or another run:

C001  MachineModel classifiers must be named module-level functions.
      A ``lambda`` (or a function nested inside another function)
      passed as ``reg_class_of`` cannot be pickled, which breaks the
      serve worker pool and the persistent compile cache the moment
      such a machine reaches them (see ``default_reg_class`` in
      ``src/repro/machine/model.py``).

C002  Instrumentation names must match the schema regex published in
      ``docs/observability.md`` (the ``<!-- obs-name-schema: ... -->``
      marker).  Checks every literal or f-string first argument of
      ``obs.span`` / ``obs.count`` / ``obs.peak`` / ``obs.event``;
      f-string placeholders are replaced with ``x`` before matching,
      so ``f"serve.error.{code}"`` is checked as ``serve.error.x``.

C003  Every ``TransformCandidate(kind="...")`` literal must have a
      matching ``register_contract("...", ...)`` somewhere in the
      tree.  A kind without a registered EDGES_ONLY /
      INVALIDATES_ALL contract silently falls back to the
      conservative default and defeats incremental trial measurement
      (see ``src/repro/core/transforms/base.py`` and docs/passes.md).

Usage::

    python tools/lint_contracts.py [--root DIR]

Prints ``file:line: CODE: message`` per finding and exits non-zero if
any were produced.  Wired into CI (`analyze-smoke`) and exercised by
``tests/test_analyze.py``.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
OBS_METHODS = {"span", "count", "peak", "event"}
SCHEMA_MARKER = re.compile(r"<!--\s*obs-name-schema:\s*(?P<rx>.+?)\s*-->")


class Finding:
    def __init__(self, path: Path, line: int, code: str, message: str):
        self.path = path
        self.line = line
        self.code = code
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code}: {self.message}"


def load_name_schema(root: Path) -> re.Pattern:
    """Extract the obs-name regex from docs/observability.md."""
    doc = root / "docs" / "observability.md"
    match = SCHEMA_MARKER.search(doc.read_text(encoding="utf-8"))
    if match is None:
        raise SystemExit(
            f"{doc}: missing '<!-- obs-name-schema: ... -->' marker; "
            "the instrumentation-name schema must be published there"
        )
    return re.compile(match.group("rx"))


def python_files(root: Path) -> Iterator[Path]:
    yield from sorted((root / "src" / "repro").rglob("*.py"))


# ----------------------------------------------------------------------
# C001: pickle-hostile MachineModel classifiers.
# ----------------------------------------------------------------------
def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _nested_function_names(tree: ast.Module) -> set:
    """Names of functions defined anywhere below module level."""
    nested = set()
    for outer in ast.walk(tree):
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(outer):
                if inner is outer:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(inner.name)
    return nested


def lint_classifiers(path: Path, tree: ast.Module) -> List[Finding]:
    findings: List[Finding] = []
    nested = _nested_function_names(tree)

    def classifier_args(call: ast.Call) -> Iterator[ast.expr]:
        for kw in call.keywords:
            if kw.arg == "reg_class_of":
                yield kw.value
        # MachineModel(name, fu_classes, registers, reg_class_of)
        if _call_name(call) == "MachineModel" and len(call.args) >= 4:
            yield call.args[3]

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        for value in classifier_args(node):
            if isinstance(value, ast.Lambda):
                findings.append(Finding(
                    path, value.lineno, "C001",
                    "lambda passed as MachineModel classifier "
                    "(reg_class_of); lambdas cannot be pickled, which "
                    "breaks the serve worker pool and compile cache — "
                    "use a named module-level function "
                    "(e.g. default_reg_class)",
                ))
            elif isinstance(value, ast.Name) and value.id in nested:
                findings.append(Finding(
                    path, value.lineno, "C001",
                    f"closure {value.id!r} passed as MachineModel "
                    "classifier (reg_class_of); nested functions cannot "
                    "be pickled — hoist it to module level",
                ))
    return findings


# ----------------------------------------------------------------------
# C002: instrumentation names vs the published schema.
# ----------------------------------------------------------------------
def _literal_name(node: ast.expr) -> Optional[str]:
    """A checkable rendering of an obs-name argument, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:  # FormattedValue: any substitution is one segment
                parts.append("x")
        return "".join(parts)
    return None


def lint_obs_names(
    path: Path, tree: ast.Module, schema: re.Pattern
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        is_obs_call = (
            isinstance(func, ast.Attribute)
            and func.attr in OBS_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id == "obs"
        )
        if not is_obs_call:
            continue
        name = _literal_name(node.args[0])
        if name is None:
            continue  # dynamic name; not statically checkable
        if schema.fullmatch(name) is None:
            findings.append(Finding(
                path, node.lineno, "C002",
                f"obs.{func.attr} name {name!r} does not match the "
                f"schema {schema.pattern!r} published in "
                "docs/observability.md",
            ))
    return findings


# ----------------------------------------------------------------------
# C003: transform kinds without a registered invalidation contract.
# ----------------------------------------------------------------------
def collect_registered_kinds(root: Path) -> set:
    kinds = set()
    for path in python_files(root):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node) == "register_contract"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                kinds.add(node.args[0].value)
    return kinds


def lint_transform_kinds(
    path: Path, tree: ast.Module, registered: set
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if (
            not isinstance(node, ast.Call)
            or _call_name(node) != "TransformCandidate"
        ):
            continue
        for kw in node.keywords:
            if kw.arg != "kind":
                continue
            if not (
                isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                continue  # dynamic kind; not statically checkable
            kind = kw.value.value
            if kind not in registered:
                findings.append(Finding(
                    path, node.lineno, "C003",
                    f"TransformCandidate kind {kind!r} has no "
                    "register_contract(...) registration; without an "
                    "EDGES_ONLY/INVALIDATES_ALL contract the pass "
                    "manager falls back to full invalidation",
                ))
    return findings


# ----------------------------------------------------------------------
def run(root: Path) -> List[Finding]:
    schema = load_name_schema(root)
    registered = collect_registered_kinds(root)
    findings: List[Finding] = []
    for path in python_files(root):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        rel = path.relative_to(root)
        findings.extend(lint_classifiers(rel, tree))
        findings.extend(lint_obs_names(rel, tree, schema))
        findings.extend(lint_transform_kinds(rel, tree, registered))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=REPO_ROOT,
        help="repository root (default: inferred from this file)",
    )
    args = parser.parse_args(argv)
    findings = run(args.root.resolve())
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint_contracts: {len(findings)} finding(s)")
        return 1
    print("lint_contracts: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
