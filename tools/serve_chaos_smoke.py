#!/usr/bin/env python
"""End-to-end chaos smoke for the supervised serve worker pool (CI).

Boots a real ``repro serve`` process with a 2-worker persistent pool,
then drives the PR 9 recovery story over plain HTTP:

1. compile a multi-trace program and record its per-trace
   ``signatures`` (sha256 digests of the uid-free program renderings);
2. SIGKILL one pool worker at the OS level, then fire the next request
   before the pool has noticed — the batch dispatches a shard straight
   to the corpse, exercising the mid-shard death/requeue path;
3. assert the request still completes with **bit-identical**
   signatures, and that ``/v1/stats`` shows the supervisor noticed —
   at least one worker death, then (after backoff) a restart that
   brings the pool back to full strength;
4. SIGTERM the server and assert it drains gracefully (exit code 0).

Stdlib only; run from the repo root::

    PYTHONPATH=src python tools/serve_chaos_smoke.py

Exits non-zero (with a diagnostic on stderr) on any violation.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient  # noqa: E402

PROGRAM_SRC = """\
start:
  n = 6
  i = 0
loop:
  x = load [v]
  s = x + i
  store [w], s
  i = i + 1
  c = i < n
  if c goto loop
done:
  halt
"""

MACHINE = {"fus": 2, "regs": 4}


def fail(message: str) -> "NoReturn":  # noqa: F821
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def wait_healthy(client: ServeClient, timeout_s: float = 20.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if client.health():
            return
        time.sleep(0.2)
    fail(f"server did not become healthy within {timeout_s}s")


def worker_pids(client: ServeClient) -> list:
    stats = client.stats()
    pool = stats.get("pool")
    if not pool:
        fail("/v1/stats has no pool section — server not running --workers?")
    pids = [w["pid"] for w in pool["workers"] if w["alive"] and w["pid"]]
    if len(pids) < 2:
        fail(f"expected 2 live workers, stats shows {pids}")
    return pids


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=8390)
    parser.add_argument("--boot-timeout", type=float, default=20.0)
    args = parser.parse_args()

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(args.port), "--workers", "2", "--no-cache",
            "--drain-timeout", "10",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        client = ServeClient(
            f"http://127.0.0.1:{args.port}", timeout=60.0,
            max_retries=5, backoff_base_s=0.1, backoff_cap_s=1.0,
        )
        wait_healthy(client, args.boot_timeout)

        detail = client.health_detail()
        if detail.get("status") != "ok" or not detail.get("workers"):
            fail(f"healthz not ok with workers: {detail}")

        # 1. Baseline signatures from an undisturbed compile.
        baseline = client.compile_program(
            PROGRAM_SRC, machine=MACHINE, memory={"v": 5}
        )
        if not baseline.get("verified"):
            fail(f"baseline compile did not verify: {baseline}")
        if not baseline.get("signatures"):
            fail("baseline result has no signatures field")

        pids = worker_pids(client)
        victim = pids[0]

        # 2. SIGKILL one worker, then immediately fire the next request.
        # The pool still believes the slot is alive, so the batch
        # dispatches a shard to the corpse — exactly the mid-shard
        # death path: the reaper must notice, requeue the shard on the
        # survivor, and the request must complete bit-identically.
        try:
            os.kill(victim, signal.SIGKILL)
        except ProcessLookupError:
            fail(f"worker pid {victim} vanished before the kill")
        survivor = client.compile_program(
            PROGRAM_SRC, machine=MACHINE, memory={"v": 5}
        )

        # 3a. Bit-identity across the crash.
        if survivor["signatures"] != baseline["signatures"]:
            fail(
                "signatures diverged after worker kill: "
                f"{baseline['signatures']} vs {survivor['signatures']}"
            )
        if not survivor.get("verified"):
            fail("post-kill compile did not verify")
        pool = client.stats()["pool"]
        if pool["deaths"] < 1:
            fail(f"stats shows no worker death after SIGKILL: {pool}")

        # 3b. Once the restart backoff expires, the next request must
        # bring the slot back: the supervisor restarts it on dispatch.
        time.sleep(0.5)
        after = client.compile_program(
            PROGRAM_SRC, machine=MACHINE, memory={"v": 5}
        )
        if after["signatures"] != baseline["signatures"]:
            fail("signatures diverged after worker restart")
        pool = client.stats()["pool"]
        if pool["restarts"] < 1:
            fail(f"stats shows no restart after the kill: {pool}")
        if not pool["healthy"]:
            fail(f"pool unhealthy after one kill: {pool}")
        if pool["alive"] < 2:
            fail(f"dead slot was not respawned: {pool}")
        print(
            "chaos kill absorbed: "
            f"deaths={pool['deaths']} restarts={pool['restarts']} "
            f"alive={pool['alive']}/{pool['size']}, signatures bit-identical"
        )

        # 4. Graceful drain on SIGTERM.
        server.send_signal(signal.SIGTERM)
        try:
            code = server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            fail("server did not exit within 30s of SIGTERM")
        if code != 0:
            output = server.stdout.read() if server.stdout else ""
            fail(f"server exited {code} after SIGTERM:\n{output}")
        print("graceful drain OK: server exited 0 on SIGTERM")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
