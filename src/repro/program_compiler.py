"""Whole-program compilation: every trace compiled, branches followed.

Extends the per-trace pipeline to full control-flow graphs — including
loops — with a simple, sound inter-trace convention:

* traces are split so control only ever *enters a trace at its head*
  (any label targeted by an outside branch, a loop back-edge, or a
  non-trace-predecessor fallthrough starts its own trace);
* values that cross trace boundaries travel through reserved memory
  cells (``%var:<name>``): each trace loads its live-ins on entry and
  stores the values live at each of its exits right before the exit.
  Registers are therefore a purely intra-trace resource, exactly the
  scope URSA allocates them in.

Each prepared trace is compiled with any method (URSA or a baseline)
as self-contained straight-line code; :class:`CompiledProgram` executes
the pieces on the VLIW simulator with ``follow_branches=True``, hopping
from trace to trace, and is verified against the reference interpreter
running the original program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.liveness import block_live_sets
from repro.graph.dag import DependenceDAG
from repro.ir.instructions import Addr, Instruction, Var
from repro.ir.interp import MemoryState, run_program
from repro.ir.opcodes import Opcode
from repro.ir.program import Program
from repro.ir.trace import Trace, select_traces
from repro.machine.model import MachineModel
from repro.machine.simulator import VLIWSimulator
from repro.machine.vliw import VLIWProgram
from repro.pipeline import compile_trace

#: Prefix for the memory cells that carry values across traces.
VAR_BASE_PREFIX = "%var:"


class ProgramCompileError(Exception):
    """Whole-program compilation or execution failed."""


def var_cell(name: str) -> Addr:
    """The memory home of ``name`` at trace boundaries."""
    return Addr(f"{VAR_BASE_PREFIX}{name}", 0)


# ======================================================================
# Trace formation.
# ======================================================================
def entry_safe_traces(
    program: Program,
    max_trace_blocks: Optional[int] = None,
) -> List[Trace]:
    """Fisher traces, split so every control transfer lands on a head.

    A label must head a trace when any CFG edge reaches it from a block
    that is not its immediate predecessor within the same trace (outside
    branches, loop back-edges) — otherwise the compiled code could be
    entered mid-stream.
    """
    traces = select_traces(program, max_trace_blocks=max_trace_blocks)
    cfg = program.cfg()

    forced_heads: Set[str] = {program.entry.label}
    in_trace_pred: Dict[str, Optional[str]] = {}
    for trace in traces:
        for earlier, later in zip(trace.labels, trace.labels[1:]):
            in_trace_pred[later] = earlier
        in_trace_pred.setdefault(trace.labels[0], None)
    for src, dst in cfg.edges:
        if in_trace_pred.get(dst) != src:
            forced_heads.add(dst)

    split: List[Trace] = []
    for trace in traces:
        current: List[str] = []
        for label in trace.labels:
            if label in forced_heads and current:
                split.append(Trace(program, current))
                current = []
            current.append(label)
        if current:
            split.append(Trace(program, current))
    return split


@dataclass
class PreparedTrace:
    """A trace rewritten for memory-carried boundary values."""

    head: str
    labels: List[str]
    instructions: List[Instruction]
    #: label control falls through to when no side exit fires (None = halt).
    fallthrough: Optional[str]
    live_in_names: FrozenSet[str]


def prepare_trace(program: Program, trace: Trace) -> PreparedTrace:
    """Insert boundary loads/stores and flatten the trace.

    Live-ins are loaded from their ``%var`` cells at the top; the values
    live into each side exit's target (and into the fallthrough
    continuation) are stored right before that exit, where branch
    pinning keeps them.
    """
    live_in, live_out = block_live_sets(program)
    head = trace.labels[0]
    flat = trace.flatten()

    body: List[Instruction] = []
    for name in sorted(live_in[head]):
        body.append(Instruction(Opcode.LOAD, dest=name, addr=var_cell(name)))

    halted = False
    for inst in flat:
        if inst.op is Opcode.CBR:
            target_live = live_in.get(inst.target, frozenset())
            for name in sorted(target_live):
                body.append(
                    Instruction(
                        Opcode.STORE, srcs=(Var(name),), addr=var_cell(name)
                    )
                )
            body.append(inst)
        elif inst.op is Opcode.HALT:
            halted = True
            break
        else:
            body.append(inst)

    last_label = trace.labels[-1]
    last_block = program.block(last_label)
    fallthrough: Optional[str] = None
    if not halted:
        terminator = last_block.terminator
        if terminator is not None and terminator.op is Opcode.HALT:
            pass
        elif terminator is not None and terminator.op is Opcode.BR:
            fallthrough = terminator.target
        else:
            fallthrough = program.fallthrough_label(last_label)
    if fallthrough is not None:
        if fallthrough not in {b.label for b in program.blocks}:
            fallthrough = None  # external continuation: treat as halt
    if fallthrough is not None:
        for name in sorted(live_in.get(fallthrough, frozenset())):
            body.append(
                Instruction(Opcode.STORE, srcs=(Var(name),), addr=var_cell(name))
            )

    return PreparedTrace(
        head=head,
        labels=list(trace.labels),
        instructions=body,
        fallthrough=fallthrough,
        live_in_names=frozenset(live_in[head]),
    )


# ======================================================================
# Compilation.
# ======================================================================
@dataclass
class CompiledTrace:
    prepared: PreparedTrace
    program: VLIWProgram
    cycles_estimate: int


@dataclass
class ProgramRunResult:
    """Outcome of executing a compiled program on the simulator."""

    memory: MemoryState
    cycles: int
    trace_path: List[str]

    def stores_to(self, base: str) -> Dict[int, int]:
        return {
            offset: value
            for (cell_base, offset), value in self.memory.items()
            if cell_base == base
        }

    def user_memory(self) -> MemoryState:
        return {
            cell: value
            for cell, value in self.memory.items()
            if not cell[0].startswith("%")
        }


@dataclass
class CompiledProgram:
    """A whole program compiled trace-by-trace for one machine."""

    machine: MachineModel
    source: Program
    entry: str
    traces: Dict[str, CompiledTrace]
    method: str
    #: persistent-cache outcome for this compile (0/0 when caching off).
    cache_hits: int = 0
    cache_misses: int = 0

    MAX_TRACE_DISPATCHES = 1_000_000

    def run(
        self,
        memory: Optional[MemoryState] = None,
        max_dispatches: Optional[int] = None,
    ) -> ProgramRunResult:
        """Execute on the VLIW simulator, following branches."""
        state: MemoryState = dict(memory or {})
        label: Optional[str] = self.entry
        cycles = 0
        path: List[str] = []
        budget = max_dispatches or self.MAX_TRACE_DISPATCHES
        while label is not None:
            if len(path) >= budget:
                raise ProgramCompileError(
                    "trace dispatch limit exceeded (infinite loop?)"
                )
            try:
                compiled = self.traces[label]
            except KeyError:
                raise ProgramCompileError(f"no trace starts at {label!r}")
            path.append(label)
            simulator = VLIWSimulator(self.machine, state)
            result = simulator.run(compiled.program, follow_branches=True)
            state = result.memory
            cycles += result.cycles
            if result.branch_target is not None:
                label = result.branch_target
            else:
                label = compiled.prepared.fallthrough
        return ProgramRunResult(memory=state, cycles=cycles, trace_path=path)

    def total_static_ops(self) -> int:
        return sum(t.program.op_count for t in self.traces.values())


def compile_program(
    program: Program,
    machine: MachineModel,
    method: str = "ursa",
    max_trace_blocks: Optional[int] = None,
    jobs: Optional[int] = None,
    cache: object = None,
    deadline_ms: Optional[float] = None,
    resilient: bool = False,
    pool: Optional[object] = None,
) -> CompiledProgram:
    """Compile every trace of ``program`` for ``machine``.

    Per-trace compilation is not individually simulated (the whole
    program is verified end-to-end instead; see
    :func:`verify_compiled_program`).  All traces share one
    :class:`~repro.pm.analysis.AnalysisManager` — cache entries are
    keyed by globally unique DAG versions, so a cross-trace cache is
    sound, and the shared hit/miss counters describe the whole program.

    Scaling knobs (see ``docs/serving.md``):

    * ``cache`` — persistent content-addressed artifact cache: ``True``
      for the default store (``$REPRO_CACHE_DIR`` / ``~/.cache/repro``),
      a path, or a :class:`repro.serve.CompileCache`.  Identical traces
      hit across runs, processes, and users; duplicate traces *within*
      the program compile once.
    * ``jobs`` — fan cache-missing traces across a ``multiprocessing``
      pool of this many workers (deterministic, input-order results;
      degrades to serial if the pool cannot run).
    * ``deadline_ms`` / ``resilient`` — per-trace deadline and the
      ``repro.resilience`` fallback ladder inside each shard.  With a
      deadline the persistent cache is bypassed (best-so-far output is
      time-dependent, so it must not be memoized).
    * ``pool`` — a persistent :class:`repro.serve.pool.WorkerPool`:
      cache-missing traces are dispatched to its warm supervised
      workers instead of forking a fresh per-request pool (preferred
      over ``jobs`` when both are given; degrades to the ``jobs`` /
      serial path if the pool cannot run).

    Both paths are bit-identical to the plain serial compile (compare
    :func:`repro.serve.program_signature` per trace).
    """
    from repro.pm.analysis import AnalysisManager

    program.validate()
    traces = entry_safe_traces(program, max_trace_blocks=max_trace_blocks)
    prepared_list = [prepare_trace(program, trace) for trace in traces]
    parallel = (jobs is not None and jobs > 1) or pool is not None

    if cache is None and not parallel and deadline_ms is None and not resilient:
        # The classic serial path: no serve machinery touched at all.
        compiled: Dict[str, CompiledTrace] = {}
        analysis_manager = AnalysisManager()
        for prepared in prepared_list:
            result = compile_trace(
                prepared.instructions,
                machine,
                method=method,
                verify=False,
                analysis_manager=analysis_manager,
            )
            compiled[prepared.head] = CompiledTrace(
                prepared=prepared,
                program=result.program,
                cycles_estimate=result.schedule.length,
            )
        return CompiledProgram(
            machine=machine,
            source=program,
            entry=program.entry.label,
            traces=compiled,
            method=method,
        )
    return _compile_program_serve(
        program, machine, method, prepared_list,
        jobs=jobs, cache=cache, deadline_ms=deadline_ms, resilient=resilient,
        pool=pool,
    )


def _compile_program_serve(
    program: Program,
    machine: MachineModel,
    method: str,
    prepared_list: Sequence[PreparedTrace],
    jobs: Optional[int],
    cache: object,
    deadline_ms: Optional[float],
    resilient: bool,
    pool: Optional[object] = None,
) -> CompiledProgram:
    """The cached/sharded compile path (``docs/serving.md``)."""
    from repro import obs
    from repro.pm.analysis import AnalysisManager
    from repro.serve.cache import resolve_cache, trace_key
    from repro.serve.shard import _compile_one, compile_shards

    store = resolve_cache(cache)
    cacheable = store is not None and deadline_ms is None
    extra = ("resilient",) if resilient else ()

    artifacts: Dict[str, object] = {}  # key -> TraceArtifact
    key_of: Dict[str, str] = {}  # head -> key
    pending: List[Tuple[str, Sequence[Instruction]]] = []  # unique misses
    pending_keys: Set[str] = set()
    hits = 0
    for prepared in prepared_list:
        key = trace_key(prepared.instructions, machine, method, extra=extra)
        key_of[prepared.head] = key
        if key in artifacts or key in pending_keys:
            continue  # duplicate trace: compile/fetch once
        artifact = store.get(key) if cacheable else None
        if artifact is not None:
            artifacts[key] = artifact
            hits += 1
        else:
            pending.append((key, prepared.instructions))
            pending_keys.add(key)

    fresh_keys: List[str] = []
    if pending:
        shards = None
        if pool is not None:
            # Warm supervised pool: no per-request fork cost, and worker
            # crashes/hangs are recovered inside map_shards (None means
            # the pool itself cannot run — fall through).
            shards = pool.map_shards(
                pending, machine, method,
                deadline_ms=deadline_ms, resilient=resilient,
            )
        if shards is None and jobs is not None and jobs > 1 and len(pending) > 1:
            shards = compile_shards(
                pending, machine, method, jobs,
                deadline_ms=deadline_ms, resilient=resilient,
            )
        if shards is None:
            manager = AnalysisManager()
            shards = [
                _compile_one(
                    instructions, machine, method, deadline_ms, resilient,
                    key, analysis_manager=manager,
                )
                for key, instructions in pending
            ]
        for artifact in shards:
            artifacts[artifact.key] = artifact
            fresh_keys.append(artifact.key)

    if cacheable:
        for key in fresh_keys:
            artifact = artifacts[key]
            degradation = artifact.degradation
            if degradation is not None and degradation.get("degraded"):
                continue  # never memoize a degraded answer
            store.put(artifact)

    obs.count("serve.program_traces", len(prepared_list))
    if store is not None:
        obs.count("serve.program_cache_hits", hits)

    compiled: Dict[str, CompiledTrace] = {}
    for prepared in prepared_list:
        artifact = artifacts[key_of[prepared.head]]
        compiled[prepared.head] = CompiledTrace(
            prepared=prepared,
            program=artifact.program,
            cycles_estimate=artifact.cycles_estimate,
        )
    return CompiledProgram(
        machine=machine,
        source=program,
        entry=program.entry.label,
        traces=compiled,
        method=method,
        cache_hits=hits,
        cache_misses=len(fresh_keys),
    )


def verify_compiled_program(
    compiled: CompiledProgram,
    memory: Optional[MemoryState] = None,
    max_steps: int = 200_000,
) -> Tuple[ProgramRunResult, bool]:
    """Run compiled code and the interpreter; compare user memory."""
    from repro.ir.interp import Interpreter

    memory = dict(memory or {})
    reference = Interpreter(memory, max_steps=max_steps).run_program(
        compiled.source
    )
    run = compiled.run(memory)
    expected = {
        cell: value
        for cell, value in reference.memory.items()
        if not cell[0].startswith("%")
    }
    return run, run.user_memory() == expected
