"""Partial orders, Dilworth chain decompositions, and maximum antichains.

Theorem 1 of the paper (Dilworth [Dil50]): the maximum number of mutually
independent elements of a partial order equals the number of chains in a
minimum chain decomposition.  URSA measures worst-case resource
requirements by decomposing the *reuse* partial order of each resource
into a minimum set of allocation chains via bipartite matching [FoF65].

The relation itself is stored as packed int bitmasks — one bit per
element, positions given by :attr:`PartialOrder.index` — and the default
matchers run directly on those masks (:mod:`repro.graph.bitset`):
Hopcroft–Karp for plain decompositions, antichains, and width; the
priority-batched Kuhn replica wherever the paper's hammock-priority
insertion order is load-bearing.  The dict-of-sets view (``above``) is
materialized lazily for callers that still want it, and the original
dict-based engine survives behind ``engine="legacy"`` /
:func:`repro.graph.bitset.engine` as the reference the property fuzz and
the checked-in benchmark baseline compare against.  Both engines produce
bit-identical decompositions, antichains, and widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.graph import bitset
from repro.graph.matching import (
    PrioritizedMatcher,
    hopcroft_karp,
    maximum_matching,
    minimum_vertex_cover,
)

Element = Hashable


class PartialOrderError(Exception):
    """Raised when a relation is not a valid strict partial order."""


class PartialOrder:
    """A strict partial order, stored as per-element successor bitmasks
    (the relation must already be transitively closed).

    For URSA, ``a < b`` means "b can reuse a's resource instance".  Bit
    positions are element indices (``index``); ``masks[i]`` is the set of
    elements above ``elements[i]``.  The dict-of-frozensets view
    (``above``) is derived lazily and cached.
    """

    __slots__ = ("elements", "_index", "_masks", "_above")

    def __init__(
        self,
        elements: Iterable[Element],
        above: Optional[Mapping[Element, Iterable[Element]]] = None,
        *,
        masks: Optional[Sequence[int]] = None,
    ) -> None:
        self.elements: List[Element] = list(elements)
        self._index: Dict[Element, int] = {
            e: i for i, e in enumerate(self.elements)
        }
        self._above: Optional[Dict[Element, FrozenSet[Element]]] = None
        if masks is not None:
            if above is not None:
                raise ValueError("pass either above or masks, not both")
            self._masks: List[int] = list(masks)
            if len(self._masks) != len(self.elements):
                raise PartialOrderError("one mask per element required")
        else:
            index = self._index
            mask_list = [0] * len(self.elements)
            for a, bs in (above or {}).items():
                bits = 0
                for b in bs:
                    bits |= 1 << index[b]
                mask_list[index[a]] = bits
            self._masks = mask_list

    @classmethod
    def from_pairs(
        cls, elements: Iterable[Element], pairs: Iterable[Tuple[Element, Element]]
    ) -> "PartialOrder":
        element_list = list(elements)
        index = {e: i for i, e in enumerate(element_list)}
        masks = [0] * len(element_list)
        for a, b in pairs:
            ia = index.get(a)
            ib = index.get(b)
            if ia is None or ib is None:
                raise PartialOrderError(f"pair ({a!r}, {b!r}) uses unknown element")
            if a == b:
                raise PartialOrderError(f"reflexive pair on {a!r}")
            masks[ia] |= 1 << ib
        return cls(element_list, masks=masks)

    @classmethod
    def from_masks(
        cls, elements: Iterable[Element], masks: Sequence[int]
    ) -> "PartialOrder":
        """Adopt ready-made successor bitmasks (bit ``j`` of ``masks[i]``
        set iff ``elements[i] < elements[j]``) without copying through a
        dict — the fast constructor the reuse analyses use."""
        return cls(elements, masks=masks)

    # ------------------------------------------------------------------
    @property
    def index(self) -> Dict[Element, int]:
        """element -> bit position (shared with ``masks``)."""
        return self._index

    @property
    def masks(self) -> List[int]:
        """Successor bitmask per element index.  Treat as read-only."""
        return self._masks

    @property
    def above(self) -> Dict[Element, FrozenSet[Element]]:
        """a -> frozenset of b with (a, b) in the relation (lazy view)."""
        if self._above is None:
            elements = self.elements
            self._above = {
                a: frozenset(elements[j] for j in bitset.iter_bits(mask))
                for a, mask in zip(elements, self._masks)
            }
        return self._above

    # ------------------------------------------------------------------
    def less(self, a: Element, b: Element) -> bool:
        return bool(self._masks[self._index[a]] >> self._index[b] & 1)

    def independent(self, a: Element, b: Element) -> bool:
        return a != b and not self.less(a, b) and not self.less(b, a)

    def pairs(self) -> List[Tuple[Element, Element]]:
        """All related pairs, in a deterministic order.

        Enumerating masks bit by bit yields, per left element, its
        successors in ascending element-index order — the enumeration is
        invariant under uniform uid shifts (raw set iteration would leak
        hash order into the matching and hence into the decomposition).
        """
        elements = self.elements
        result: List[Tuple[Element, Element]] = []
        for a, mask in zip(elements, self._masks):
            while mask:
                low = mask & -mask
                result.append((a, elements[low.bit_length() - 1]))
                mask ^= low
        return result

    def __len__(self) -> int:
        return len(self.elements)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check irreflexivity, antisymmetry, and transitivity."""
        masks = self._masks
        elements = self.elements
        for i, a in enumerate(elements):
            mask = masks[i]
            if mask >> i & 1:
                raise PartialOrderError(f"reflexive: {a!r}")
            rest = mask
            while rest:
                low = rest & -rest
                rest ^= low
                j = low.bit_length() - 1
                b = elements[j]
                if masks[j] >> i & 1:
                    raise PartialOrderError(f"symmetric pair {a!r}, {b!r}")
                missing = masks[j] & ~mask
                if missing:
                    witnesses = sorted(
                        repr(elements[k]) for k in bitset.iter_bits(missing)
                    )
                    raise PartialOrderError(
                        f"not transitive: {a!r} < {b!r} < {witnesses[0]}"
                    )

    def is_chain(self, members: Sequence[Element]) -> bool:
        """True when every pair of members is related (Definition 1)."""
        members = list(members)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if self.independent(a, b):
                    return False
        return True

    def sort_chain(self, members: Iterable[Element]) -> List[Element]:
        """Return chain members in increasing order."""
        members = list(members)
        masks = self._masks
        index = self._index
        member_bits = [index[e] for e in members]
        ranks = {
            e: sum(1 for m in member_bits if masks[m] >> index[e] & 1)
            for e in members
        }
        return sorted(members, key=ranks.__getitem__)


@dataclass
class ChainDecomposition:
    """A partition of a partial order into chains (Definition 2).

    Produced by :func:`minimum_chain_decomposition`; ``chains`` are each
    sorted in increasing order.  The decomposition is minimal, so
    ``len(chains)`` is the worst-case resource requirement (Theorem 1).
    """

    order: PartialOrder
    chains: List[List[Element]]
    #: the matching that produced the decomposition (element -> successor).
    successor: Dict[Element, Element] = field(default_factory=dict)

    @property
    def width(self) -> int:
        return len(self.chains)

    def chain_of(self, element: Element) -> int:
        """Index of the chain containing ``element``."""
        for index, chain in enumerate(self.chains):
            if element in chain:
                return index
        raise KeyError(element)

    def chain_index(self) -> Dict[Element, int]:
        return {
            element: index
            for index, chain in enumerate(self.chains)
            for element in chain
        }

    def validate(self) -> None:
        """Chains must partition the elements and each be a chain."""
        seen: Set[Element] = set()
        for chain in self.chains:
            if not chain:
                raise PartialOrderError("empty chain in decomposition")
            if not self.order.is_chain(chain):
                raise PartialOrderError(f"not a chain: {chain!r}")
            overlap = seen & set(chain)
            if overlap:
                raise PartialOrderError(f"elements in two chains: {overlap!r}")
            seen.update(chain)
        if seen != set(self.order.elements):
            raise PartialOrderError("decomposition does not cover all elements")


def minimum_chain_decomposition(
    order: PartialOrder,
    priority: Optional[Callable[[Element, Element], int]] = None,
    levels: Optional[Mapping[Element, int]] = None,
    engine: Optional[str] = None,
) -> ChainDecomposition:
    """Minimum chain decomposition via maximum bipartite matching [FoF65].

    The bipartite graph has one left and one right copy of every element
    and an edge for every related pair; a maximum matching of size ``m``
    yields ``n - m`` chains by following matched successor links.

    ``priority(a, b)`` (smaller = earlier batch) enables the paper's
    hammock-aware insertion order, which makes the decomposition minimal
    for nested hammocks as well as the whole DAG.  ``levels`` is the fast
    spelling of the same scheme for the standard priority
    ``abs(level(a) - level(b))`` (hammock nesting depth): batches are
    formed by mask intersection instead of one callback per pair.  Both
    engines (``"bitset"``, the default, and ``"legacy"``) produce the
    identical decomposition — the bitset Kuhn replica enumerates
    neighbours in exactly the order ``PrioritizedMatcher`` does.
    """
    if priority is not None and levels is not None:
        raise ValueError("pass either priority or levels, not both")
    selected = engine or bitset.active_engine()
    if selected == "legacy":
        match = _legacy_match(order, priority, levels)
    else:
        match = _bitset_match(order, priority, levels)

    has_predecessor: Set[Element] = set(match.values())
    chains: List[List[Element]] = []
    for element in order.elements:
        if element in has_predecessor:
            continue
        chain = [element]
        while chain[-1] in match:
            chain.append(match[chain[-1]])
        chains.append(chain)
    obs.count("dilworth.decompositions")
    obs.count("dilworth.matched_pairs", len(match))
    return ChainDecomposition(order, chains, successor=dict(match))


def _legacy_match(
    order: PartialOrder,
    priority: Optional[Callable[[Element, Element], int]],
    levels: Optional[Mapping[Element, int]],
) -> Dict[Element, Element]:
    """The original dict-of-sets matching path (reference engine)."""
    if priority is None and levels is not None:
        priority = lambda a, b: abs(levels[a] - levels[b])  # noqa: E731
    pairs = order.pairs()
    if priority is None:
        return maximum_matching(pairs)
    matcher = PrioritizedMatcher()
    batches: Dict[int, List[Tuple[Element, Element]]] = {}
    for a, b in pairs:
        batches.setdefault(priority(a, b), []).append((a, b))
    for key in sorted(batches):
        matcher.add_edges(batches[key])
    return dict(matcher.match_left)


def _bitset_match(
    order: PartialOrder,
    priority: Optional[Callable[[Element, Element], int]],
    levels: Optional[Mapping[Element, int]],
) -> Dict[Element, Element]:
    """Mask-native matching: Hopcroft–Karp when unprioritized, the
    batched Kuhn replica (identical matching to ``PrioritizedMatcher``)
    otherwise."""
    n = len(order.elements)
    elements = order.elements
    masks = order.masks
    if priority is None and levels is None:
        match_left, _ = bitset.hopcroft_karp_masks(n, n, masks)
        return {
            elements[i]: elements[j]
            for i, j in enumerate(match_left)
            if j >= 0
        }

    matcher = bitset.BitsetKuhn(n)
    if levels is not None:
        # Standard hammock priority abs(level(a) - level(b)): batch p
        # selects, per left, the successors whose level differs by
        # exactly p — two dict lookups and one AND per left per batch.
        level_of = [levels[e] for e in elements]
        buckets: Dict[int, int] = {}
        for i, lvl in enumerate(level_of):
            buckets[lvl] = buckets.get(lvl, 0) | (1 << i)
        if buckets:
            span = max(buckets) - min(buckets)
            # Lefts with successor bits not yet emitted, ascending (the
            # batch row order the Kuhn replica relies on); each batch
            # subtracts what it emitted so exhausted lefts drop out.
            pending = [(i, masks[i]) for i in range(n) if masks[i]]
            for p in range(span + 1):
                # selector depends only on the left's level: resolve the
                # two bucket lookups once per level, not once per left.
                if p == 0:
                    selector_at = dict(buckets)
                else:
                    selector_at = {
                        lvl: buckets.get(lvl - p, 0) | buckets.get(lvl + p, 0)
                        for lvl in buckets
                    }
                rows: List[Tuple[int, int]] = []
                remaining: List[Tuple[int, int]] = []
                for i, mask in pending:
                    row = mask & selector_at[level_of[i]]
                    if row:
                        rows.append((i, row))
                        mask &= ~row
                        if not mask:
                            continue
                    remaining.append((i, mask))
                pending = remaining
                if rows:
                    matcher.add_batch(rows)
                if not pending:
                    break
    else:
        # Arbitrary callable: batch in pairs() order, exactly as the
        # legacy path does (the callable sees the same call sequence).
        index = order.index
        batches: Dict[int, Dict[int, int]] = {}
        for a, b in order.pairs():
            rows_by_left = batches.setdefault(priority(a, b), {})
            ia = index[a]
            rows_by_left[ia] = rows_by_left.get(ia, 0) | (1 << index[b])
        for key in sorted(batches):
            matcher.add_batch(batches[key].items())
    return {
        elements[i]: elements[j]
        for i, j in enumerate(matcher.match_left)
        if j >= 0
    }


def maximum_antichain(
    order: PartialOrder, engine: Optional[str] = None
) -> Set[Element]:
    """An antichain of maximum size, via König's theorem.

    By Dilworth, its size equals the width returned by
    :func:`minimum_chain_decomposition`.  Both engines yield the *same*
    antichain, not merely one of the same size — the allocator's
    fallback candidates are built from its members.
    """
    selected = engine or bitset.active_engine()
    if selected == "legacy":
        pairs = order.pairs()
        matching = hopcroft_karp(order.elements, pairs)
        cover_left, cover_right = minimum_vertex_cover(
            order.elements, order.elements, pairs, matching
        )
        return {
            element
            for element in order.elements
            if element not in cover_left and element not in cover_right
        }
    n = len(order.elements)
    masks = order.masks
    match_left, match_right = bitset.hopcroft_karp_masks(n, n, masks)
    visited_left, visited_right = bitset.koenig_cover_masks(
        n, masks, match_left, match_right
    )
    return {
        element
        for i, element in enumerate(order.elements)
        # In the cover: matched-and-unvisited lefts, visited rights.
        if not (match_left[i] >= 0 and not (visited_left >> i) & 1)
        and not (visited_right >> i & 1)
    }


def width(order: PartialOrder, engine: Optional[str] = None) -> int:
    """The width (maximum antichain size) of the partial order."""
    selected = engine or bitset.active_engine()
    if selected == "legacy":
        matching = hopcroft_karp(order.elements, order.pairs())
        return len(order.elements) - len(matching)
    n = len(order.elements)
    match_left, _ = bitset.hopcroft_karp_masks(n, n, order.masks)
    return n - (n - match_left.count(-1))


def transitive_reduction(order: PartialOrder) -> List[Tuple[Element, Element]]:
    """The covering pairs of the order (Definition 4's Reuse DAG edges).

    A pair (a, b) is kept iff there is no c with a < c < b — the paper
    removes transitive edges from the Reuse DAG for presentation and for
    the head/tail trimming; the matching itself uses all pairs.
    """
    masks = order.masks
    elements = order.elements
    covers: List[Tuple[Element, Element]] = []
    for i, a in enumerate(elements):
        greater = masks[i]
        if not greater:
            continue
        # b is covered iff some c in greater has b above it; irreflexivity
        # makes including b itself in the union harmless.
        indirect = 0
        for j in bitset.iter_bits(greater):
            indirect |= masks[j]
        for j in bitset.iter_bits(greater & ~indirect):
            covers.append((a, elements[j]))
    return covers


def closure_from_dag_pairs(
    elements: Iterable[Element],
    covers: Iterable[Tuple[Element, Element]],
) -> PartialOrder:
    """Build the transitive closure of a covering (DAG-edge) relation."""
    element_list = list(elements)
    index = {e: i for i, e in enumerate(element_list)}
    succ_masks = [0] * len(element_list)
    adjacency: Dict[int, List[int]] = {i: [] for i in range(len(element_list))}
    indegree = [0] * len(element_list)
    for a, b in covers:
        adjacency[index[a]].append(index[b])
        indegree[index[b]] += 1

    # Kahn topological order, then reverse DP with bitmasks.
    from collections import deque

    queue = deque(i for i, d in enumerate(indegree) if d == 0)
    topo: List[int] = []
    indegree_work = list(indegree)
    while queue:
        i = queue.popleft()
        topo.append(i)
        for j in adjacency[i]:
            indegree_work[j] -= 1
            if indegree_work[j] == 0:
                queue.append(j)
    if len(topo) != len(element_list):
        raise PartialOrderError("covering relation contains a cycle")
    for i in reversed(topo):
        mask = 0
        for j in adjacency[i]:
            mask |= succ_masks[j] | (1 << j)
        succ_masks[i] = mask
    return PartialOrder.from_masks(element_list, succ_masks)
