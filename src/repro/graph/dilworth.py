"""Partial orders, Dilworth chain decompositions, and maximum antichains.

Theorem 1 of the paper (Dilworth [Dil50]): the maximum number of mutually
independent elements of a partial order equals the number of chains in a
minimum chain decomposition.  URSA measures worst-case resource
requirements by decomposing the *reuse* partial order of each resource
into a minimum set of allocation chains via bipartite matching [FoF65].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import obs
from repro.graph.matching import (
    PrioritizedMatcher,
    hopcroft_karp,
    maximum_matching,
    minimum_vertex_cover,
)

Element = Hashable


class PartialOrderError(Exception):
    """Raised when a relation is not a valid strict partial order."""


@dataclass
class PartialOrder:
    """A strict partial order: ``pairs`` holds every related pair (a, b)
    with a < b (the relation must already be transitively closed).

    For URSA, ``(a, b)`` means "b can reuse a's resource instance".
    """

    elements: List[Element]
    #: a -> set of b with (a, b) in the relation.
    above: Dict[Element, FrozenSet[Element]]

    @classmethod
    def from_pairs(
        cls, elements: Iterable[Element], pairs: Iterable[Tuple[Element, Element]]
    ) -> "PartialOrder":
        element_list = list(elements)
        element_set = set(element_list)
        above: Dict[Element, Set[Element]] = {e: set() for e in element_list}
        for a, b in pairs:
            if a not in element_set or b not in element_set:
                raise PartialOrderError(f"pair ({a!r}, {b!r}) uses unknown element")
            if a == b:
                raise PartialOrderError(f"reflexive pair on {a!r}")
            above[a].add(b)
        return cls(element_list, {e: frozenset(s) for e, s in above.items()})

    # ------------------------------------------------------------------
    def less(self, a: Element, b: Element) -> bool:
        return b in self.above[a]

    def independent(self, a: Element, b: Element) -> bool:
        return a != b and not self.less(a, b) and not self.less(b, a)

    def pairs(self) -> List[Tuple[Element, Element]]:
        """All related pairs, in a deterministic order.

        ``above`` values are sets; iterating them raw leaks the hash
        order of the elements (for int uids: their absolute values) into
        the matching and hence into the chain decomposition, making
        logically identical runs diverge.  Sorting keeps the enumeration
        invariant under uniform uid shifts.
        """
        index = {e: i for i, e in enumerate(self.elements)}
        return [
            (a, b)
            for a in self.elements
            for b in sorted(self.above[a], key=index.__getitem__)
        ]

    def __len__(self) -> int:
        return len(self.elements)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check irreflexivity, antisymmetry, and transitivity."""
        for a, bs in self.above.items():
            if a in bs:
                raise PartialOrderError(f"reflexive: {a!r}")
            for b in bs:
                if a in self.above[b]:
                    raise PartialOrderError(f"symmetric pair {a!r}, {b!r}")
                missing = self.above[b] - bs
                if missing:
                    raise PartialOrderError(
                        f"not transitive: {a!r} < {b!r} < {sorted(map(repr, missing))[0]}"
                    )

    def is_chain(self, members: Sequence[Element]) -> bool:
        """True when every pair of members is related (Definition 1)."""
        members = list(members)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                if self.independent(a, b):
                    return False
        return True

    def sort_chain(self, members: Iterable[Element]) -> List[Element]:
        """Return chain members in increasing order."""
        members = list(members)
        return sorted(
            members, key=lambda e: sum(1 for other in members if self.less(other, e))
        )


@dataclass
class ChainDecomposition:
    """A partition of a partial order into chains (Definition 2).

    Produced by :func:`minimum_chain_decomposition`; ``chains`` are each
    sorted in increasing order.  The decomposition is minimal, so
    ``len(chains)`` is the worst-case resource requirement (Theorem 1).
    """

    order: PartialOrder
    chains: List[List[Element]]
    #: the matching that produced the decomposition (element -> successor).
    successor: Dict[Element, Element] = field(default_factory=dict)

    @property
    def width(self) -> int:
        return len(self.chains)

    def chain_of(self, element: Element) -> int:
        """Index of the chain containing ``element``."""
        for index, chain in enumerate(self.chains):
            if element in chain:
                return index
        raise KeyError(element)

    def chain_index(self) -> Dict[Element, int]:
        return {
            element: index
            for index, chain in enumerate(self.chains)
            for element in chain
        }

    def validate(self) -> None:
        """Chains must partition the elements and each be a chain."""
        seen: Set[Element] = set()
        for chain in self.chains:
            if not chain:
                raise PartialOrderError("empty chain in decomposition")
            if not self.order.is_chain(chain):
                raise PartialOrderError(f"not a chain: {chain!r}")
            overlap = seen & set(chain)
            if overlap:
                raise PartialOrderError(f"elements in two chains: {overlap!r}")
            seen.update(chain)
        if seen != set(self.order.elements):
            raise PartialOrderError("decomposition does not cover all elements")


def minimum_chain_decomposition(
    order: PartialOrder,
    priority: Optional[Callable[[Element, Element], int]] = None,
) -> ChainDecomposition:
    """Minimum chain decomposition via maximum bipartite matching [FoF65].

    The bipartite graph has one left and one right copy of every element
    and an edge for every related pair; a maximum matching of size ``m``
    yields ``n - m`` chains by following matched successor links.

    ``priority(a, b)`` (smaller = earlier batch) enables the paper's
    hammock-aware insertion order, which makes the decomposition minimal
    for nested hammocks as well as the whole DAG.
    """
    pairs = order.pairs()
    if priority is None:
        match = maximum_matching(pairs)
    else:
        matcher = PrioritizedMatcher()
        batches: Dict[int, List[Tuple[Element, Element]]] = {}
        for a, b in pairs:
            batches.setdefault(priority(a, b), []).append((a, b))
        for key in sorted(batches):
            matcher.add_edges(batches[key])
        match = dict(matcher.match_left)

    has_predecessor: Set[Element] = set(match.values())
    chains: List[List[Element]] = []
    for element in order.elements:
        if element in has_predecessor:
            continue
        chain = [element]
        while chain[-1] in match:
            chain.append(match[chain[-1]])
        chains.append(chain)
    obs.count("dilworth.decompositions")
    obs.count("dilworth.matched_pairs", len(match))
    return ChainDecomposition(order, chains, successor=dict(match))


def maximum_antichain(order: PartialOrder) -> Set[Element]:
    """An antichain of maximum size, via König's theorem.

    By Dilworth, its size equals the width returned by
    :func:`minimum_chain_decomposition`.
    """
    pairs = order.pairs()
    matching = hopcroft_karp(order.elements, pairs)
    cover_left, cover_right = minimum_vertex_cover(
        order.elements, order.elements, pairs, matching
    )
    return {
        element
        for element in order.elements
        if element not in cover_left and element not in cover_right
    }


def width(order: PartialOrder) -> int:
    """The width (maximum antichain size) of the partial order."""
    matching = hopcroft_karp(order.elements, order.pairs())
    return len(order.elements) - len(matching)


def transitive_reduction(order: PartialOrder) -> List[Tuple[Element, Element]]:
    """The covering pairs of the order (Definition 4's Reuse DAG edges).

    A pair (a, b) is kept iff there is no c with a < c < b — the paper
    removes transitive edges from the Reuse DAG for presentation and for
    the head/tail trimming; the matching itself uses all pairs.
    """
    covers: List[Tuple[Element, Element]] = []
    for a, greater in order.above.items():
        for b in greater:
            if not any(b in order.above[c] for c in greater if c != b):
                covers.append((a, b))
    return covers


def closure_from_dag_pairs(
    elements: Iterable[Element],
    covers: Iterable[Tuple[Element, Element]],
) -> PartialOrder:
    """Build the transitive closure of a covering (DAG-edge) relation."""
    element_list = list(elements)
    index = {e: i for i, e in enumerate(element_list)}
    succ_masks = [0] * len(element_list)
    adjacency: Dict[int, List[int]] = {i: [] for i in range(len(element_list))}
    indegree = [0] * len(element_list)
    for a, b in covers:
        adjacency[index[a]].append(index[b])
        indegree[index[b]] += 1

    # Kahn topological order, then reverse DP with bitmasks.
    from collections import deque

    queue = deque(i for i, d in enumerate(indegree) if d == 0)
    topo: List[int] = []
    indegree_work = list(indegree)
    while queue:
        i = queue.popleft()
        topo.append(i)
        for j in adjacency[i]:
            indegree_work[j] -= 1
            if indegree_work[j] == 0:
                queue.append(j)
    if len(topo) != len(element_list):
        raise PartialOrderError("covering relation contains a cycle")
    for i in reversed(topo):
        mask = 0
        for j in adjacency[i]:
            mask |= succ_masks[j] | (1 << j)
        succ_masks[i] = mask

    above: Dict[Element, FrozenSet[Element]] = {}
    for i, element in enumerate(element_list):
        mask = succ_masks[i]
        greater: Set[Element] = set()
        while mask:
            low = mask & -mask
            greater.add(element_list[low.bit_length() - 1])
            mask ^= low
        above[element] = frozenset(greater)
    return PartialOrder(element_list, above)
