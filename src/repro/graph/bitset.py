"""Packed-int bitset kernels for the measurement core (Thm. 1, §3.1).

The measurement step — reuse-order construction, Dilworth chain
decomposition, and the bipartite matchings underneath — dominates
compile time, and all of it reduces to set algebra over small universes
(DAG nodes, values).  This module is the shared engine: every set is a
Python int used as a bit vector, with one *bit index table* per universe
mapping element -> bit position (the DAG's own table lives in
``DependenceDAG.closure_masks``; partial orders carry theirs in
``PartialOrder.index``).  Union/intersection/difference become single
big-int ops that the interpreter executes 64 bits at a time, which is
where the measured ~10x over the dict-of-sets loops comes from (see
``docs/performance.md`` and ``BENCH_measurement_scaling.json``).

Two matchers are provided, each an *index-space replica* of its
dict-of-sets reference in :mod:`repro.graph.matching`:

* :class:`BitsetKuhn` — priority-batched Kuhn augmentation, mirroring
  ``PrioritizedMatcher`` bit for bit: same left iteration order, same
  DFS neighbour order, hence the *same matching* and the same chain
  decomposition.  Used wherever the paper's hammock-priority scheme is
  load-bearing (``core/measure.py``).
* :func:`hopcroft_karp_masks` — Hopcroft–Karp with bitmask adjacency
  and batched BFS frontier masks, mirroring ``matching.hopcroft_karp``.
  The default matcher when no priorities are requested, and the engine
  behind antichains/width via :func:`koenig_cover_masks`.

Both honour the active :mod:`repro.resilience` deadline exactly like
their references: stopping early leaves a valid (possibly non-maximum)
matching, which overestimates chain counts — the conservative direction.

The module-level *engine switch* selects between these kernels and the
legacy dict-of-sets code paths repo-wide; the legacy engine is kept as
the reference the property fuzz (``tests/test_bitset_kernels.py``) and
the checked-in benchmark baseline compare against.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.resilience import budgets

try:  # int.bit_count is Python >= 3.10; keep a 3.9 fallback.
    _popcount = int.bit_count
except AttributeError:  # pragma: no cover - modern interpreters
    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


def popcount(mask: int) -> int:
    """Number of set bits (elements) in ``mask``."""
    return _popcount(mask)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(indices: Iterable[int]) -> int:
    """OR of ``1 << i`` over ``indices``."""
    mask = 0
    for i in indices:
        mask |= 1 << i
    return mask


# ======================================================================
# Engine selection.
# ======================================================================
_ENGINE = "bitset"
_ENGINES = ("bitset", "legacy")


def active_engine() -> str:
    """The measurement engine in effect: ``"bitset"`` or ``"legacy"``."""
    return _ENGINE


def set_engine(name: str) -> None:
    global _ENGINE
    if name not in _ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {_ENGINES}")
    _ENGINE = name


@contextmanager
def engine(name: str) -> Iterator[None]:
    """Temporarily switch the measurement engine (fuzz + benchmarks)."""
    previous = _ENGINE
    set_engine(name)
    try:
        yield
    finally:
        set_engine(previous)


def _degraded(site: str) -> None:
    """An expired deadline stopped a matcher early (see matching.py:
    fewer augmenting passes => more chains => requirement overestimated,
    which is the conservative direction)."""
    obs.count("resilience.matching_degraded")
    obs.event("resilience.degraded", site=site)


# ======================================================================
# Priority-batched Kuhn matching (PrioritizedMatcher replica).
# ======================================================================
class BitsetKuhn:
    """Kuhn augmenting-path matching over bitmask adjacency, in priority
    batches.

    Works in index space: both vertex sides are ``0..n-1``.  Adjacency is
    held per left index as a *list* of batch masks in insertion order, so
    the DFS enumerates neighbours exactly as the reference
    ``PrioritizedMatcher`` walks its adjacency lists (earlier batches
    first, ascending index within a batch) — the resulting matching is
    identical, which is what keeps chain decompositions bit-identical to
    the legacy path.  Augmentation never unmatches a vertex, so edges
    matched in high-priority (intra-hammock) batches persist.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        #: batch-mask lists, allocated lazily (None = no edges yet; the
        #: DFS only ever indexes lefts that have edges).
        self._adj: List[Optional[List[int]]] = [None] * n
        #: OR of all batch masks per left — dead-end pruning in the DFS.
        self._full: List[int] = [0] * n
        #: True once some left holds more than one batch mask; until
        #: then the single-mask DFS specialization applies.
        self._multi = False
        self._seen = 0
        #: lefts with edges, still unmatched, in first-appearance order.
        self._unmatched: List[int] = []
        #: left index -> matched right index, -1 when unmatched.
        self.match_left: List[int] = [-1] * n
        self.match_right: List[int] = [-1] * n
        # Persistent DFS stacks (parallel arrays, preallocated: a simple
        # path alternates distinct lefts, so depth never exceeds n).
        self._st_lefts: List[int] = [0] * n
        self._st_masks: List[Optional[List[int]]] = [None] * n
        self._st_pos: List[int] = [0] * n
        self._st_rights: List[int] = [0] * n

    @classmethod
    def from_state(
        cls,
        adj: Sequence[int],
        match_left: Sequence[int],
        match_right: Sequence[int],
    ) -> "BitsetKuhn":
        """Warm-start from an existing matching (incremental re-measure):
        adjacency is one mask per left, and only still-unmatched lefts
        will be augmented from."""
        n = len(adj)
        matcher = cls(n)
        for i, mask in enumerate(adj):
            if mask:
                matcher._adj[i] = [mask]
                matcher._full[i] = mask
                matcher._seen |= 1 << i
        matcher.match_left = list(match_left)
        matcher.match_right = list(match_right)
        matcher._unmatched = [
            i for i in range(n) if matcher.match_left[i] < 0 and adj[i]
        ]
        return matcher

    def add_batch(self, rows: Iterable[Tuple[int, int]]) -> int:
        """Add one priority batch as ``(left, rights_mask)`` rows (in
        first-appearance order) and re-maximize; returns augment count."""
        adj = self._adj
        for left, mask in rows:
            if not mask:
                continue
            if adj[left] is None:
                adj[left] = [mask]
            else:
                adj[left].append(mask)
                self._multi = True
            self._full[left] |= mask
            if not (self._seen >> left) & 1:
                self._seen |= 1 << left
                if self.match_left[left] < 0:
                    self._unmatched.append(left)
        return self.maximize()

    def maximize(self) -> int:
        """Augment from still-unmatched lefts only (matched lefts can
        never gain: augmentation never unmatches)."""
        gained = 0
        deadline = budgets.active_deadline()
        degraded = False
        still: List[int] = []
        # Rights proven dead by a *failed* DFS stay dead for the rest of
        # this maximize.  A failure leaves the matching intact, and a
        # later success from another root cannot revive them: if an
        # alternating path from a dead right to a free right existed
        # after augmenting along P, its symmetric difference with P
        # would yield one before P was applied — the same exchange
        # argument that lets Kuhn try each root once.  Successful
        # searches seed their visited set with the dead mask; dead
        # subtrees always backtrack without flipping anything, so the
        # path found — and the final matching — stays identical to the
        # reference matcher's.
        dead = 0
        augment = self._augment if self._multi else self._augment1
        for left in self._unmatched:
            if self.match_left[left] >= 0:
                continue
            if degraded or (deadline is not None and deadline.tick()):
                if not degraded:
                    _degraded("matching.maximize")
                    degraded = True
                still.append(left)
                continue
            outcome = augment(left, dead)
            if outcome < 0:
                gained += 1
            else:
                dead = outcome
                still.append(left)
        self._unmatched = still
        obs.count("matching.augmenting_paths", gained)
        return gained

    def _augment(self, root: int, dead: int = 0) -> int:
        """Iterative Kuhn DFS from an unmatched left, on masks.

        The stack of (left, batch position, discovered right) frames *is*
        the alternating path, so a successful search flips it directly —
        no parent map.  Visiting order (earlier batches first, ascending
        bit within a batch) mirrors the reference matcher exactly.
        ``dead`` seeds the visited mask with rights already proven
        hopeless under the current matching.  Returns ``-1`` on success,
        otherwise the final visited mask (the caller's next dead set).

        Pruning tricks that cannot change the outcome: the visited
        complement ``nvis`` is maintained incrementally instead of
        recomputing ``~visited`` per step; a matched right whose owner
        has no unvisited neighbour at all (``full`` mask) is consumed
        without pushing a frame — the reference search would push it,
        scan, and pop without flipping anything; and frames do not store
        their remaining ``avail`` mask, because every bit tried at a
        frame was also removed from ``nvis``, so re-entering after a
        backtrack can recompute it as ``masks[pos] & nvis`` — the stored
        mask re-ANDed with ``nvis`` would yield the identical value.
        Descending therefore costs no mask store, which matters because
        the search is push-dominated (displacement chains backtrack
        rarely).
        """
        adj = self._adj
        full = self._full
        match_l = self.match_left
        match_r = self.match_right
        nvis = ~dead
        lefts = self._st_lefts
        masklists = self._st_masks
        positions = self._st_pos
        rights = self._st_rights
        lefts[0] = root
        masks = masklists[0] = adj[root]
        depth = 0
        pos = 0
        n_masks = len(masks)
        # ``avail`` is the current batch's not-yet-taken rights.
        avail = masks[0] & nvis if n_masks else 0
        while True:
            if not avail:
                pos += 1
                if pos < n_masks:
                    avail = masks[pos] & nvis
                    continue
                # Frame exhausted: pop.
                depth -= 1
                if depth < 0:
                    return ~nvis
                masks = masklists[depth]
                pos = positions[depth]
                n_masks = len(masks)
                avail = masks[pos] & nvis
                continue
            low = avail & -avail
            nvis ^= low
            right = low.bit_length() - 1
            owner = match_r[right]
            if owner < 0:
                # Free right: flip the stack's alternating path.
                rights[depth] = right
                for d in range(depth, -1, -1):
                    match_l[lefts[d]] = rights[d]
                    match_r[rights[d]] = lefts[d]
                return -1
            if not full[owner] & nvis:
                avail ^= low
                continue  # dead-end owner; right stays consumed
            positions[depth] = pos
            rights[depth] = right
            depth += 1
            lefts[depth] = owner
            masks = masklists[depth] = adj[owner]
            pos = 0
            n_masks = len(masks)
            avail = masks[0] & nvis if n_masks else 0

    def _augment1(self, root: int, dead: int = 0) -> int:
        """``_augment`` specialized for one batch mask per left (the
        first priority batch, and every warm start): the per-frame batch
        list collapses to the ``full`` mask, dropping the position
        bookkeeping from the hot loop.  Semantics are identical."""
        full = self._full
        match_l = self.match_left
        match_r = self.match_right
        nvis = ~dead
        lefts = self._st_lefts
        rights = self._st_rights
        lefts[0] = root
        depth = 0
        avail = full[root] & nvis
        while True:
            if not avail:
                depth -= 1
                if depth < 0:
                    return ~nvis
                # Tried bits are all in ``nvis``, so the frame's mask
                # needs no store: recompute instead (see ``_augment``).
                avail = full[lefts[depth]] & nvis
                continue
            low = avail & -avail
            nvis ^= low
            right = low.bit_length() - 1
            owner = match_r[right]
            if owner < 0:
                rights[depth] = right
                for d in range(depth, -1, -1):
                    match_l[lefts[d]] = rights[d]
                    match_r[rights[d]] = lefts[d]
                return -1
            navail = full[owner] & nvis
            if not navail:
                avail ^= low
                continue  # dead-end owner; right stays consumed
            rights[depth] = right
            depth += 1
            lefts[depth] = owner
            avail = navail

    @property
    def size(self) -> int:
        return self.n - self.match_left.count(-1)


# ======================================================================
# Hopcroft–Karp with batched BFS frontier masks.
# ======================================================================
def hopcroft_karp_masks(
    n_left: int,
    n_right: int,
    adj: Sequence[int],
) -> Tuple[List[int], List[int]]:
    """Maximum matching over bitmask adjacency; returns ``(match_left,
    match_right)`` index arrays (-1 = unmatched).

    Index-space replica of :func:`repro.graph.matching.hopcroft_karp`
    for adjacency sorted ascending per left (which is how
    ``PartialOrder`` enumerates pairs), so both produce the same
    matching — and hence the same König cover and the same antichain.
    The BFS processes whole layers as frontier masks: one OR per left
    per phase instead of one queue entry per edge.
    """
    INF = n_left + n_right + 1
    match_l = [-1] * n_left
    match_r = [-1] * n_right
    dist = [0] * n_left
    deadline = budgets.active_deadline()

    while True:
        # -- BFS phase: layer the unmatched lefts, batching each layer's
        # reachable rights into one frontier mask.
        frontier: List[int] = []
        for u in range(n_left):
            if match_l[u] < 0:
                dist[u] = 0
                frontier.append(u)
            else:
                dist[u] = INF
        visited_r = 0
        found = False
        depth = 0
        while frontier:
            reach = 0
            for u in frontier:
                reach |= adj[u]
            reach &= ~visited_r
            visited_r |= reach
            nxt: List[int] = []
            mask = reach
            while mask:
                low = mask & -mask
                mask ^= low
                owner = match_r[low.bit_length() - 1]
                if owner < 0:
                    found = True
                elif dist[owner] == INF:
                    dist[owner] = depth + 1
                    nxt.append(owner)
            frontier = nxt
            depth += 1
        if not found:
            break
        if deadline is not None and deadline.tick():
            _degraded("matching.hopcroft_karp")
            break
        for u in range(n_left):
            if match_l[u] < 0:
                _hk_dfs(u, adj, match_l, match_r, dist, INF)

    matched = n_left - match_l.count(-1)
    obs.count("matching.hk_calls")
    obs.peak("matching.size_peak", matched)
    return match_l, match_r


def _hk_dfs(
    root: int,
    adj: Sequence[int],
    match_l: List[int],
    match_r: List[int],
    dist: List[int],
    INF: int,
) -> bool:
    """Iterative layered DFS (recursion-free, so N=1024+ is safe)."""
    stack: List[List[int]] = [[root, adj[root]]]
    chosen: List[int] = []  # right tentatively taken by each frame
    while stack:
        frame = stack[-1]
        u, remaining = frame
        advanced = False
        while remaining:
            low = remaining & -remaining
            remaining &= ~low
            right = low.bit_length() - 1
            owner = match_r[right]
            if owner < 0:
                # Success: flip the whole alternating path on the stack.
                chosen.append(right)
                for (left, _), taken in zip(stack, chosen):
                    match_l[left] = taken
                    match_r[taken] = left
                return True
            if dist[owner] == dist[u] + 1:
                frame[1] = remaining
                chosen.append(right)
                stack.append([owner, adj[owner]])
                advanced = True
                break
        if not advanced:
            dist[u] = INF
            stack.pop()
            if chosen:
                chosen.pop()
    return False


def koenig_cover_masks(
    n_left: int,
    adj: Sequence[int],
    match_l: Sequence[int],
    match_r: Sequence[int],
) -> Tuple[int, int]:
    """König alternating BFS from the unmatched lefts, on masks.

    Returns ``(visited_left, visited_right)`` masks; the minimum vertex
    cover is (matched lefts not visited) ∪ (visited rights), exactly as
    :func:`repro.graph.matching.minimum_vertex_cover` computes it — the
    visited sets depend only on the matching, not on traversal order.
    """
    visited_l = 0
    visited_r = 0
    frontier = [u for u in range(n_left) if match_l[u] < 0]
    for u in frontier:
        visited_l |= 1 << u
    while frontier:
        reach = 0
        for u in frontier:
            mask = adj[u]
            matched = match_l[u]
            if matched >= 0:
                mask &= ~(1 << matched)  # non-matching edges only
            reach |= mask
        reach &= ~visited_r
        visited_r |= reach
        nxt: List[int] = []
        mask = reach
        while mask:
            low = mask & -mask
            mask ^= low
            owner = match_r[low.bit_length() - 1]
            if owner >= 0 and not (visited_l >> owner) & 1:
                visited_l |= 1 << owner
                nxt.append(owner)
        frontier = nxt
    return visited_l, visited_r
