"""Hammock (single-entry single-exit region) analysis of dependence DAGs.

URSA localizes excessive resource requirements to hammocks: regions with
one entry node dominating the region and one exit node postdominating it,
so transformations never need to look outside the region (§3.1).  Because
the DAG is given a virtual root and leaf, the whole DAG is itself a
hammock.

The hammock nesting structure also drives the paper's modified bipartite
matching: edges are prioritized by the difference in hammock nesting
level between their endpoints, making the resulting chain decomposition
minimal for every nested hammock, not just the whole DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro import obs
from repro.graph.dag import DependenceDAG


@dataclass(frozen=True)
class Hammock:
    """A single-entry single-exit region of the DAG.

    ``entry`` dominates every node in ``nodes`` and ``exit``
    postdominates every node in ``nodes``; both endpoints are included.
    """

    entry: int
    exit: int
    nodes: FrozenSet[int]

    def __len__(self) -> int:
        return len(self.nodes)

    def contains(self, uid: int) -> bool:
        return uid in self.nodes

    def interior(self) -> FrozenSet[int]:
        """Nodes strictly inside the hammock."""
        return self.nodes - {self.entry, self.exit}


def _dominator_masks(
    order: List[int],
    index: Dict[int, int],
    preds: "Mapping[int, Iterable[int]]",
    root: int,
) -> Dict[int, int]:
    """Dominator sets as bitmasks, exact in one topological pass on a DAG:
    ``Dom(n) = {n} ∪ ⋂ Dom(p) over predecessors p``."""
    full = (1 << len(order)) - 1
    dom: Dict[int, int] = {}
    for uid in order:
        if uid == root:
            dom[uid] = 1 << index[uid]
            continue
        mask = full
        for p in preds[uid]:
            mask &= dom[p]
        dom[uid] = mask | (1 << index[uid])
    return dom


class HammockAnalysis:
    """Dominators, postdominators, hammock enumeration and nesting levels."""

    def __init__(self, dag: DependenceDAG) -> None:
        self.dag = dag
        self.order = dag.topological_order()
        self.index = {uid: i for i, uid in enumerate(self.order)}
        self.dom = _dominator_masks(
            self.order, self.index, dag.graph.pred, dag.entry
        )
        self.pdom = _dominator_masks(
            list(reversed(self.order)), self.index, dag.graph.succ, dag.exit
        )
        self._hammocks: Optional[List[Hammock]] = None
        self._levels: Optional[Dict[int, int]] = None

    @classmethod
    def of(cls, dag: DependenceDAG) -> "HammockAnalysis":
        """The analysis for ``dag`` at its current version, cached on the
        DAG.  The analysis is a pure function of the graph's structure,
        so re-measurement loops (driver iterations, trial scoring) reuse
        it for free until an edit bumps the version."""
        cached = getattr(dag, "_hammock_analysis", None)
        if cached is not None and cached[0] == dag.version:
            return cached[1]
        analysis = cls(dag)
        dag._hammock_analysis = (dag.version, analysis)
        return analysis

    # ------------------------------------------------------------------
    def dominates(self, a: int, b: int) -> bool:
        """True when every path ENTRY -> b passes through a."""
        return bool(self.dom[b] >> self.index[a] & 1)

    def postdominates(self, a: int, b: int) -> bool:
        """True when every path b -> EXIT passes through a."""
        return bool(self.pdom[b] >> self.index[a] & 1)

    # ------------------------------------------------------------------
    def hammocks(self) -> List[Hammock]:
        """All hammocks (u, v) with u ≠ v, u dom v, v pdom u, sorted
        outermost (largest) first.  Includes the whole-DAG hammock."""
        if self._hammocks is not None:
            return self._hammocks

        n = len(self.order)
        order = self.order
        index = self.index
        # dominated_by[i]: nodes whose dominator set contains order[i] —
        # the subtree of order[i] in the dominator tree.  Dominators of a
        # node are totally ordered and topologically before it, so the
        # immediate dominator is the highest remaining bit of its dom
        # mask and a reverse-topo pass folds each subtree into its
        # parent with one OR per node (instead of scattering every bit
        # of every dom set).  Postdominators mirror this forwards.
        dominated_by = [1 << i for i in range(n)]
        postdominated_by = [1 << i for i in range(n)]
        root_i = index[self.dag.entry]
        for i in range(n - 1, -1, -1):
            if i == root_i:
                continue
            rest = self.dom[order[i]] ^ (1 << i)
            if rest:
                dominated_by[rest.bit_length() - 1] |= dominated_by[i]
        exit_i = index[self.dag.exit]
        for i in range(n):
            if i == exit_i:
                continue
            rest = self.pdom[order[i]] ^ (1 << i)
            if rest:
                low = rest & -rest
                postdominated_by[low.bit_length() - 1] |= postdominated_by[i]

        found: List[Hammock] = []
        for u in order:
            iu = index[u]
            # v is a hammock exit for entry u iff u dominates v (v in
            # u's dominator subtree) and v postdominates u.
            candidates = dominated_by[iu] & self.pdom[u] & ~(1 << iu)
            while candidates:
                low = candidates & -candidates
                candidates ^= low
                iv = low.bit_length() - 1
                region_mask = dominated_by[iu] & postdominated_by[iv]
                nodes = frozenset(
                    order[i] for i in _bits(region_mask)
                )
                if len(nodes) >= 2:
                    found.append(Hammock(u, order[iv], nodes))
        found.sort(key=lambda h: (-len(h.nodes), self.index[h.entry]))
        self._hammocks = found
        obs.count("hammock.enumerations")
        obs.count("hammock.regions", len(found))
        return found

    def nesting_levels(self) -> Dict[int, int]:
        """Number of hammocks containing each node (more = deeper)."""
        if self._levels is not None:
            return self._levels
        levels = {u: 0 for u in self.order}
        for hammock in self.hammocks():
            for uid in hammock.nodes:
                levels[uid] += 1
        self._levels = levels
        obs.peak("hammock.nesting_peak", max(levels.values(), default=0))
        return levels

    def edge_priority(self, a: int, b: int) -> int:
        """The paper's matching priority: difference in nesting level
        between source and sink (0 = same level = highest priority)."""
        levels = self.nesting_levels()
        return abs(levels[a] - levels[b])

    def innermost_hammock_containing(self, nodes: Iterable[int]) -> Hammock:
        """Smallest hammock whose region covers all of ``nodes``."""
        node_set = set(nodes)
        best: Optional[Hammock] = None
        for hammock in self.hammocks():
            if node_set <= hammock.nodes:
                if best is None or len(hammock.nodes) < len(best.nodes):
                    best = hammock
        if best is None:
            # The whole DAG is always a hammock; reaching here means the
            # node set includes something outside the graph.
            raise ValueError(f"no hammock contains {sorted(node_set)}")
        return best


def _bits(mask: int):
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low
