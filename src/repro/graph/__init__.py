"""Graph substrate: dependence DAGs, hammocks, matching, Dilworth."""

from repro.graph import bitset
from repro.graph.bitset import BitsetKuhn, hopcroft_karp_masks, koenig_cover_masks
from repro.graph.dag import CycleError, DependenceDAG, EdgeKind
from repro.graph.dilworth import (
    ChainDecomposition,
    PartialOrder,
    PartialOrderError,
    closure_from_dag_pairs,
    maximum_antichain,
    minimum_chain_decomposition,
    width,
)
from repro.graph.hammock import Hammock, HammockAnalysis
from repro.graph.matching import (
    PrioritizedMatcher,
    hopcroft_karp,
    maximum_matching,
    minimum_vertex_cover,
)

__all__ = [
    "BitsetKuhn",
    "ChainDecomposition",
    "CycleError",
    "DependenceDAG",
    "EdgeKind",
    "Hammock",
    "HammockAnalysis",
    "PartialOrder",
    "PartialOrderError",
    "PrioritizedMatcher",
    "bitset",
    "closure_from_dag_pairs",
    "hopcroft_karp",
    "hopcroft_karp_masks",
    "koenig_cover_masks",
    "maximum_antichain",
    "maximum_matching",
    "minimum_chain_decomposition",
    "minimum_vertex_cover",
    "width",
]
