"""The dependence DAG: URSA's common program representation.

Nodes are instruction uids; two pseudo nodes, ``ENTRY`` and ``EXIT``,
give the DAG the single root and single leaf the paper's algorithms
require (and make the whole DAG a hammock).  Edges are either *data*
dependences (value flow, labelled with the value name) or *sequence*
edges: memory ordering, branch pinning, or the sequentialization edges
URSA's transformations add.

Instructions stored in the DAG are treated as immutable; rewrites (e.g.
retargeting a use at a reloaded value) replace the stored instruction
with a modified copy that keeps the same uid.
"""

from __future__ import annotations

import enum
from dataclasses import replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

import networkx as nx

from repro.ir.instructions import Addr, Instruction, Var
from repro.ir.opcodes import Opcode
from repro.ir.rename import is_single_assignment, rename_trace


class CycleError(Exception):
    """Adding an edge would create a cycle (an illegal sequentialization)."""


class TransactionError(Exception):
    """A mutation violated the active transaction's edge-only contract."""


class DagTransaction:
    """An undo journal for *sequence-edge-only* mutations of one DAG.

    While a transaction is active, ``add_sequence_edge`` appends to the
    journal instead of throwing the transitive-closure cache away: the
    closure masks are updated in place and the old mask of every touched
    node is recorded, so ``rollback`` restores the exact pre-transaction
    structure, closure, *and* ``version`` — any analysis cached against
    the old version becomes valid again.  Mutations the journal cannot
    undo (node insertion, instruction rewrites, edge removal) raise
    :class:`TransactionError` *before* touching the DAG; this is how a
    transform that lies about an edges-only invalidation contract is
    caught (see ``repro.pm``).

    Because rolled-back edges were appended last to the adjacency dicts,
    removing them restores dict insertion order exactly: a trial that is
    applied and rolled back leaves the DAG bit-identical to one that was
    never tried.
    """

    def __init__(self, dag: "DependenceDAG") -> None:
        self.dag = dag
        self._base_version = dag.version
        #: (src, dst) of every edge added, in application order.
        self._edges: List[Tuple[int, int]] = []
        #: first-touch (uid, old_mask) closure deltas, in touch order.
        self._masks: List[Tuple[int, int]] = []
        self._touched: Set[int] = set()
        self.active = True

    # -- journal recording (called by DependenceDAG) -------------------
    def record_edge(self, src: int, dst: int) -> None:
        self._edges.append((src, dst))

    def record_mask(self, uid: int, old_mask: int) -> None:
        if uid not in self._touched:
            self._touched.add(uid)
            self._masks.append((uid, old_mask))

    # -- queries -------------------------------------------------------
    @property
    def base_version(self) -> int:
        return self._base_version

    def added_edges(self) -> List[Tuple[int, int]]:
        return list(self._edges)

    def changed_nodes(self) -> Set[int]:
        """Nodes whose descendant set grew during this transaction."""
        return set(self._touched)

    def old_mask(self, uid: int) -> Optional[int]:
        for touched, old in self._masks:
            if touched == uid:
                return old
        return None

    def new_descendants(self, uid: int) -> Set[int]:
        """Nodes reachable from ``uid`` now but not at transaction start."""
        dag = self.dag
        desc = dag._closure()
        old = self.old_mask(uid)
        if old is None:
            return set()
        return dag._expand_mask(desc[uid] & ~old)

    # -- lifecycle -----------------------------------------------------
    def rollback(self) -> None:
        """Undo every journaled edge; restore closure and version."""
        if not self.active:
            raise TransactionError("transaction already closed")
        dag = self.dag
        for src, dst in reversed(self._edges):
            dag.graph.remove_edge(src, dst)
        if dag._desc_cache is not None:
            for uid, old in reversed(self._masks):
                dag._desc_cache[uid] = old
        dag.version = self._base_version
        dag._txn = None
        self.active = False

    def commit(self) -> None:
        """Keep the journaled edges; the bumped version stands."""
        if not self.active:
            raise TransactionError("transaction already closed")
        self.dag._txn = None
        self.active = False


class EdgeKind(enum.Enum):
    DATA = "data"
    SEQ = "seq"


class DependenceDAG:
    """A mutable dependence DAG over three-address instructions.

    Use :meth:`from_trace` to build one from straight-line code.  All
    reachability queries are cached and invalidated on mutation.
    """

    #: Global monotone version source.  Every structural change to any
    #: DAG draws a fresh number, so a (dag, version) pair identifies one
    #: exact structure forever — rollback can restore an old version
    #: without ever colliding with a different structure, and analysis
    #: caches (``repro.pm``) can be shared across DAGs.
    _version_counter: int = 0

    @classmethod
    def _next_version(cls) -> int:
        cls._version_counter += 1
        return cls._version_counter

    def __init__(self) -> None:
        self.graph = nx.DiGraph()
        self._entry_inst = Instruction(Opcode.ENTRY)
        self._exit_inst = Instruction(Opcode.EXIT)
        self.entry: int = self._entry_inst.uid
        self.exit: int = self._exit_inst.uid
        self.graph.add_node(self.entry, inst=self._entry_inst)
        self.graph.add_node(self.exit, inst=self._exit_inst)
        #: value name -> defining node uid (ENTRY for live-in values).
        self.value_defs: Dict[str, int] = {}
        #: value name -> uids of instructions that read it (may include EXIT).
        self.value_uses: Dict[str, List[int]] = {}
        self.live_out: FrozenSet[str] = frozenset()
        #: uids in original trace order (set by from_trace; spill nodes
        #: added later are appended by insert_spill).
        self.source_order: List[int] = []
        #: monotone structure version; bumped on every mutation.
        self.version: int = DependenceDAG._next_version()
        self._txn: Optional[DagTransaction] = None
        self._desc_cache: Optional[Dict[int, int]] = None
        self._mask_index: Optional[Dict[int, int]] = None
        self._mask_order: Optional[List[int]] = None
        self._topo_cache: Optional[List[int]] = None
        self._topo_version: int = -1
        self._asap_cache: Optional[Dict[int, int]] = None
        self._asap_version: int = -1
        #: (version, HammockAnalysis) — populated by HammockAnalysis.of.
        self._hammock_analysis = None

    # ==================================================================
    # Construction.
    # ==================================================================
    @classmethod
    def from_trace(
        cls,
        instructions: List[Instruction],
        side_exit_liveness: Optional[Mapping[int, FrozenSet[str]]] = None,
        live_out: Optional[Iterable[str]] = None,
        rename: bool = True,
    ) -> "DependenceDAG":
        """Build the dependence DAG of a straight-line trace.

        Args:
            instructions: the trace; ``BR``/``HALT`` terminators are ignored,
                ``CBR`` side exits become DAG nodes.
            side_exit_liveness: per-CBR-uid sets of values live at the
                branch's off-trace target; their definitions are pinned
                above the branch.
            live_out: values still needed after the trace falls through;
                they are "used" by EXIT.  Defaults to no values (memory is
                the only live-out channel), which matches store-terminated
                kernels.
            rename: rewrite the trace into single-assignment form first.
        """
        if rename:
            result = rename_trace(
                [i for i in instructions if i.op not in (Opcode.BR, Opcode.HALT)]
            )
            body = result.instructions
        else:
            body = [i for i in instructions if i.op not in (Opcode.BR, Opcode.HALT)]
            if not is_single_assignment(body):
                raise ValueError(
                    "trace is not single-assignment; pass rename=True"
                )

        dag = cls()
        side_exit_liveness = dict(side_exit_liveness or {})
        live_out_set = frozenset(live_out or ())

        for inst in body:
            dag.graph.add_node(inst.uid, inst=inst)
        dag.source_order = [inst.uid for inst in body]

        # Value definitions and data edges.
        for inst in body:
            if inst.dest is not None:
                dag.value_defs[inst.dest] = inst.uid
        for inst in body:
            # An instruction reading the same value in several operand
            # slots (e.g. ``x = b * b``) is still a single user node.
            for name in dict.fromkeys(inst.uses()):
                def_uid = dag.value_defs.get(name)
                if def_uid is None:
                    # Live-in: ENTRY is the defining node.
                    dag.value_defs[name] = dag.entry
                    def_uid = dag.entry
                if def_uid != inst.uid:
                    dag._add_edge(def_uid, inst.uid, EdgeKind.DATA, value=name)
                dag.value_uses.setdefault(name, []).append(inst.uid)

        # Memory ordering (conservative must/may-alias on symbolic cells).
        memory_ops = [i for i in body if i.is_memory]
        for i, first in enumerate(memory_ops):
            for second in memory_ops[i + 1:]:
                if not first.addr.may_alias(second.addr):
                    continue
                if first.is_memory_write or second.is_memory_write:
                    dag._add_edge(first.uid, second.uid, EdgeKind.SEQ, reason="mem")

        # Branch pinning: branches stay ordered; stores do not cross
        # branches in either direction; faulting ops (DIV/MOD) are never
        # hoisted above a branch (speculating them could trap on a path
        # the source never executes); values live at a side exit are
        # computed before the branch.
        branches = [i for i in body if i.op is Opcode.CBR]
        position = {inst.uid: pos for pos, inst in enumerate(body)}
        for earlier, later in zip(branches, branches[1:]):
            dag._add_edge(earlier.uid, later.uid, EdgeKind.SEQ, reason="branch-order")
        for branch in branches:
            branch_pos = position[branch.uid]
            for other in body:
                other_pos = position[other.uid]
                if other.is_memory_write:
                    if other_pos < branch_pos:
                        dag._add_edge(
                            other.uid, branch.uid, EdgeKind.SEQ,
                            reason="store-branch",
                        )
                    else:
                        dag._add_edge(
                            branch.uid, other.uid, EdgeKind.SEQ,
                            reason="branch-store",
                        )
                elif other.op in (Opcode.DIV, Opcode.MOD) and other_pos > branch_pos:
                    dag._add_edge(
                        branch.uid, other.uid, EdgeKind.SEQ,
                        reason="no-speculation",
                    )
            for name in side_exit_liveness.get(branch.uid, frozenset()):
                def_uid = dag.value_defs.get(name)
                if def_uid is not None and def_uid != branch.uid:
                    dag._add_edge(def_uid, branch.uid, EdgeKind.SEQ, reason="exit-live")

        # Live-out values are read by EXIT.
        dag.live_out = live_out_set
        for name in live_out_set:
            def_uid = dag.value_defs.get(name)
            if def_uid is None:
                dag.value_defs[name] = dag.entry
                def_uid = dag.entry
            dag._add_edge(def_uid, dag.exit, EdgeKind.DATA, value=name)
            dag.value_uses.setdefault(name, []).append(dag.exit)

        dag._connect_entry_exit()
        dag._invalidate()
        return dag

    def _connect_entry_exit(self) -> None:
        """Give every source an ENTRY predecessor and every sink an EXIT
        successor (ignoring the pseudo nodes themselves)."""
        for uid in list(self.graph.nodes):
            if uid in (self.entry, self.exit):
                continue
            preds = [p for p in self.graph.predecessors(uid) if p != self.entry]
            if not preds and not self.graph.has_edge(self.entry, uid):
                self._add_edge(self.entry, uid, EdgeKind.SEQ, reason="root")
            succs = [s for s in self.graph.successors(uid) if s != self.exit]
            if not succs and not self.graph.has_edge(uid, self.exit):
                self._add_edge(uid, self.exit, EdgeKind.SEQ, reason="leaf")
        if self.graph.out_degree(self.entry) == 0:
            self._add_edge(self.entry, self.exit, EdgeKind.SEQ, reason="root")

    def _add_edge(self, src: int, dst: int, kind: EdgeKind, **attrs) -> None:
        if src == dst:
            raise CycleError(f"self edge on {src}")
        existing = self.graph.get_edge_data(src, dst)
        if existing is not None:
            # DATA dominates SEQ; keep the stronger kind.
            if existing["kind"] is EdgeKind.SEQ and kind is EdgeKind.DATA:
                self.graph.edges[src, dst].update(kind=kind, **attrs)
            return
        self.graph.add_edge(src, dst, kind=kind, **attrs)

    # ==================================================================
    # Queries.
    # ==================================================================
    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def nodes(self) -> Iterator[int]:
        return iter(self.graph.nodes)

    def op_nodes(self) -> List[int]:
        """Real instruction nodes, excluding ENTRY/EXIT, in topo order."""
        return [
            uid for uid in self.topological_order()
            if uid not in (self.entry, self.exit)
        ]

    def instruction(self, uid: int) -> Instruction:
        return self.graph.nodes[uid]["inst"]

    def instructions(self) -> List[Instruction]:
        return [self.instruction(u) for u in self.op_nodes()]

    def edges(self) -> Iterator[Tuple[int, int, dict]]:
        return self.graph.edges(data=True)  # type: ignore[return-value]

    def data_edges(self) -> List[Tuple[int, int, str]]:
        return [
            (u, v, d.get("value", ""))
            for u, v, d in self.graph.edges(data=True)
            if d["kind"] is EdgeKind.DATA
        ]

    def preds(self, uid: int) -> List[int]:
        return list(self.graph.predecessors(uid))

    def succs(self, uid: int) -> List[int]:
        return list(self.graph.successors(uid))

    def topological_order(self) -> List[int]:
        """A deterministic topological order (by uid among ready nodes).

        Cached per ``version``: measurement makes several O(E) sweeps
        (closure, reuse DPs, ASAP, hammocks) that all start here.  The
        version key keeps the cache safe inside transactions — every
        ``add_sequence_edge`` bumps the version, and a new edge can
        invalidate an existing order even without changing reachability.
        """
        if self._topo_cache is not None and self._topo_version == self.version:
            return list(self._topo_cache)
        order = self._topological_order_uncached()
        self._topo_cache = order
        self._topo_version = self.version
        return list(order)

    def _topological_order_uncached(self) -> List[int]:
        indegree = {u: self.graph.in_degree(u) for u in self.graph.nodes}
        ready = sorted(u for u, d in indegree.items() if d == 0)
        order: List[int] = []
        import heapq

        heapq.heapify(ready)
        while ready:
            u = heapq.heappop(ready)
            order.append(u)
            for v in self.graph.successors(u):
                indegree[v] -= 1
                if indegree[v] == 0:
                    heapq.heappush(ready, v)
        if len(order) != self.graph.number_of_nodes():
            raise CycleError("dependence graph contains a cycle")
        return order

    # ------------------------------------------------------------------
    # Reachability (bitmask transitive closure, cached).
    # ------------------------------------------------------------------
    def _closure(self) -> Dict[int, int]:
        if self._desc_cache is None:
            order = self.topological_order()
            index = {uid: i for i, uid in enumerate(order)}
            desc: Dict[int, int] = {uid: 0 for uid in order}
            for uid in reversed(order):
                mask = 0
                for succ in self.graph.successors(uid):
                    mask |= desc[succ] | (1 << index[succ])
                desc[uid] = mask
            self._desc_cache = desc
            self._mask_index = index
            self._mask_order = order
        return self._desc_cache

    def closure_masks(self) -> Tuple[Dict[int, int], Dict[int, int], List[int]]:
        """The cached transitive closure as packed bitmasks, plus the
        shared uid<->bit index table.

        Returns ``(desc, index, order)``: ``desc[uid]`` is the bitmask of
        ``uid``'s proper descendants, ``index[uid]`` the bit position of
        ``uid``, and ``order[bit]`` the inverse table (uids in topological
        order).  This is the *one* uid<->bit table the bitset measurement
        kernels share (``graph.bitset``, ``core.reuse``, ``core.kill``):
        masks produced against it compose with ``desc`` directly.

        The table is stable for a given ``version``; mutations outside a
        transaction rebuild it (possibly with a different bit layout), so
        callers must not cache index-space masks across versions.  Inside
        a :class:`DagTransaction` the masks are maintained in place and
        ``rollback`` restores them exactly — the table survives a trial
        unchanged.
        """
        desc = self._closure()
        assert self._mask_index is not None and self._mask_order is not None
        return desc, self._mask_index, self._mask_order

    def reaches(self, a: int, b: int) -> bool:
        """True when there is a (non-empty) path from ``a`` to ``b``."""
        desc = self._closure()
        return bool(desc[a] >> self._mask_index[b] & 1)

    def descendants(self, uid: int) -> Set[int]:
        desc = self._closure()
        mask = desc[uid]
        order = self._mask_order
        result = set()
        while mask:
            low = mask & -mask
            result.add(order[low.bit_length() - 1])
            mask ^= low
        return result

    def ancestors(self, uid: int) -> Set[int]:
        desc = self._closure()
        idx = self._mask_index[uid]
        return {u for u, mask in desc.items() if mask >> idx & 1}

    def independent(self, a: int, b: int) -> bool:
        """True when neither node reaches the other (they may run in
        parallel)."""
        return a != b and not self.reaches(a, b) and not self.reaches(b, a)

    def _expand_mask(self, mask: int) -> Set[int]:
        """Uids named by the bits of a closure mask."""
        self._closure()
        order = self._mask_order
        result: Set[int] = set()
        while mask:
            low = mask & -mask
            result.add(order[low.bit_length() - 1])
            mask ^= low
        return result

    def _invalidate(self) -> None:
        self.version = DependenceDAG._next_version()
        self._desc_cache = None
        self._mask_index = None
        self._mask_order = None

    # ------------------------------------------------------------------
    # Transactions (edge-only undo journal; see DagTransaction).
    # ------------------------------------------------------------------
    def begin_transaction(self) -> DagTransaction:
        """Open an edge-only transaction; nesting is not allowed.

        The transitive closure is warmed first so every subsequent
        ``add_sequence_edge`` can maintain it incrementally and record
        per-node undo deltas.
        """
        if self._txn is not None:
            raise TransactionError("a transaction is already active")
        self._closure()
        self._txn = DagTransaction(self)
        return self._txn

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def _closure_add_edge(self, src: int, dst: int, txn: DagTransaction) -> None:
        """Incrementally fold edge ``src -> dst`` into the warm closure:
        ``src`` and all its ancestors gain ``dst`` and ``dst``'s
        descendants.  Old masks are journaled for rollback."""
        desc = self._desc_cache
        index = self._mask_index
        add_mask = desc[dst] | (1 << index[dst])
        src_bit = index[src]
        for uid, mask in desc.items():
            if uid != src and not (mask >> src_bit & 1):
                continue
            new = mask | add_mask
            if new != mask:
                txn.record_mask(uid, mask)
                desc[uid] = new

    # ------------------------------------------------------------------
    # Timing.
    # ------------------------------------------------------------------
    def asap(
        self, latency: Optional[Callable[[Instruction], int]] = None
    ) -> Dict[int, int]:
        """Earliest start cycle per node along longest paths from ENTRY."""
        if latency is None and self._asap_version == self.version:
            return dict(self._asap_cache)  # type: ignore[arg-type]
        lat = latency or (lambda inst: 0 if inst.is_pseudo else 1)
        order = self.topological_order()
        # One latency lookup per node (not per edge), then a plain dict DP.
        pred_of = self.graph.pred
        node_attr = self.graph.nodes
        ready: Dict[int, int] = {}
        start: Dict[int, int] = {}
        for uid in order:
            best = 0
            for pred in pred_of[uid]:
                r = ready[pred]
                if r > best:
                    best = r
            start[uid] = best
            ready[uid] = best + lat(node_attr[uid]["inst"])
        if latency is None:
            self._asap_cache = start
            self._asap_version = self.version
            return dict(start)
        return start

    def alap(
        self, latency: Optional[Callable[[Instruction], int]] = None
    ) -> Dict[int, int]:
        """Latest start cycle per node that still meets the critical path."""
        lat = latency or (lambda inst: 0 if inst.is_pseudo else 1)
        asap = self.asap(latency)
        horizon = asap[self.exit]
        late: Dict[int, int] = {}
        for uid in reversed(self.topological_order()):
            succs = list(self.graph.successors(uid))
            own = lat(self.instruction(uid))
            if not succs:
                late[uid] = horizon - own
            else:
                late[uid] = min(late[s] for s in succs) - own
        return late

    def critical_path_length(
        self, latency: Optional[Callable[[Instruction], int]] = None
    ) -> int:
        """Length (cycles) of the longest path through the DAG."""
        return self.asap(latency)[self.exit]

    # ==================================================================
    # Mutation (URSA transformations).
    # ==================================================================
    def add_sequence_edge(self, src: int, dst: int, reason: str = "ursa") -> bool:
        """Add a sequentialization edge ``src -> dst``.

        Returns False when the edge already exists or is implied
        (``src`` already reaches ``dst``); raises :class:`CycleError`
        when it would create a cycle.
        """
        if src == dst:
            raise CycleError("cannot sequence a node after itself")
        if self.reaches(dst, src):
            raise CycleError(f"edge {src}->{dst} would create a cycle")
        if self.graph.has_edge(src, dst):
            return False
        redundant = self.reaches(src, dst)
        self.graph.add_edge(src, dst, kind=EdgeKind.SEQ, reason=reason)
        txn = self._txn
        if txn is not None:
            # Journaled: maintain the closure in place (a redundant edge
            # changes no reachability, but dominators — hence hammocks —
            # may shift, so the version still moves).
            txn.record_edge(src, dst)
            if not redundant:
                self._closure_add_edge(src, dst, txn)
            self.version = DependenceDAG._next_version()
        else:
            self._invalidate()
        return not redundant

    def would_cycle(self, src: int, dst: int) -> bool:
        return src == dst or self.reaches(dst, src)

    def _reject_impure_mutation(self, what: str) -> None:
        """Transactions journal sequence-edge additions only; anything
        else is refused *before* mutating, so the DAG stays rollbackable
        (this is the tripwire for transforms that lie about an
        edges-only invalidation contract)."""
        if self._txn is not None:
            raise TransactionError(
                f"{what} inside an edge-only transaction: the journal "
                "cannot undo it"
            )

    def replace_instruction(self, uid: int, new_inst: Instruction) -> None:
        """Swap the instruction stored at ``uid`` (uid must be unchanged)."""
        self._reject_impure_mutation("instruction rewrite")
        if new_inst.uid != uid:
            raise ValueError("replacement must preserve the uid")
        self.graph.nodes[uid]["inst"] = new_inst

    def insert_spill(
        self,
        value: str,
        late_uses: Iterable[int],
        spill_addr: Addr,
        reload_name: Optional[str] = None,
    ) -> Tuple[int, int, str]:
        """Split ``value``'s live range with a spill/reload pair.

        A ``SPILL`` node is added fed by the value's definition; a
        ``RELOAD`` node defines ``reload_name`` (default ``value+"@r"``);
        every use in ``late_uses`` is rewritten to read the reloaded
        value.  The caller is responsible for adding the sequence edges
        that position the pair (before/after the stage being protected).

        Returns ``(spill_uid, reload_uid, reload_name)``.
        """
        self._reject_impure_mutation("spill insertion")
        def_uid = self.value_defs[value]
        # Normalize once: tolerate generators and repeated use uids
        # (retargeting the same use twice would double-count it).
        late = list(dict.fromkeys(late_uses))
        if reload_name is None:
            new_name = f"{value}@r"
            suffix = 0
            while new_name in self.value_defs:
                suffix += 1
                new_name = f"{value}@r{suffix}"
        else:
            new_name = reload_name
        if new_name in self.value_defs:
            raise ValueError(f"reload name {new_name!r} already defined")

        spill_inst = Instruction(Opcode.SPILL, srcs=(Var(value),), addr=spill_addr)
        reload_inst = Instruction(Opcode.RELOAD, dest=new_name, addr=spill_addr)
        self.graph.add_node(spill_inst.uid, inst=spill_inst)
        self.graph.add_node(reload_inst.uid, inst=reload_inst)

        self.graph.add_edge(def_uid, spill_inst.uid, kind=EdgeKind.DATA, value=value)
        # True memory dependence spill -> reload (same cell).
        self.graph.add_edge(
            spill_inst.uid, reload_inst.uid, kind=EdgeKind.SEQ, reason="spill-mem"
        )
        self.value_uses.setdefault(value, []).append(spill_inst.uid)
        self.value_defs[new_name] = reload_inst.uid

        for use_uid in late:
            if use_uid == self.exit:
                # Live-out read: retarget the EXIT data edge.
                if self.graph.has_edge(def_uid, self.exit):
                    self.graph.remove_edge(def_uid, self.exit)
                self.graph.add_edge(
                    reload_inst.uid, self.exit, kind=EdgeKind.DATA, value=new_name
                )
            else:
                old = self.instruction(use_uid)
                rewritten = old.with_renamed_uses({value: new_name})
                self.replace_instruction(use_uid, rewritten)
                if self.graph.has_edge(def_uid, use_uid):
                    data = self.graph.get_edge_data(def_uid, use_uid)
                    if data["kind"] is EdgeKind.DATA and data.get("value") == value:
                        self.graph.remove_edge(def_uid, use_uid)
                self.graph.add_edge(
                    reload_inst.uid, use_uid, kind=EdgeKind.DATA, value=new_name
                )
            self.value_uses[value] = [
                u for u in self.value_uses.get(value, []) if u != use_uid
            ]
            self.value_uses.setdefault(new_name, []).append(use_uid)

        if value in self.live_out and self.exit in late:
            self.live_out = (self.live_out - {value}) | {new_name}

        self.source_order.extend((spill_inst.uid, reload_inst.uid))
        self._connect_entry_exit()
        self._invalidate()
        return spill_inst.uid, reload_inst.uid, new_name

    def insert_remat(
        self,
        value: str,
        late_uses: Iterable[int],
        remat_name: Optional[str] = None,
    ) -> Tuple[int, str]:
        """Split ``value``'s live range by *recomputing* it.

        A clone of the defining instruction is added under a fresh name
        and every use in ``late_uses`` is retargeted at the clone — the
        register-pressure effect of a spill/reload pair without the
        memory traffic.  The caller is responsible for (a) only cloning
        instructions that are safe to re-execute at any later point
        (constants always; loads only when no store may alias them) and
        (b) adding the sequence edges that delay the clone.

        Returns ``(remat_uid, remat_name)``.
        """
        self._reject_impure_mutation("rematerialization")
        def_uid = self.value_defs[value]
        original = self.instruction(def_uid)
        if original.dest != value:
            raise ValueError(f"{value!r} is not defined by node {def_uid}")
        # Normalize once: ``late_uses`` may be a generator, and a
        # repeated use uid must only be retargeted once.
        late = list(dict.fromkeys(late_uses))

        if remat_name is None:
            remat_name = f"{value}@m"
            suffix = 0
            while remat_name in self.value_defs:
                suffix += 1
                remat_name = f"{value}@m{suffix}"

        clone = replace(original, dest=remat_name).fresh_copy()
        self.graph.add_node(clone.uid, inst=clone)
        self.value_defs[remat_name] = clone.uid
        for name in set(clone.uses()):
            src_uid = self.value_defs[name]
            if src_uid != clone.uid:
                self._add_edge(src_uid, clone.uid, EdgeKind.DATA, value=name)
            self.value_uses.setdefault(name, []).append(clone.uid)
        # Re-executing a load must still follow any may-aliasing writes.
        if clone.is_memory_read:
            for uid in self.op_nodes():
                other = self.instruction(uid)
                if (
                    other.is_memory_write
                    and other.addr is not None
                    and other.addr.may_alias(clone.addr)
                    and not self.reaches(clone.uid, uid)
                ):
                    self._add_edge(uid, clone.uid, EdgeKind.SEQ, reason="mem")

        for use_uid in late:
            if use_uid == self.exit:
                if self.graph.has_edge(def_uid, self.exit):
                    self.graph.remove_edge(def_uid, self.exit)
                self.graph.add_edge(
                    clone.uid, self.exit, kind=EdgeKind.DATA, value=remat_name
                )
            else:
                old = self.instruction(use_uid)
                rewritten = old.with_renamed_uses({value: remat_name})
                self.replace_instruction(use_uid, rewritten)
                if self.graph.has_edge(def_uid, use_uid):
                    data = self.graph.get_edge_data(def_uid, use_uid)
                    if data["kind"] is EdgeKind.DATA and data.get("value") == value:
                        self.graph.remove_edge(def_uid, use_uid)
                self.graph.add_edge(
                    clone.uid, use_uid, kind=EdgeKind.DATA, value=remat_name
                )
            self.value_uses[value] = [
                u for u in self.value_uses.get(value, []) if u != use_uid
            ]
            self.value_uses.setdefault(remat_name, []).append(use_uid)

        if value in self.live_out and self.exit in late:
            self.live_out = (self.live_out - {value}) | {remat_name}

        self.source_order.append(clone.uid)
        self._connect_entry_exit()
        self._invalidate()
        return clone.uid, remat_name

    # ==================================================================
    # Copying and verification.
    # ==================================================================
    def copy(self) -> "DependenceDAG":
        """A structural copy sharing (immutable) Instruction objects."""
        clone = DependenceDAG.__new__(DependenceDAG)
        clone.graph = self.graph.copy()
        clone._entry_inst = self._entry_inst
        clone._exit_inst = self._exit_inst
        clone.entry = self.entry
        clone.exit = self.exit
        clone.value_defs = dict(self.value_defs)
        clone.value_uses = {k: list(v) for k, v in self.value_uses.items()}
        clone.live_out = self.live_out
        clone.source_order = list(self.source_order)
        clone.version = DependenceDAG._next_version()
        clone._txn = None
        clone._desc_cache = None
        clone._mask_index = None
        clone._mask_order = None
        clone._topo_cache = None
        clone._topo_version = -1
        clone._asap_cache = None
        clone._asap_version = -1
        clone._hammock_analysis = None
        return clone

    def check_invariants(self) -> None:
        """Raise AssertionError when internal structure is inconsistent."""
        self.topological_order()  # raises on cycles
        for uid in self.graph.nodes:
            inst = self.instruction(uid)
            assert inst.uid == uid, f"uid mismatch at {uid}"
        for u, v, data in self.graph.edges(data=True):
            if data["kind"] is EdgeKind.DATA and v != self.exit:
                value = data["value"]
                inst = self.instruction(v)
                assert value in set(inst.uses()), (
                    f"data edge {u}->{v} for {value!r} not used by {inst}"
                )
        for name, def_uid in self.value_defs.items():
            if def_uid in (self.entry,):
                continue
            inst = self.instruction(def_uid)
            assert inst.dest == name, f"value_defs[{name!r}] mismatch: {inst}"

    def linearize(self) -> List[Instruction]:
        """Any topological order of the real instructions (a legal
        sequential schedule of the transformed trace)."""
        return [self.instruction(u) for u in self.op_nodes()]

    def __str__(self) -> str:
        lines = [f"DAG with {len(self.op_nodes())} ops"]
        for uid in self.op_nodes():
            succs = ", ".join(
                f"{s}{'*' if self.graph.edges[uid, s]['kind'] is EdgeKind.SEQ else ''}"
                for s in self.graph.successors(uid)
                if s != self.exit
            )
            lines.append(f"  [{uid}] {self.instruction(uid)} -> {succs}")
        return "\n".join(lines)
