"""Bipartite matching engines for minimum chain decomposition.

Ford and Fulkerson showed that a minimum chain decomposition of a partial
order can be found via maximum bipartite matching on the relation's pairs
[FoF65].  URSA additionally needs the decomposition to be minimal for
every *nested hammock*, which the paper achieves by adding edges to the
bipartite graph in priority batches (highest priority = edges that do not
cross hammock boundaries) and augmenting after each batch (§3.1).

:class:`PrioritizedMatcher` implements that batched scheme with Kuhn's
augmenting-path algorithm; :func:`hopcroft_karp` provides an independent
maximum-matching implementation used to cross-check maximality in tests.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.resilience import budgets

Node = Hashable
Edge = Tuple[Node, Node]


def _matching_degraded(site: str) -> None:
    """Record that a matcher stopped early on the active deadline.

    A non-maximum matching yields *more* chains in the decomposition,
    so downstream the requirement is overestimated — the conservative
    direction; and the antichains König's construction extracts may be
    impure, but every transform candidate re-validates its edges.
    """
    obs.count("resilience.matching_degraded")
    obs.event("resilience.degraded", site=site)


class PrioritizedMatcher:
    """Maximum bipartite matching with priority-batched edge insertion.

    Left and right vertex sets are implicit (any hashable).  Call
    :meth:`add_edges` for each priority batch, from highest priority to
    lowest; after all batches the matching is maximum over all edges, and
    among maximum matchings it prefers earlier-batch edges in the
    exchange-argument sense the paper relies on: an augmenting pass never
    unmatches a vertex, so chains linked by high-priority (intra-hammock)
    edges persist.
    """

    def __init__(self) -> None:
        self.adjacency: Dict[Node, List[Node]] = {}
        #: left -> right matches.
        self.match_left: Dict[Node, Node] = {}
        #: right -> left matches.
        self.match_right: Dict[Node, Node] = {}
        #: still-unmatched lefts in first-appearance order (augmentation
        #: never unmatches, so a matched left never needs another pass).
        self._pending: Dict[Node, None] = {}
        self._seen: Set[Node] = set()

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Add a batch of edges and re-maximize; returns augment count."""
        for left, right in edges:
            self.adjacency.setdefault(left, []).append(right)
            if left not in self._seen:
                self._seen.add(left)
                if left not in self.match_left:
                    self._pending[left] = None
        return self.maximize()

    def maximize(self) -> int:
        """Augment from the still-unmatched lefts (every one of them:
        any new edge can open an alternating path to any unmatched left,
        but matched lefts can never gain, so they are skipped outright
        instead of rescanned per batch).

        Under an expired deadline the loop stops early and the current
        (possibly non-maximum) matching stands — see
        :func:`_matching_degraded` for why that is safe.
        """
        if len(self.adjacency) != len(self._seen):
            # Adjacency was seeded directly (warm-start callers bypass
            # add_edges); adopt the unseen lefts in insertion order.
            for left in self.adjacency:
                if left not in self._seen:
                    self._seen.add(left)
                    if left not in self.match_left:
                        self._pending[left] = None
        gained = 0
        deadline = budgets.active_deadline()
        degraded = False
        still: Dict[Node, None] = {}
        for left in self._pending:
            if left in self.match_left:
                continue
            if degraded or (deadline is not None and deadline.tick()):
                if not degraded:
                    _matching_degraded("matching.maximize")
                    degraded = True
                still[left] = None
                continue
            if self._augment(left, set()):
                gained += 1
            else:
                still[left] = None
        self._pending = still
        obs.count("matching.augmenting_paths", gained)
        return gained

    def _augment(self, left: Node, visited: Set[Node]) -> bool:
        """Iterative Kuhn augmenting path from an unmatched left vertex."""
        # Depth-first search over alternating paths, iterative to avoid
        # recursion limits on long chains.
        stack: List[Tuple[Node, Iterable[Node]]] = [
            (left, iter(self.adjacency.get(left, ())))
        ]
        parent: Dict[Node, Node] = {}  # right -> left that reached it
        while stack:
            current_left, successors = stack[-1]
            advanced = False
            for right in successors:
                if right in visited:
                    continue
                visited.add(right)
                parent[right] = current_left
                owner = self.match_right.get(right)
                if owner is None:
                    # Found an augmenting path; flip it.
                    node = right
                    while node is not None:
                        prev_left = parent[node]
                        next_right = self.match_left.get(prev_left)
                        self.match_left[prev_left] = node
                        self.match_right[node] = prev_left
                        node = next_right
                    return True
                stack.append((owner, iter(self.adjacency.get(owner, ()))))
                advanced = True
                break
            if not advanced:
                stack.pop()
        return False

    @property
    def size(self) -> int:
        return len(self.match_left)

    def matched_pairs(self) -> List[Edge]:
        return sorted(self.match_left.items(), key=repr)


def maximum_matching(
    edges: Sequence[Edge],
    priority: Optional[Dict[Edge, int]] = None,
) -> Dict[Node, Node]:
    """Maximum bipartite matching (left -> right).

    When ``priority`` maps edges to small-is-better batch numbers, edges
    are inserted batch by batch as in the paper's hammock-aware scheme.
    """
    matcher = PrioritizedMatcher()
    if priority is None:
        matcher.add_edges(edges)
    else:
        batches: Dict[int, List[Edge]] = {}
        for edge in edges:
            batches.setdefault(priority.get(edge, 0), []).append(edge)
        for key in sorted(batches):
            matcher.add_edges(batches[key])
    return dict(matcher.match_left)


def hopcroft_karp(
    left_nodes: Iterable[Node],
    edges: Sequence[Edge],
) -> Dict[Node, Node]:
    """Independent Hopcroft–Karp maximum matching (left -> right).

    Used by the test suite to validate :class:`PrioritizedMatcher`'s
    maximality and by callers that do not need priorities.
    """
    adjacency: Dict[Node, List[Node]] = {u: [] for u in left_nodes}
    # Deduplicate while preserving first-occurrence order: repeated
    # pairs (common when reuse relations are re-derived per class) would
    # otherwise inflate every BFS/DFS sweep.
    seen_rights: Dict[Node, Set[Node]] = {u: set() for u in adjacency}
    for u, v in edges:
        bucket = seen_rights.get(u)
        if bucket is None:
            bucket = seen_rights[u] = set()
            adjacency[u] = []
        if v not in bucket:
            bucket.add(v)
            adjacency[u].append(v)

    INF = float("inf")
    match_left: Dict[Node, Optional[Node]] = {u: None for u in adjacency}
    match_right: Dict[Node, Node] = {}
    dist: Dict[Node, float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in adjacency:
            if match_left[u] is None:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                owner = match_right.get(v)
                if owner is None:
                    found = True
                elif dist.get(owner, INF) == INF:
                    dist[owner] = dist[u] + 1
                    queue.append(owner)
        return found

    def dfs(u: Node) -> bool:
        for v in adjacency[u]:
            owner = match_right.get(v)
            if owner is None or (dist.get(owner) == dist[u] + 1 and dfs(owner)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * (len(adjacency) + 16)))
    deadline = budgets.active_deadline()
    try:
        while bfs():
            if deadline is not None and deadline.tick():
                _matching_degraded("matching.hopcroft_karp")
                break
            for u in adjacency:
                if match_left[u] is None:
                    dfs(u)
    finally:
        sys.setrecursionlimit(old_limit)
    matched = {u: v for u, v in match_left.items() if v is not None}
    obs.count("matching.hk_calls")
    obs.peak("matching.size_peak", len(matched))
    return matched


def minimum_vertex_cover(
    left_nodes: Iterable[Node],
    right_nodes: Iterable[Node],
    edges: Sequence[Edge],
    matching: Dict[Node, Node],
) -> Tuple[Set[Node], Set[Node]]:
    """König's construction of a minimum vertex cover from a maximum
    matching.

    Returns ``(cover_left, cover_right)``.  Used to extract maximum
    antichains (independent sets) for Dilworth's theorem.
    """
    adjacency: Dict[Node, List[Node]] = {u: [] for u in left_nodes}
    for u, v in edges:
        adjacency.setdefault(u, []).append(v)
    match_right: Dict[Node, Node] = {v: u for u, v in matching.items()}

    visited_left: Set[Node] = set()
    visited_right: Set[Node] = set()
    queue = deque(u for u in adjacency if u not in matching)
    visited_left.update(queue)
    while queue:
        u = queue.popleft()
        for v in adjacency[u]:
            if matching.get(u) == v:
                continue  # only non-matching edges left -> right
            if v in visited_right:
                continue
            visited_right.add(v)
            owner = match_right.get(v)
            if owner is not None and owner not in visited_left:
                visited_left.add(owner)
                queue.append(owner)

    cover_left = {u for u in adjacency if u not in visited_left and u in matching}
    cover_right = set(visited_right)
    return cover_left, cover_right
