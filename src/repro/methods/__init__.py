"""``repro.methods`` — the declarative compilation-backend registry.

Every compilation method the system knows is a :class:`Backend` object
registered here, declaring in one place everything the five dispatch
layers used to hard-code separately:

* **pipeline** — ``repro.pipeline`` resolves a backend and runs either
  its URSA :attr:`Backend.policy` (allocate + assign passes) or its
  :attr:`Backend.schedule_pass` (baselines, the exact solver, the
  portfolio racer);
* **fallback** — ``repro.resilience.fallback`` derives its escalation
  ladder from each backend's declared :attr:`Backend.fallback`
  successor instead of a hard-coded tuple;
* **cli** — every ``--method`` choice list is :func:`method_names`;
* **serve** — the wire protocol validates methods against the registry
  and publishes :func:`catalogue` under ``/v1/stats``;
* **analyze** — doomed-rung prediction reasons over capability flags
  (:attr:`Backend.can_spill`, :attr:`Backend.always_feasible`) instead
  of matching method names.

Adding a backend is one :func:`register` call; nothing else in the
tree needs to change (``docs/backends.md`` walks through it).

Capability flags
----------------

``exact``            the backend proves optimality when it terminates;
``always_feasible``  the backend succeeds on any trace whose pinned
                     live-in/live-out sets fit the register file (the
                     ladder's terminal rung must set this);
``anytime``          under an expiring :class:`~repro.resilience.Deadline`
                     the backend returns its best-so-far answer instead
                     of raising;
``supports_engines`` the backend consults the bitset measurement/bounds
                     kernels, so ``repro.graph.bitset.set_engine``
                     affects it;
``can_spill``        the backend may insert spill code.  Backends with
                     ``can_spill=False`` are provably doomed whenever
                     the static register-pressure floor exceeds the
                     register file (``repro.analyze.bounds``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class UnknownMethodError(LookupError):
    """A method name the registry has never heard of.

    Raised at registry-resolution time; carries the offending name and
    the known-method list so every layer (CLI exit 2, serve
    ``bad_request``, pipeline :class:`~repro.pipeline.PipelineError`)
    can render the same structured diagnostic.
    """

    def __init__(self, method: str, known: Sequence[str]) -> None:
        self.method = method
        self.known = tuple(known)
        super().__init__(
            f"unknown method {method!r}; known methods: "
            + ", ".join(self.known)
        )

    def __str__(self) -> str:  # LookupError would repr() the args tuple
        return self.args[0]


@dataclass(frozen=True)
class Backend:
    """One compilation method: capabilities, ladder position, entrypoint.

    Exactly one of :attr:`policy` (URSA allocator methods) or
    :attr:`schedule_pass` (every other method) must be set; the
    pipeline dispatches on which.
    """

    name: str
    summary: str
    # -- capabilities ---------------------------------------------------
    exact: bool = False
    always_feasible: bool = False
    anytime: bool = False
    supports_engines: bool = False
    can_spill: bool = True
    # -- registry tags --------------------------------------------------
    #: member of the default ``compare_methods`` / ``repro compare`` set.
    default_compare: bool = False
    #: next rung of the escalation ladder (None terminates it).
    fallback: Optional[str] = None
    #: relative expected cost (lower = cheaper); orders the portfolio's
    #: serial degradation path and breaks winner ties deterministically.
    cost_hint: int = 100
    # -- entrypoints ----------------------------------------------------
    #: URSA allocator policy (``repro.core.allocator.Policy``) or None.
    policy: Optional[object] = None
    #: pipeline schedule pass: mutates a ``PipelineState`` in place,
    #: filling ``schedule``/``final_dag`` (and optionally
    #: ``allocation``/``backend_report``).
    schedule_pass: Optional[Callable[[Any], None]] = None

    def __post_init__(self) -> None:
        if (self.policy is None) == (self.schedule_pass is None):
            raise ValueError(
                f"backend {self.name!r} must set exactly one of "
                "policy / schedule_pass"
            )

    # ------------------------------------------------------------------
    def ladder(self) -> Tuple[str, ...]:
        """This backend's escalation ladder: itself, then the declared
        fallback successors down to the always-feasible terminal rung."""
        rungs: List[str] = [self.name]
        cursor = self.fallback
        while cursor is not None:
            if cursor in rungs:
                raise ValueError(
                    f"fallback cycle through {cursor!r} in backend "
                    f"{self.name!r}"
                )
            rungs.append(cursor)
            cursor = resolve(cursor).fallback
        return tuple(rungs)

    def capabilities(self) -> Dict[str, bool]:
        return {
            "exact": self.exact,
            "always_feasible": self.always_feasible,
            "anytime": self.anytime,
            "supports_engines": self.supports_engines,
            "can_spill": self.can_spill,
        }

    def to_dict(self) -> Dict[str, Any]:
        """The catalogue entry served under ``/v1/stats`` and emitted by
        ``repro compare --json``."""
        return {
            "name": self.name,
            "summary": self.summary,
            "capabilities": self.capabilities(),
            "default_compare": self.default_compare,
            "fallback": self.fallback,
            "ladder": list(self.ladder()),
            "cost_hint": self.cost_hint,
        }

    def compile(self, source, machine, budget=None, **kw):
        """Compile ``source`` for ``machine`` with this backend.

        ``budget`` is a :class:`~repro.resilience.Deadline` (or None);
        remaining keywords forward to
        :func:`repro.pipeline.compile_trace`.
        """
        from repro.pipeline import compile_trace

        return compile_trace(
            source, machine, method=self.name, deadline=budget, **kw
        )


# ======================================================================
# The registry.
# ======================================================================
_REGISTRY: Dict[str, Backend] = {}
_ORDER: List[str] = []


def register(backend: Backend) -> Backend:
    """Add ``backend`` to the registry (import-time; duplicate = bug)."""
    if backend.name in _REGISTRY:
        raise ValueError(f"backend {backend.name!r} registered twice")
    _REGISTRY[backend.name] = backend
    _ORDER.append(backend.name)
    return backend


def resolve(method: str) -> Backend:
    """The backend registered under ``method``.

    Raises :class:`UnknownMethodError` (with the known-method list) for
    names the registry has never seen — the structured diagnostic every
    dispatch layer renders.
    """
    try:
        return _REGISTRY[method]
    except KeyError:
        raise UnknownMethodError(method, _ORDER) from None


def backends() -> Tuple[Backend, ...]:
    """Every registered backend, in registration order."""
    return tuple(_REGISTRY[name] for name in _ORDER)


def method_names() -> Tuple[str, ...]:
    """Every registered method name, in registration order.

    This is the single source for ``repro.pipeline.METHODS`` and every
    CLI ``--method`` choice list.
    """
    return tuple(_ORDER)


def default_compare_methods() -> Tuple[str, ...]:
    """Methods tagged ``default_compare=True`` — the default set for
    ``compare_methods`` and ``repro compare``."""
    return tuple(
        name for name in _ORDER if _REGISTRY[name].default_compare
    )


def ladder_for(method: str) -> Tuple[str, ...]:
    """The escalation-ladder rung sequence for a requested method.

    Derived from each backend's declared :attr:`Backend.fallback`
    successor; unknown methods raise :class:`UnknownMethodError`
    instead of silently degrading to ``(method, "spill-everywhere")``.
    """
    return resolve(method).ladder()


def catalogue() -> List[Dict[str, Any]]:
    """Machine-readable registry dump (``/v1/stats``, ``compare --json``)."""
    return [backend.to_dict() for backend in backends()]


__all__ = [
    "Backend",
    "UnknownMethodError",
    "backends",
    "catalogue",
    "default_compare_methods",
    "ladder_for",
    "method_names",
    "register",
    "resolve",
]

# Built-in backends register themselves on import: the legacy nine, the
# exact branch-and-bound solver, and the portfolio racer.
from repro.methods import builtin as _builtin  # noqa: E402,F401
