"""The ``portfolio`` backend: race a backend set, best verified answer wins.

The racer fans a configurable member set (default: the exact solver
plus three heuristics) over the same trace.  Under a wall-clock
:class:`~repro.resilience.Deadline` the members run as separate
processes — the deadline stack is process-local state, so racing in
threads would corrupt it — using the same pool idiom as
``repro.serve.shard`` (module-level worker, pickle preflight, broad
pool-failure fallback to serial).  Without a wall-clock budget the
members run serially in-process, which is deterministic and is what
the method-sweep tests exercise.

The winner is the member with the fewest cycles among those that
finish inside the budget (ties broken by declared ``cost_hint``, then
member order).  A member that proves optimality — its cycle count
matches the static ``analyze.bounds`` length bound, or the exact
backend certifies its search — ends the race immediately: nothing can
beat it.  Attribution (who won, every member's outcome, whether the
exact result landed in time) is recorded in the compilation's
``backend_report`` and surfaces in the ``DegradationReport`` and
``repro compare --json``.
"""

from __future__ import annotations

import pickle
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.allocator import AllocationError
from repro.resilience.budgets import DeadlineExpired, active_deadline

#: Raced when the caller does not configure a member set.
DEFAULT_MEMBERS = ("bnb-exact", "ursa", "prepass", "goodman-hsu")

#: Poll interval while waiting on racing workers.
_POLL_SECONDS = 0.01


def _validate_members(members: Sequence[str]) -> Tuple[str, ...]:
    from repro.methods import resolve

    validated = []
    for member in members:
        backend = resolve(member)  # unknown names raise UnknownMethodError
        if backend.name == "portfolio":
            raise AllocationError("portfolio cannot race itself")
        validated.append(backend.name)
    if not validated:
        raise AllocationError("portfolio needs at least one member")
    return tuple(validated)


def _recoverable():
    from repro.graph.dag import CycleError
    from repro.pipeline import PipelineError
    from repro.scheduling.list_scheduler import ScheduleError
    from repro.scheduling.regalloc import RegAllocError

    return (
        PipelineError,
        AllocationError,
        ScheduleError,
        RegAllocError,
        DeadlineExpired,
        CycleError,
    )


class _MemberOutcome:
    """One member's race result (parent-side bookkeeping)."""

    __slots__ = ("method", "outcome", "cycles", "reason", "report", "result")

    def __init__(self, method: str):
        self.method = method
        self.outcome = "timeout"
        self.cycles: Optional[int] = None
        self.reason = ""
        self.report: Optional[Dict] = None
        self.result = None  # (schedule, final_dag, allocation)

    def to_dict(self) -> Dict[str, object]:
        return {
            "method": self.method,
            "outcome": self.outcome,
            "cycles": self.cycles,
            "reason": self.reason,
            "report": self.report,
        }


def _race_worker(payload: Tuple) -> Tuple:
    """Pool entry point; must stay module-level (pickled by name)."""
    method, dag, machine, seconds, engine = payload
    from repro.graph.bitset import set_engine

    set_engine(engine)
    from repro.pipeline import compile_trace
    from repro.resilience.budgets import Deadline

    deadline = Deadline(seconds=seconds) if seconds is not None else None
    try:
        result = compile_trace(
            dag, machine, method=method, verify=False, deadline=deadline
        )
        # The allocation is dropped: it does not always pickle cheaply
        # and the racer only needs the verified schedule + final DAG.
        return (
            method,
            result.cycles,
            result.schedule,
            result.dag,
            result.backend_report,
            None,
        )
    except Exception as exc:  # rendered; the parent records the loss
        return (method, None, None, None, None, f"{type(exc).__name__}: {exc}")


def _compile_member(method: str, dag, machine) -> Tuple:
    """Serial in-process member compile (shares the active deadline)."""
    from repro.pipeline import compile_trace

    result = compile_trace(dag, machine, method=method, verify=False)
    return result.cycles, result.schedule, result.dag, result.allocation, (
        result.backend_report
    )


def _serial_race(
    members: Sequence[str], dag, machine
) -> List[_MemberOutcome]:
    """Run members one after another in-process.

    Used when there is no wall-clock budget to race against, and as the
    degradation path when a pool cannot be spawned.  The shared sticky
    deadline (if any) is already on the scope stack: once it trips,
    later members fail fast with ``DeadlineExpired``.
    """
    obs.count("portfolio.serial_races")
    recoverable = _recoverable()
    outcomes = []
    for member in members:
        outcome = _MemberOutcome(member)
        try:
            cycles, schedule, final_dag, allocation, report = _compile_member(
                member, dag, machine
            )
        except recoverable as exc:
            outcome.outcome = "failed"
            outcome.reason = f"{type(exc).__name__}: {exc}"
            obs.count("portfolio.member_failures")
        else:
            outcome.outcome = "ok"
            outcome.cycles = cycles
            outcome.report = report
            outcome.result = (schedule, final_dag, allocation)
        outcomes.append(outcome)
    return outcomes


def _pool_race(
    members: Sequence[str], dag, machine, deadline, length_bound: int
) -> Optional[List[_MemberOutcome]]:
    """Race members as processes under ``deadline``.

    Returns None when the pool cannot run at all (the caller degrades
    to the serial path under the same deadline).
    """
    from repro.graph.bitset import active_engine
    from repro.serve.shard import POOL_ERRORS

    seconds = deadline.remaining_seconds()
    payloads = [
        (member, dag, machine, seconds, active_engine())
        for member in members
    ]
    try:
        pickle.dumps(payloads[0])
    except Exception:
        obs.count("portfolio.pool_fallback")
        obs.event("portfolio.pool_fallback", reason="unpicklable payload")
        return None

    import multiprocessing

    outcomes = {member: _MemberOutcome(member) for member in members}
    try:
        pool = multiprocessing.Pool(processes=min(4, len(payloads)))
    except (AssertionError, *POOL_ERRORS) as exc:
        # AssertionError: daemonic pool workers (e.g. inside a serve
        # worker) are not allowed children; degrade to serial.
        obs.count("portfolio.pool_fallback")
        obs.event("portfolio.pool_fallback", reason=f"{type(exc).__name__}: {exc}")
        return None
    try:
        pending = {
            payload[0]: pool.apply_async(_race_worker, (payload,))
            for payload in payloads
        }
        while pending:
            for member, handle in list(pending.items()):
                if not handle.ready():
                    continue
                del pending[member]
                try:
                    method, cycles, schedule, final_dag, report, error = (
                        handle.get()
                    )
                except POOL_ERRORS as exc:
                    error = f"{type(exc).__name__}: {exc}"
                    cycles = schedule = final_dag = report = None
                outcome = outcomes[member]
                if error is not None:
                    outcome.outcome = "failed"
                    outcome.reason = error
                    obs.count("portfolio.member_failures")
                else:
                    outcome.outcome = "ok"
                    outcome.cycles = cycles
                    outcome.report = report
                    outcome.result = (schedule, final_dag, None)
                    proved = bool(report and report.get("proved"))
                    if cycles == length_bound or proved:
                        # A certified-optimal answer ends the race.
                        obs.count("portfolio.early_finish")
                        pending = {}
                        break
            if pending and deadline.expired():
                break
            if pending:
                time.sleep(_POLL_SECONDS)
    finally:
        pool.terminate()
        pool.join()
    for member, outcome in outcomes.items():
        if outcome.outcome == "timeout":
            outcome.reason = "deadline expired before the member finished"
    return list(outcomes.values())


def run_portfolio_pass(state) -> None:
    """Pipeline schedule pass for the ``portfolio`` backend."""
    from repro.analyze.bounds import length_lower_bound
    from repro.methods import resolve

    options = state.options.get("backend") or {}
    members = _validate_members(
        options.get("portfolio_members") or DEFAULT_MEMBERS
    )
    deadline = active_deadline()
    length_bound = length_lower_bound(state.dag, state.machine)

    obs.count("portfolio.races")
    with obs.span("portfolio.race", members=len(members)):
        outcomes = None
        mode = "serial"
        if deadline is not None and deadline.remaining_seconds() is not None:
            outcomes = _pool_race(
                members, state.dag, state.machine, deadline, length_bound
            )
            mode = "race"
        if outcomes is None:
            outcomes = _serial_race(members, state.dag, state.machine)
            mode = "serial"

    finishers = [o for o in outcomes if o.outcome == "ok"]
    if not finishers:
        details = "; ".join(
            f"{o.method}: {o.reason or o.outcome}" for o in outcomes
        )
        if deadline is not None and deadline.expired():
            raise DeadlineExpired("portfolio", deadline)
        raise AllocationError(f"every portfolio member lost: {details}")

    order = {member: i for i, member in enumerate(members)}
    winner = min(
        finishers,
        key=lambda o: (o.cycles, resolve(o.method).cost_hint, order[o.method]),
    )
    schedule, final_dag, allocation = winner.result
    state.schedule = schedule
    state.final_dag = final_dag
    state.allocation = allocation
    exact_delivered = any(
        o.outcome == "ok" and o.report and o.report.get("proved")
        for o in outcomes
    )
    state.backend_report = {
        "backend": "portfolio",
        "mode": mode,
        "winner": winner.method,
        "winner_cycles": winner.cycles,
        "exact_delivered": exact_delivered,
        "length_lower_bound": length_bound,
        "members": [o.to_dict() for o in outcomes],
    }
    obs.event(
        "portfolio.win",
        winner=winner.method,
        cycles=winner.cycles,
        mode=mode,
        exact=exact_delivered,
    )
