"""Built-in backend declarations.

The nine legacy methods (URSA policies + baselines), the exact
branch-and-bound solver, and the portfolio racer, each declared once
and registered into :mod:`repro.methods`.  Registration order here is
the public method order (``repro.pipeline.METHODS``, CLI choice lists,
the ``/v1/stats`` catalogue).

Schedule passes late-import their scheduler modules so importing the
registry stays cheap and cycle-free (``repro.pipeline`` itself imports
this package).
"""

from __future__ import annotations

from repro.core.allocator import Policy
from repro.methods import Backend, register


# ----------------------------------------------------------------------
# Baseline schedule passes (moved here from the pipeline's old if/elif
# chain; each fills state.schedule and state.final_dag).
# ----------------------------------------------------------------------
def _schedule_prepass(state) -> None:
    from repro.scheduling.prepass import compile_prepass

    state.schedule = compile_prepass(state.dag, state.machine)
    state.final_dag = state.dag


def _schedule_postpass(state) -> None:
    from repro.scheduling.postpass import compile_postpass

    state.schedule = compile_postpass(state.dag, state.machine)
    state.final_dag = state.dag


def _schedule_goodman_hsu(state) -> None:
    from repro.scheduling.goodman_hsu import compile_goodman_hsu

    state.schedule = compile_goodman_hsu(state.dag, state.machine)
    state.final_dag = state.dag


def _schedule_naive(state) -> None:
    # Allocate on source order, pack without reordering.
    from repro.scheduling.packer import pack_in_order
    from repro.scheduling.regalloc import LinearScanAllocator

    dag = state.dag
    order = dag.source_order or sorted(dag.op_nodes())
    source_insts = [dag.instruction(uid) for uid in order]
    live_ins = sorted(
        name for name, d in dag.value_defs.items() if d == dag.entry
    )
    outcome = LinearScanAllocator(state.machine).run(
        source_insts, live_ins=live_ins, live_outs=sorted(dag.live_out)
    )
    state.schedule = pack_in_order(outcome.instructions, state.machine, outcome)
    state.final_dag = dag


def _schedule_spill_everywhere(state) -> None:
    from repro.resilience.fallback import spill_everywhere_schedule

    state.schedule = spill_everywhere_schedule(state.dag, state.machine)
    state.final_dag = state.dag


def _schedule_bnb(state) -> None:
    from repro.methods.bnb import run_bnb_pass

    run_bnb_pass(state)


def _schedule_portfolio(state) -> None:
    from repro.methods.portfolio import run_portfolio_pass

    run_portfolio_pass(state)


# ----------------------------------------------------------------------
# URSA allocator family.  Ladders are byte-equal to the pre-registry
# `_LADDER` tuples in repro.resilience.fallback.
# ----------------------------------------------------------------------
register(Backend(
    name="ursa",
    summary="URSA integrated register+FU measurement/reduction allocator",
    anytime=True,
    supports_engines=True,
    default_compare=True,
    fallback="ursa-phased",
    cost_hint=80,
    policy=Policy.INTEGRATED,
))
register(Backend(
    name="ursa-phased",
    summary="URSA with registers reduced to feasibility before FUs",
    anytime=True,
    supports_engines=True,
    fallback="ursa-spill",
    cost_hint=70,
    policy=Policy.PHASED,
))
register(Backend(
    name="ursa-seq",
    summary="URSA restricted to sequentialization transforms (no spills)",
    anytime=True,
    supports_engines=True,
    can_spill=False,
    fallback="ursa-spill",
    cost_hint=60,
    policy=Policy.SEQ_ONLY,
))
register(Backend(
    name="ursa-spill",
    summary="URSA restricted to spill transforms",
    anytime=True,
    supports_engines=True,
    fallback="spill-everywhere",
    cost_hint=60,
    policy=Policy.SPILL_ONLY,
))

# ----------------------------------------------------------------------
# Baselines.
# ----------------------------------------------------------------------
register(Backend(
    name="prepass",
    summary="schedule first (list scheduler), then allocate registers",
    default_compare=True,
    fallback="spill-everywhere",
    cost_hint=30,
    schedule_pass=_schedule_prepass,
))
register(Backend(
    name="postpass",
    summary="allocate registers first, then schedule under the bindings",
    default_compare=True,
    fallback="spill-everywhere",
    cost_hint=40,
    schedule_pass=_schedule_postpass,
))
register(Backend(
    name="goodman-hsu",
    summary="Goodman-Hsu integrated DAG scheduling/allocation baseline",
    default_compare=True,
    fallback="spill-everywhere",
    cost_hint=35,
    schedule_pass=_schedule_goodman_hsu,
))
register(Backend(
    name="naive",
    summary="source-order packing with linear-scan registers",
    fallback="spill-everywhere",
    cost_hint=20,
    schedule_pass=_schedule_naive,
))
register(Backend(
    name="spill-everywhere",
    summary="every value through memory; the always-feasible terminal rung",
    always_feasible=True,
    cost_hint=10,
    schedule_pass=_schedule_spill_everywhere,
))

# ----------------------------------------------------------------------
# Combinatorial backends (this PR; see docs/backends.md).
# ----------------------------------------------------------------------
register(Backend(
    name="bnb-exact",
    summary="branch-and-bound exact allocator+scheduler (proves "
    "optimality on small traces)",
    exact=True,
    anytime=True,
    can_spill=False,
    fallback="ursa",
    cost_hint=900,
    schedule_pass=_schedule_bnb,
))
register(Backend(
    name="portfolio",
    summary="race a backend set under a shared deadline; first verified "
    "answer wins",
    anytime=True,
    fallback="spill-everywhere",
    cost_hint=500,
    schedule_pass=_schedule_portfolio,
))
