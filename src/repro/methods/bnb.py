"""The ``bnb-exact`` backend: branch-and-bound allocation + scheduling.

A pure-python exact solver in the spirit of combinatorial register
allocation / instruction scheduling (Castañeda Lozano et al.): depth
first search over per-cycle issue sets, seeded by the heuristic list
scheduler's incumbent, pruned by the static ``repro.analyze.bounds``
lower bounds, a per-state dominance memo, and per-class register
capacity.  On termination the result is provably optimal (its length
matches either the exhausted search's best or the static lower bound);
under an expiring :class:`~repro.resilience.Deadline` it degrades to
the best schedule found so far (anytime), tagging the certificate
``proved=False``.

Model (matches :mod:`repro.scheduling.optimal` and the list
scheduler's binding semantics):

* unit latencies and unit occupancy only — the paper's base model;
* reads happen at issue, writes land at end of cycle, so an op's
  destination may take over a register its own (dying) source held;
* no spilling (``can_spill=False``): if the static pressure floor
  already exceeds the register file the backend fails fast and the
  escalation ladder moves on to ``ursa``.

Unlike the evaluation oracle in ``scheduling/optimal.py`` this solver
is *sound for compilation*: live-in values occupy registers from cycle
0 and dead definitions hold their register through writeback, so every
plan it returns can be realized as a verifier-clean
:class:`~repro.scheduling.list_scheduler.Schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.allocator import AllocationError
from repro.graph.dag import DependenceDAG
from repro.machine.model import MachineModel
from repro.machine.vliw import RegRef
from repro.resilience.budgets import DeadlineExpired, active_deadline
from repro.scheduling.list_scheduler import (
    ListScheduler,
    Schedule,
    ScheduledOp,
    ScheduleError,
)

#: Default cap on op count (the DP state space is exponential).
MAX_BNB_OPS = 20

#: How many node expansions between deadline checks.
_DEADLINE_STRIDE = 256


class ExactSearchError(AllocationError):
    """The exact search cannot handle this instance (too large,
    non-unit latencies, or no spill-free schedule exists).

    Subclasses :class:`AllocationError` so the escalation ladder treats
    it as a recoverable rung failure.
    """


@dataclass(frozen=True)
class BnbCertificate:
    """What the search established about its answer."""

    proved: bool            # length is the true optimum
    length: int
    lower_bound: int
    explored: int           # DFS node expansions
    source: str             # "search" | "incumbent"

    def to_dict(self) -> Dict[str, object]:
        return {
            "proved": self.proved,
            "length": self.length,
            "lower_bound": self.lower_bound,
            "explored": self.explored,
            "source": self.source,
        }


# ======================================================================
# Problem extraction.
# ======================================================================
@dataclass(frozen=True)
class _Problem:
    n: int
    uids: Tuple[int, ...]            # op index -> DAG uid
    preds: Tuple[int, ...]           # predecessor mask per op index
    fu_class: Tuple[str, ...]
    fu_limit: Dict[str, int]
    dest_class: Tuple[Optional[str], ...]   # register class of dest, or None
    users: Tuple[int, ...]           # ops reading op i's value
    live_out: Tuple[bool, ...]
    #: (users mask, pinned-forever, register class) per live-in value.
    live_ins: Tuple[Tuple[int, bool, str], ...]
    registers: Dict[str, int]
    heights: Tuple[int, ...]         # chain length from op i to a sink


def _build_problem(
    dag: DependenceDAG, machine: MachineModel, max_ops: int
) -> _Problem:
    ops = list(dag.op_nodes())
    if len(ops) > max_ops:
        raise ExactSearchError(
            f"{len(ops)} ops exceed bnb-exact's cap of {max_ops} "
            "(raise via backend_options={'bnb_max_ops': ...})"
        )
    for fu in machine.fu_classes:
        if fu.latency != 1 or fu.occupancy != 1:
            raise ExactSearchError(
                "bnb-exact assumes unit latencies and occupancy "
                f"(class {fu.name!r} has latency {fu.latency}, "
                f"occupancy {fu.occupancy})"
            )
    index = {uid: i for i, uid in enumerate(ops)}

    preds = [0] * len(ops)
    for uid in ops:
        for pred in dag.preds(uid):
            if pred in index:
                preds[index[uid]] |= 1 << index[pred]

    users = [0] * len(ops)
    live_out = [False] * len(ops)
    dest_class: List[Optional[str]] = [None] * len(ops)
    for uid in ops:
        inst = dag.instruction(uid)
        if inst.dest is None:
            continue
        dest_class[index[uid]] = machine.reg_class_of(inst.dest)
        for use in dag.value_uses.get(inst.dest, ()):
            if use in index:
                users[index[uid]] |= 1 << index[use]
        if inst.dest in dag.live_out:
            live_out[index[uid]] = True

    live_ins: List[Tuple[int, bool, str]] = []
    for name, def_uid in sorted(dag.value_defs.items()):
        if def_uid != dag.entry:
            continue
        mask = 0
        for use in dag.value_uses.get(name, ()):
            if use in index:
                mask |= 1 << index[use]
        # A use-less live-in (or a live-out one) holds its register for
        # the whole schedule, exactly as the list scheduler binds it.
        pinned = name in dag.live_out or mask == 0
        live_ins.append((mask, pinned, machine.reg_class_of(name)))

    # Chain height in ops (unit latency): cycles still needed once an
    # op becomes the search frontier.  Masks are downward-closed, so a
    # static height is a valid remaining-length bound.
    succs = [0] * len(ops)
    for i in range(len(ops)):
        for j in range(len(ops)):
            if (preds[j] >> i) & 1:
                succs[i] |= 1 << j
    heights = [0] * len(ops)
    todo = list(range(len(ops)))
    while todo:
        rest = []
        for i in todo:
            pending = succs[i]
            tallest = 0
            ok = True
            j = 0
            while pending:
                if pending & 1:
                    if heights[j] == 0:
                        ok = False
                        break
                    tallest = max(tallest, heights[j])
                pending >>= 1
                j += 1
            if ok:
                heights[i] = tallest + 1
            else:
                rest.append(i)
        if len(rest) == len(todo):  # pragma: no cover - DAG is acyclic
            raise ExactSearchError("dependence cycle in exact search")
        todo = rest

    return _Problem(
        n=len(ops),
        uids=tuple(ops),
        preds=tuple(preds),
        fu_class=tuple(
            machine.fu_class_for(dag.instruction(uid).op).name for uid in ops
        ),
        fu_limit={fu.name: fu.count for fu in machine.fu_classes},
        dest_class=tuple(dest_class),
        users=tuple(users),
        live_out=tuple(live_out),
        live_ins=tuple(live_ins),
        registers=dict(machine.registers),
        heights=tuple(heights),
    )


# ======================================================================
# Capacity and bound helpers.
# ======================================================================
def _live_per_class(problem: _Problem, mask: int) -> Dict[str, int]:
    """Registers held per class once exactly ``mask`` has issued."""
    live: Dict[str, int] = {cls: 0 for cls in problem.registers}
    for umask, pinned, cls in problem.live_ins:
        if pinned or umask & ~mask:
            live[cls] = live.get(cls, 0) + 1
    for i in range(problem.n):
        cls = problem.dest_class[i]
        if cls is None or not (mask >> i) & 1:
            continue
        if problem.users[i] & ~mask or problem.live_out[i]:
            live[cls] = live.get(cls, 0) + 1
    return live


def _fits_registers(problem: _Problem, mask: int, subset: Sequence[int]) -> bool:
    """Can ``subset`` issue from cumulative ``mask`` (which includes it)?

    Post-state liveness plus this cycle's dead definitions (their
    registers are held through writeback, freeing before the next
    cycle's issue) must fit every class.
    """
    live = _live_per_class(problem, mask)
    for i in subset:
        cls = problem.dest_class[i]
        if cls is None:
            continue
        if not (problem.users[i] & ~mask) and not problem.live_out[i]:
            live[cls] = live.get(cls, 0) + 1  # dead def, held this cycle
    return all(
        live.get(cls, 0) <= count for cls, count in problem.registers.items()
    )


def _remaining_bound(problem: _Problem, mask: int) -> int:
    """Cycles any completion of ``mask`` still needs (chain + resources)."""
    chain = 0
    per_class: Dict[str, int] = {}
    for i in range(problem.n):
        if (mask >> i) & 1:
            continue
        if problem.heights[i] > chain:
            chain = problem.heights[i]
        cls = problem.fu_class[i]
        per_class[cls] = per_class.get(cls, 0) + 1
    bound = chain
    for cls, ops in per_class.items():
        need = -(-ops // problem.fu_limit[cls])
        if need > bound:
            bound = need
    return bound


def _issue_sets(problem: _Problem, mask: int, ready: Sequence[int]):
    """Ready subsets legal on FUs *and* registers, largest first."""
    width = sum(problem.fu_limit.values())
    for size in range(min(len(ready), width), 0, -1):
        for subset in combinations(ready, size):
            counts: Dict[str, int] = {}
            ok = True
            for i in subset:
                cls = problem.fu_class[i]
                counts[cls] = counts.get(cls, 0) + 1
                if counts[cls] > problem.fu_limit[cls]:
                    ok = False
                    break
            if not ok:
                continue
            new_mask = mask
            for i in subset:
                new_mask |= 1 << i
            if _fits_registers(problem, new_mask, subset):
                yield subset, new_mask


# ======================================================================
# The search.
# ======================================================================
def _search(
    problem: _Problem,
    incumbent_length: Optional[int],
    global_lb: int,
) -> Tuple[Optional[List[Tuple[int, ...]]], Optional[int], bool, int]:
    """Branch and bound over per-cycle issue sets.

    Returns ``(best_plan, best_length, proved, explored)``; the plan is
    None when the incumbent was never beaten.
    """
    full = (1 << problem.n) - 1
    INF = 1 << 30
    best_len = incumbent_length if incumbent_length is not None else INF
    best_plan: Optional[List[Tuple[int, ...]]] = None
    seen: Dict[int, int] = {}
    deadline = active_deadline()
    explored = 0
    proved = True
    plan: List[Tuple[int, ...]] = []

    def dfs(mask: int, cycle: int) -> None:
        nonlocal best_len, best_plan, explored, proved
        if best_len == global_lb:
            return  # optimum already certified; unwind
        explored += 1
        if (
            deadline is not None
            and explored % _DEADLINE_STRIDE == 0
            and deadline.expired()
        ):
            raise DeadlineExpired("bnb-exact", deadline)
        if mask == full:
            if cycle < best_len:
                best_len = cycle
                best_plan = list(plan)
            return
        if cycle + _remaining_bound(problem, mask) >= best_len:
            return
        if seen.get(mask, INF) <= cycle:
            return
        seen[mask] = cycle
        ready = [
            i
            for i in range(problem.n)
            if not (mask >> i) & 1 and not (problem.preds[i] & ~mask)
        ]
        for subset, new_mask in _issue_sets(problem, mask, ready):
            plan.append(subset)
            dfs(new_mask, cycle + 1)
            plan.pop()

    try:
        dfs(0, 0)
    except DeadlineExpired:
        proved = False
        obs.count("bnb.deadline_stops")
    if best_len >= INF:
        return None, None, proved, explored
    # An expired search that already reached the static lower bound is
    # still a proof of optimality.
    if not proved and best_len == global_lb:
        proved = True
    return best_plan, best_len, proved, explored


# ======================================================================
# Realizing a plan as a Schedule.
# ======================================================================
def _realize(
    dag: DependenceDAG,
    machine: MachineModel,
    problem: _Problem,
    plan: List[Tuple[int, ...]],
) -> Schedule:
    """Bind a per-cycle issue plan to concrete registers and FU slots.

    Mirrors the list scheduler's semantics exactly: live-ins allocated
    at cycle 0 sorted by name, sources freed at the issue of their last
    use (so a dest may reuse a dying source's register), dead
    definitions freed after writeback.
    """
    free: Dict[str, List[int]] = {
        cls: list(range(count)) for cls, count in machine.registers.items()
    }

    def alloc(cls: str) -> RegRef:
        pool = free.get(cls)
        if not pool:  # pragma: no cover - capacity proved during search
            raise ExactSearchError(f"register class {cls!r} exhausted")
        return RegRef(pool.pop(0), cls)

    def release(ref: RegRef) -> None:
        pool = free[ref.cls]
        pool.append(ref.index)
        pool.sort()

    reg_of: Dict[str, RegRef] = {}
    reg_assignment: Dict[str, RegRef] = {}
    live_in_regs: Dict[str, RegRef] = {}
    remaining_users: Dict[str, set] = {
        name: set(dag.value_uses.get(name, ()))
        for name in dag.value_defs
    }
    for name, def_uid in sorted(dag.value_defs.items()):
        if def_uid != dag.entry:
            continue
        ref = alloc(machine.reg_class_of(name))
        reg_of[name] = ref
        reg_assignment[name] = ref
        live_in_regs[name] = ref

    scheduled: List[ScheduledOp] = []
    deferred: List[RegRef] = []
    for cycle, subset in enumerate(plan):
        for ref in deferred:  # dead defs from last cycle, past writeback
            release(ref)
        deferred = []
        issued = {problem.uids[i] for i in subset}
        insts = {i: dag.instruction(problem.uids[i]) for i in subset}
        # Reads happen at issue: values whose final users all issue this
        # cycle free their registers before any destination allocates.
        for i, inst in insts.items():
            for name in set(inst.uses()):
                remaining_users[name].discard(problem.uids[i])
        for i, inst in insts.items():
            for name in set(inst.uses()):
                pending = remaining_users[name] - {dag.exit}
                if (
                    not pending
                    and name not in dag.live_out
                    and name in reg_of
                ):
                    release(reg_of.pop(name))
        fu_cursor: Dict[str, int] = {}
        for i in sorted(subset):
            inst = insts[i]
            cls = machine.fu_class_for(inst.op).name
            slot = fu_cursor.get(cls, 0)
            fu_cursor[cls] = slot + 1
            scheduled.append(
                ScheduledOp(inst, cycle, cls, slot, problem.uids[i])
            )
            if inst.dest is not None:
                ref = alloc(machine.reg_class_of(inst.dest))
                reg_assignment[inst.dest] = ref
                pending = remaining_users[inst.dest] - {dag.exit}
                if pending or inst.dest in dag.live_out:
                    reg_of[inst.dest] = ref
                else:
                    deferred.append(ref)  # dead def: free after writeback
        del issued

    live_out_regs: Dict[str, RegRef] = {}
    for name in dag.live_out:
        if name not in reg_of:  # pragma: no cover - pinned during search
            raise ExactSearchError(f"live-out {name!r} not in a register")
        live_out_regs[name] = reg_of[name]

    scheduled.sort(key=lambda op: (op.cycle, op.fu_class, op.fu_index))
    return Schedule(
        machine=machine,
        ops=scheduled,
        length=len(plan),
        reg_assignment=reg_assignment,
        live_in_regs=live_in_regs,
        live_out_regs=live_out_regs,
        spill_count=0,
    )


# ======================================================================
# The backend entrypoint (schedule pass).
# ======================================================================
def bnb_compile(
    dag: DependenceDAG,
    machine: MachineModel,
    max_ops: int = MAX_BNB_OPS,
) -> Tuple[Schedule, BnbCertificate]:
    """Exact spill-free schedule for ``dag``; anytime under a deadline."""
    from repro.analyze.bounds import (
        length_lower_bound,
        register_pressure_floor,
    )

    for cls, available in machine.registers.items():
        floor = register_pressure_floor(dag, machine, cls)
        if floor > available:
            raise ExactSearchError(
                f"register class {cls!r} pressure floor {floor} > "
                f"{available} available; bnb-exact cannot spill"
            )

    problem = _build_problem(dag, machine, max_ops)
    global_lb = length_lower_bound(dag, machine)

    incumbent: Optional[Schedule] = None
    try:
        incumbent = ListScheduler(
            dag, machine, respect_registers=True, allow_spill=False
        ).run()
    except ScheduleError:
        pass  # heuristic failed spill-free; the search starts cold

    if incumbent is not None and incumbent.length == global_lb:
        obs.count("bnb.incumbent_optimal")
        certificate = BnbCertificate(
            proved=True,
            length=incumbent.length,
            lower_bound=global_lb,
            explored=0,
            source="incumbent",
        )
        return incumbent, certificate

    with obs.span("bnb.search", ops=problem.n):
        plan, length, proved, explored = _search(
            problem,
            incumbent.length if incumbent is not None else None,
            global_lb,
        )
    obs.count("bnb.nodes", explored)

    if plan is not None:
        schedule: Schedule = _realize(dag, machine, problem, plan)
        source = "search"
    elif incumbent is not None:
        # The search never beat the heuristic; exhausting it proves the
        # incumbent optimal.
        schedule, length = incumbent, incumbent.length
        source = "incumbent"
    else:
        if not proved:
            raise ExactSearchError(
                "deadline expired before any spill-free schedule was found"
            )
        raise ExactSearchError(
            "no spill-free schedule exists for this register file"
        )

    assert length is not None
    if proved:
        obs.count("bnb.proved")
    certificate = BnbCertificate(
        proved=proved,
        length=length,
        lower_bound=global_lb,
        explored=explored,
        source=source,
    )
    obs.event(
        "bnb.done",
        length=length,
        proved=proved,
        explored=explored,
        lower_bound=global_lb,
    )
    return schedule, certificate


def run_bnb_pass(state) -> None:
    """Pipeline schedule pass for the ``bnb-exact`` backend."""
    options = state.options.get("backend") or {}
    max_ops = int(options.get("bnb_max_ops", MAX_BNB_OPS))
    schedule, certificate = bnb_compile(state.dag, state.machine, max_ops)
    state.schedule = schedule
    state.final_dag = state.dag
    state.backend_report = {
        "backend": "bnb-exact",
        **certificate.to_dict(),
    }
