"""The analysis manager: version-keyed caching of derived artifacts.

Every expensive artifact the pipeline derives from a dependence DAG —
the hammock tree, ASAP depths, liveness tables, ``Kill()`` assignments,
per-class reuse measurements, the full ``measure_all`` list — is a pure
function of the DAG's structure.  :class:`AnalysisManager` memoizes
them keyed by ``(analysis name, key, dag.version)``: the version is a
global monotone counter bumped on every mutation, so a cache entry can
never be served for a structure it was not computed on, and a
transaction rollback (which *restores* the old version) automatically
revalidates everything cached against the pre-transaction state.

Requests are surfaced as ``pm.cache_hit`` / ``pm.cache_miss``
(``pm.invalidations`` counts misses that evicted a stale entry) so
cache effectiveness is measurable (``benchmarks/bench_pm_cache.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro import obs
from repro.graph.dag import DependenceDAG
from repro.graph.hammock import HammockAnalysis
from repro.machine.model import MachineModel


@dataclass(frozen=True)
class AnalysisSpec:
    """One registered analysis family (for listing and docs)."""

    name: str
    description: str
    #: transform effects that dirty it (matches ``Invalidation.analyses``).
    invalidated_by: Tuple[str, ...] = ("*",)


#: The registered analysis families, in dependency order.
ANALYSES: Tuple[AnalysisSpec, ...] = (
    AnalysisSpec(
        "reachability",
        "bitmask transitive closure (maintained incrementally in "
        "transactions)",
        ("reachability",),
    ),
    AnalysisSpec(
        "hammock",
        "dominator/postdominator hammock tree and edge priorities",
        ("reachability", "hammock"),
    ),
    AnalysisSpec(
        "asap",
        "earliest-start depths (unit latency)",
        ("reachability", "asap"),
    ),
    AnalysisSpec(
        "critical_path",
        "machine-latency critical path length",
        ("reachability", "asap"),
    ),
    AnalysisSpec(
        "values",
        "liveness tables: per-class values with defs and uses",
        ("liveness",),
    ),
    AnalysisSpec(
        "kill",
        "Kill() assignment per register class (minimum cover)",
        ("reachability", "kill", "liveness"),
    ),
    AnalysisSpec(
        "measure",
        "per-class reuse order + minimum chain decomposition "
        "(measure_all results)",
        ("reachability", "kill", "liveness", "measure"),
    ),
)


class AnalysisManager:
    """Caches analysis results keyed by the DAG's monotone version.

    One manager may serve many DAGs (versions are globally unique), so
    a whole-program compile shares one manager across its traces.
    """

    #: Entry cap; versions are globally unique, so old entries are never
    #: *wrong*, just unlikely to be asked for again — evict the oldest.
    MAX_ENTRIES = 512

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, Hashable, int], Any] = {}
        #: (name, key) -> most recent version a result was computed at.
        self._latest: Dict[Tuple[str, Hashable], int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(
        self,
        dag: DependenceDAG,
        name: str,
        compute: Callable[[], Any],
        key: Hashable = None,
    ) -> Any:
        """The cached result of ``name`` for ``dag``'s current version,
        computing (and caching) it on a miss.

        Results for *older* versions stay cached too: a transaction
        rollback restores the old version, and its entries become
        servable again without recomputation.
        """
        full_key = (name, key, dag.version)
        if full_key in self._cache:
            self.hits += 1
            obs.count("pm.cache_hit")
            return self._cache[full_key]
        family = (name, key)
        if family in self._latest and self._latest[family] != dag.version:
            # The structure moved since we last computed this analysis.
            self.invalidations += 1
            obs.count("pm.invalidations")
        self.misses += 1
        obs.count("pm.cache_miss")
        value = compute()
        self._cache[full_key] = value
        self._latest[family] = dag.version
        while len(self._cache) > self.MAX_ENTRIES:
            self._cache.pop(next(iter(self._cache)))
            self.evictions += 1
            obs.count("pm.cache_evict")
        return value

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop cached entries (all of them, or one family's)."""
        if name is None:
            stale = list(self._cache)
            self._latest.clear()
        else:
            stale = [k for k in self._cache if k[0] == name]
            for family in [f for f in self._latest if f[0] == name]:
                del self._latest[family]
        for k in stale:
            del self._cache[k]
        if stale:
            self.invalidations += len(stale)
            obs.count("pm.invalidations", len(stale))

    # ------------------------------------------------------------------
    # Convenience wrappers for the standard analyses.
    # ------------------------------------------------------------------
    def hammock(self, dag: DependenceDAG) -> HammockAnalysis:
        return self.get(dag, "hammock", lambda: HammockAnalysis(dag))

    def asap(self, dag: DependenceDAG) -> Dict[int, int]:
        return self.get(dag, "asap", dag.asap)

    def critical_path(self, dag: DependenceDAG, machine: MachineModel) -> int:
        return self.get(
            dag,
            "critical_path",
            lambda: dag.critical_path_length(machine.latency_of),
            key=machine.name,
        )

    def measure_all(self, dag: DependenceDAG, machine: MachineModel) -> List:
        """The full measurement list (shares this manager's hammock)."""
        from repro.core.measure import measure_all as _measure_all

        return self.get(
            dag,
            "measure",
            lambda: _measure_all(dag, machine, analysis=self.hammock(dag)),
            key=machine.name,
        )

    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
            "entries": len(self._cache),
        }
