"""Region-scoped incremental re-measurement of candidate transforms.

The legacy trial path copies the whole DAG per candidate and reruns
``measure_all`` from scratch.  :class:`IncrementalMeasurer` instead
applies an *edges-only* candidate inside a
:class:`~repro.graph.dag.DagTransaction`, scores it against per-class
snapshots taken at the last committed measurement, and rolls back:

* **Functional units** — adding sequence edges only grows reachability,
  so the reuse relation gains pairs and its width never increases.  A
  class with no excess stays excess-free (exact, no work); a class whose
  relevant reachability did not change keeps its width exactly; anything
  else re-maximizes the base matching *warm-started* with only the delta
  pairs the transaction's closure journal exposes.
* **Registers** — if no value's def or use changed reachability and no
  contested ``Kill()`` candidate could have moved in the ASAP order, the
  base width is exact.  Otherwise ``Kill()`` is re-selected: an
  unchanged assignment means the reuse relation grew monotonically
  (warm-startable); a changed one forces a cold re-match of that class
  only.

Widths are what the driver's score needs; the decompositions and
priorities that committed measurements carry are *not* recomputed here —
a committed winner always gets a full ``measure_all`` at its new
version, so trial shortcuts can never leak into downstream state.

A transform that lies about an edges-only contract trips the
transaction's mutation guard; the trial rolls back cleanly and raises
:class:`InvalidationError` (surfaced as ``pm.invalidation_violations``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.core.kill import candidate_killers, select_kill
from repro.core.measure import ResourceKind, ResourceRequirement
from repro.core.reuse import can_reuse_registers
from repro.core.transforms.base import TransformCandidate, TransformError
from repro.graph import bitset
from repro.graph.dag import (
    CycleError,
    DagTransaction,
    DependenceDAG,
    TransactionError,
)
from repro.graph.dilworth import width as order_width
from repro.machine.model import MachineModel


class InvalidationError(Exception):
    """A transform violated its declared invalidation contract."""


@dataclass(frozen=True)
class TrialOutcome:
    """Score of one improving in-place trial (already rolled back)."""

    weighted_excess: int
    critical_path: int
    widths: Tuple[int, ...]
    classes_reused: int
    classes_recomputed: int


@dataclass
class _ClassBase:
    """Per-resource-class snapshot of the last committed measurement."""

    req: ResourceRequirement
    elements: List
    element_set: Set
    #: element -> bit position (the order's own index table).
    eidx: Dict
    #: base relation as successor bitmasks, one per element index — a
    #: *copy* of the order's masks, safe to grow with delta pairs.
    masks: List[int]
    #: committed matching as an index array (-1 = chain tail).
    succ_idx: List[int]
    width: int
    available: int
    # -- registers only -------------------------------------------------
    values: Optional[List] = None
    relevant: Optional[Set[int]] = None
    def_nodes: Optional[Set[int]] = None
    def_to_names: Optional[Dict[int, List[str]]] = None
    kill_dict: Optional[Dict[str, int]] = None
    contested_candidates: Optional[Set[int]] = None


class IncrementalMeasurer:
    """Scores edges-only candidates in place against a rebased snapshot."""

    def __init__(self, machine: MachineModel, register_weight: int = 1) -> None:
        self.machine = machine
        self.register_weight = register_weight
        self.dag: Optional[DependenceDAG] = None
        self._bases: List[_ClassBase] = []
        self._base_weighted = 0

    # ------------------------------------------------------------------
    def rebase(
        self,
        dag: DependenceDAG,
        requirements: Sequence[ResourceRequirement],
    ) -> None:
        """Snapshot the committed measurements trials will diff against."""
        self.dag = dag
        self._bases = [self._snapshot(dag, req) for req in requirements]
        self._base_weighted = sum(
            self._weigh(base.req.kind, max(0, base.width - base.available))
            for base in self._bases
        )

    def _weigh(self, kind: ResourceKind, excess: int) -> int:
        if kind is ResourceKind.REGISTER:
            return self.register_weight * excess
        return excess

    def _snapshot(
        self, dag: DependenceDAG, req: ResourceRequirement
    ) -> _ClassBase:
        elements = list(req.order.elements)
        index = {e: i for i, e in enumerate(elements)}
        succ_idx = [-1] * len(elements)
        for a, b in req.decomposition.successor.items():
            succ_idx[index[a]] = index[b]
        base = _ClassBase(
            req=req,
            elements=elements,
            element_set=set(elements),
            eidx=index,
            masks=list(req.order.masks),
            succ_idx=succ_idx,
            width=req.required,
            available=req.available,
        )
        if req.kind is ResourceKind.REGISTER:
            values = list((req.values or {}).values())
            base.values = values
            base.relevant = {v.def_uid for v in values} | {
                u for v in values for u in v.use_uids
            }
            base.def_nodes = {v.def_uid for v in values}
            def_to_names: Dict[int, List[str]] = {}
            for v in values:
                def_to_names.setdefault(v.def_uid, []).append(v.name)
            base.def_to_names = def_to_names
            base.kill_dict = dict(req.kill.kill) if req.kill else {}
            contested: Set[int] = set()
            if req.kill is not None:
                by_name = req.values or {}
                for name in req.kill.contested:
                    info = by_name.get(name)
                    if info is not None:
                        contested.update(candidate_killers(dag, info))
            base.contested_candidates = contested
        return base

    # ------------------------------------------------------------------
    def trial(self, candidate: TransformCandidate) -> Optional[TrialOutcome]:
        """Apply ``candidate`` in a transaction, score it, roll back.

        Returns ``None`` when the candidate does not strictly improve
        the weighted excess (the driver's progress filter).  Raises
        :class:`TransformError` for illegal edits and
        :class:`InvalidationError` when the edits violate the declared
        edges-only contract.
        """
        dag = self.dag
        assert dag is not None, "rebase() before trial()"
        txn = dag.begin_transaction()
        try:
            try:
                candidate.edits(dag)
            except CycleError as exc:
                raise TransformError(f"{candidate.kind}: {exc}") from exc
            except TransactionError as exc:
                obs.count("pm.invalidation_violations")
                obs.event(
                    "pm.invalidation_violation",
                    kind=candidate.kind,
                    description=candidate.description,
                    detail=str(exc),
                )
                raise InvalidationError(
                    f"{candidate.kind} declared "
                    f"{candidate.invalidation.describe()} but: {exc}"
                ) from exc

            obs.count("pm.trial.incremental")
            widths: List[int] = []
            reused = warm = cold = 0
            for base in self._bases:
                if base.req.kind is ResourceKind.FUNCTIONAL_UNIT:
                    width, mode = self._fu_width(dag, txn, base)
                else:
                    width, mode = self._reg_width(dag, txn, base)
                widths.append(width)
                if mode == "hit":
                    reused += 1
                elif mode == "warm":
                    warm += 1
                else:
                    cold += 1
            recomputed = warm + cold
            obs.count("pm.trial.hits", reused)
            obs.count("pm.trial.warm", warm)
            obs.count("pm.trial.cold", cold)
            obs.count("pm.trial.recomputed", recomputed)

            weighted = sum(
                self._weigh(base.req.kind, max(0, w - base.available))
                for base, w in zip(self._bases, widths)
            )
            if weighted >= self._base_weighted:
                return None  # must make progress
            cp = dag.critical_path_length(self.machine.latency_of)
            return TrialOutcome(
                weighted_excess=weighted,
                critical_path=cp,
                widths=tuple(widths),
                classes_reused=reused,
                classes_recomputed=recomputed,
            )
        finally:
            if txn.active:
                txn.rollback()

    # ------------------------------------------------------------------
    def _warm_width(
        self, base: _ClassBase, delta_pairs: List[Tuple]
    ) -> int:
        """Width after growing the relation by ``delta_pairs``, by
        augmenting the base maximum matching (never unmatching).

        The snapshot's masks are ORed with the journal-delta bits and the
        committed matching is re-maximized in place — only the lefts the
        base decomposition left unmatched are augmented from."""
        eidx = base.eidx
        adjacency = list(base.masks)
        for a, b in delta_pairs:
            adjacency[eidx[a]] |= 1 << eidx[b]
        match_left = list(base.succ_idx)
        match_right = [-1] * len(match_left)
        for i, j in enumerate(match_left):
            if j >= 0:
                match_right[j] = i
        matcher = bitset.BitsetKuhn.from_state(adjacency, match_left, match_right)
        matcher.maximize()
        return len(base.elements) - matcher.size

    def _fu_width(
        self, dag: DependenceDAG, txn: DagTransaction, base: _ClassBase
    ) -> Tuple[int, str]:
        if base.width <= base.available:
            # Edge adds only shrink FU width: a fitting class stays
            # fitting, and its exact excess stays zero.
            return base.width, "hit"
        delta_pairs: List[Tuple[int, int]] = []
        for a in sorted(txn.changed_nodes() & base.element_set):
            for b in sorted(txn.new_descendants(a) & base.element_set):
                delta_pairs.append((a, b))
        if not delta_pairs:
            return base.width, "hit"
        return self._warm_width(base, delta_pairs), "warm"

    # ------------------------------------------------------------------
    def _reg_width(
        self, dag: DependenceDAG, txn: DagTransaction, base: _ClassBase
    ) -> Tuple[int, str]:
        changed = txn.changed_nodes()
        if not (changed & base.relevant) and not self._asap_sensitive(
            dag, txn, base
        ):
            # No def/use reachability moved and no contested Kill()
            # candidate could have shifted in the ASAP tie-break: the
            # assignment and the relation are both unchanged.
            return base.width, "hit"

        values = base.values or []
        kill_new = select_kill(dag, values)
        if kill_new.kill == base.kill_dict:
            delta_pairs = self._reg_delta_pairs(txn, base)
            if not delta_pairs:
                return base.width, "hit"
            return self._warm_width(base, delta_pairs), "warm"
        order = can_reuse_registers(dag, values, kill_new.kill)
        return order_width(order), "cold"

    def _asap_sensitive(
        self, dag: DependenceDAG, txn: DagTransaction, base: _ClassBase
    ) -> bool:
        """Could an added edge have moved a contested killer's depth?

        ASAP depths only grow below an added edge's destination, so the
        contested candidates (whose depths break ``select_kill`` ties)
        are safe unless one sits at or under some ``dst``.
        """
        contested = base.contested_candidates
        if not contested:
            return False
        for _, dst in txn.added_edges():
            if dst in contested or (dag.descendants(dst) & contested):
                return True
        return False

    def _reg_delta_pairs(
        self, txn: DagTransaction, base: _ClassBase
    ) -> List[Tuple[str, str]]:
        """New reuse pairs under an unchanged ``Kill()``: each value's
        killer reaching new definitions."""
        changed = txn.changed_nodes()
        pairs: List[Tuple[str, str]] = []
        for value in base.values or []:
            killer = base.kill_dict[value.name]
            if killer not in changed:
                continue
            new_defs = txn.new_descendants(killer) & base.def_nodes
            for def_uid in sorted(new_defs):
                for name in base.def_to_names[def_uid]:
                    if name != value.name:
                        pairs.append((value.name, name))
        return pairs
