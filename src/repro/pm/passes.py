"""A small LLVM-new-PM-style pass manager for the compilation pipeline.

A *pass* is a named step that transforms :class:`PipelineState`
(build the DAG, allocate, schedule, assign, codegen, verify).  The
:class:`PassManager` runs them in order, wraps each in the ``phase.*``
observability span the dashboards already key on, and runs registered
*instruments* between passes — that is how the ``repro.verify`` packs
plug in as an inter-pass check (``verify_each``) without any pass
knowing about them.

Analyses are not passes: they are cached artifacts owned by the
:class:`~repro.pm.analysis.AnalysisManager` carried in the state, keyed
by the DAG's monotone version (see ``repro.pm.analysis``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.pm.analysis import AnalysisManager


@dataclass(frozen=True)
class PassSpec:
    """Metadata for one registered pass (shown by ``repro passes``)."""

    name: str
    description: str
    #: state fields the pass reads / fills in.
    requires: Tuple[str, ...] = ()
    provides: Tuple[str, ...] = ()
    #: False for bookkeeping steps that never carried a phase span.
    emit_span: bool = True


#: Every pass spec registered at import time, in registration order.
PASS_REGISTRY: List[PassSpec] = []


def register_pass_spec(spec: PassSpec) -> PassSpec:
    if all(existing.name != spec.name for existing in PASS_REGISTRY):
        PASS_REGISTRY.append(spec)
    return spec


@dataclass
class PipelineState:
    """The artifacts a pipeline run accumulates, one field per product."""

    machine: Any
    method: str
    source: Any = None
    live_out: Tuple[str, ...] = ()
    options: Dict[str, Any] = field(default_factory=dict)
    analysis_manager: AnalysisManager = field(default_factory=AnalysisManager)
    # -- artifacts, in the order passes produce them --------------------
    dag: Any = None
    allocation: Any = None
    schedule: Any = None
    final_dag: Any = None
    program: Any = None
    simulation: Any = None
    verified: Optional[bool] = None
    #: backend-specific attribution (exact-search certificate, portfolio
    #: win report); set by schedule passes that have one to report.
    backend_report: Optional[Dict[str, Any]] = None


class Pass:
    """One pipeline step: a spec plus a function mutating the state."""

    def __init__(self, spec: PassSpec, run: Callable[[PipelineState], None]):
        self.spec = spec
        self._run = run

    def run(self, state: PipelineState) -> None:
        missing = [
            name for name in self.spec.requires if getattr(state, name) is None
        ]
        if missing:
            raise RuntimeError(
                f"pass {self.spec.name!r} requires {missing} but the "
                "pipeline has not produced them"
            )
        self._run(state)


#: An instrument runs after every pass: (completed pass, state) -> None.
Instrument = Callable[[Pass, PipelineState], None]


class PassManager:
    """Runs passes in order with spans and inter-pass instruments."""

    def __init__(self, instruments: Tuple[Instrument, ...] = ()) -> None:
        self.passes: List[Pass] = []
        self.instruments: List[Instrument] = list(instruments)

    def add(self, spec: PassSpec, run: Callable[[PipelineState], None]) -> "PassManager":
        self.passes.append(Pass(spec, run))
        return self

    def add_instrument(self, instrument: Instrument) -> "PassManager":
        self.instruments.append(instrument)
        return self

    def run(self, state: PipelineState) -> PipelineState:
        for pipeline_pass in self.passes:
            spec = pipeline_pass.spec
            if spec.emit_span:
                with obs.span(f"phase.{spec.name}", method=state.method):
                    pipeline_pass.run(state)
            else:
                pipeline_pass.run(state)
            for instrument in self.instruments:
                instrument(pipeline_pass, state)
        return state

    def describe(self) -> List[str]:
        return [
            f"{p.spec.name}: {p.spec.description}" for p in self.passes
        ]


def verify_instrument(pipeline_pass: Pass, state: PipelineState) -> None:
    """The ``verify_each`` inter-pass check: re-lint the DAG after every
    pass that produced or rewrote one; raises on the first violation."""
    if not {"dag", "final_dag"} & set(pipeline_pass.spec.provides):
        return
    from repro.verify import verify_dag

    dag = state.final_dag if state.final_dag is not None else state.dag
    if dag is None:
        return
    report = verify_dag(dag, state.machine)
    report.raise_if_errors(f"after pass {pipeline_pass.spec.name}")
