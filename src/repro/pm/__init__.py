"""repro.pm — pass manager, analysis caching, incremental re-measurement.

Three pieces (see ``docs/passes.md``):

* :mod:`repro.pm.analysis` — :class:`AnalysisManager`, a cache of
  derived artifacts keyed by the DAG's monotone version;
* :mod:`repro.pm.incremental` — :class:`IncrementalMeasurer`, scoring
  edges-only transform candidates in place under a DAG transaction
  instead of copy + ``measure_all``;
* :mod:`repro.pm.passes` — :class:`PassManager` composing the pipeline
  as explicit, instrumented passes.
"""

from repro.pm.analysis import ANALYSES, AnalysisManager, AnalysisSpec
from repro.pm.incremental import (
    IncrementalMeasurer,
    InvalidationError,
    TrialOutcome,
)
from repro.pm.passes import (
    PASS_REGISTRY,
    Pass,
    PassManager,
    PassSpec,
    PipelineState,
    register_pass_spec,
    verify_instrument,
)

__all__ = [
    "ANALYSES",
    "AnalysisManager",
    "AnalysisSpec",
    "IncrementalMeasurer",
    "InvalidationError",
    "TrialOutcome",
    "PASS_REGISTRY",
    "Pass",
    "PassManager",
    "PassSpec",
    "PipelineState",
    "register_pass_spec",
    "verify_instrument",
]
