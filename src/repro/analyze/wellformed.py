"""Well-formedness checks over a parsed :class:`~repro.ir.program.Program`.

These run *before* any DAG construction or compilation, on the CFG and
per-block instruction lists only, so serve admission control can reject
hopeless requests without paying a compile.  Severities follow the
repo's execution model:

* **errors** make compilation meaningless or guaranteed to fail:
  a value used on some path before any definition when the program
  *does* define it elsewhere (``A101``), or an opcode no FU class of
  the target machine executes (``A106``);
* **warnings** are legal (traces may have external exits, stores feed
  unknown consumers) but usually bugs: branches to undefined labels
  (``A102``), unreachable blocks (``A103``), dead stores (``A104``);
* **info** notes dead values (``A105``) — common in generated code.

Values that are *never* defined anywhere are legal live-ins (the DAG
builder defines them at the virtual ENTRY node) and produce no
diagnostic at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro import obs
from repro.analysis.liveness import block_live_sets, block_use_def
from repro.analyze.diagnostics import (
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    span_for,
)
from repro.ir.opcodes import Opcode
from repro.ir.program import Program
from repro.machine.model import MachineConfigError, MachineModel

#: Opcodes never dispatched to a functional unit (dropped or virtual in
#: the dependence DAG), hence exempt from the machine-executability check.
_UNSCHEDULED_OPS = frozenset(
    {Opcode.BR, Opcode.HALT, Opcode.ENTRY, Opcode.EXIT}
)


def check_program(
    program: Program,
    machine: Optional[MachineModel] = None,
    source: Optional[str] = None,
    filename: Optional[str] = None,
) -> List[Diagnostic]:
    """All well-formedness diagnostics for ``program``, source order."""
    with obs.span("analyze.wellformed", blocks=len(program.blocks)):
        lines = source.splitlines() if source is not None else None
        diagnostics: List[Diagnostic] = []
        diagnostics.extend(_check_use_before_def(program, lines, filename))
        diagnostics.extend(_check_branch_targets(program, lines, filename))
        diagnostics.extend(_check_reachability(program, lines, filename))
        diagnostics.extend(_check_dead_stores(program, lines, filename))
        diagnostics.extend(_check_unused_values(program, lines, filename))
        if machine is not None:
            diagnostics.extend(
                _check_machine_ops(program, machine, lines, filename)
            )
        diagnostics.sort(
            key=lambda d: (d.span.line_no if d.span else 0, d.code)
        )
        obs.count("analyze.diagnostics", len(diagnostics))
    return diagnostics


# ----------------------------------------------------------------------
def _check_use_before_def(
    program: Program, lines, filename
) -> List[Diagnostic]:
    """A101: a defined value is live into the entry block.

    Liveness at entry means some path reaches a use before any
    definition; the program defining the name elsewhere rules out the
    legal trace-input (live-in) interpretation.
    """
    live_in, _ = block_live_sets(program)
    defined: Set[str] = {
        inst.dest
        for inst in program.all_instructions()
        if inst.dest is not None
    }
    suspects = sorted(live_in[program.entry.label] & defined)
    out: List[Diagnostic] = []
    for name in suspects:
        anchor = _first_exposed_use(program, name)
        span = span_for(
            anchor.line_no if anchor else None, lines, filename, anchor=name
        )
        out.append(
            Diagnostic(
                "A101",
                ERROR,
                f"value {name!r} may be used before its definition "
                f"(live into entry block {program.entry.label!r})",
                span,
            )
        )
    return out


def _first_exposed_use(program: Program, name: str):
    """The first instruction (program order) with an upward-exposed use
    of ``name`` in a block that ``name`` is live into."""
    live_in, _ = block_live_sets(program)
    for block in program:
        if name not in live_in[block.label]:
            continue
        for inst in block.instructions:
            if name in inst.uses():
                return inst
            if inst.dest == name:
                break
    return None


def _check_branch_targets(
    program: Program, lines, filename
) -> List[Diagnostic]:
    """A102: branches to labels the program does not define."""
    labels = {block.label for block in program}
    out: List[Diagnostic] = []
    for block in program:
        for inst in block.instructions:
            if inst.target is not None and inst.target not in labels:
                out.append(
                    Diagnostic(
                        "A102",
                        WARNING,
                        f"branch to undefined label {inst.target!r} "
                        "leaves the program (external exit)",
                        span_for(
                            inst.line_no, lines, filename, anchor=inst.target
                        ),
                    )
                )
    return out


def _check_reachability(
    program: Program, lines, filename
) -> List[Diagnostic]:
    """A103: blocks with no CFG path from the entry block."""
    cfg = program.cfg()
    entry = program.entry.label
    reachable = {entry} | nx.descendants(cfg, entry)
    out: List[Diagnostic] = []
    for block in program:
        if block.label not in reachable:
            out.append(
                Diagnostic(
                    "A103",
                    WARNING,
                    f"block {block.label!r} is unreachable from entry "
                    f"block {entry!r}",
                    span_for(
                        block.line_no, lines, filename, anchor=block.label
                    ),
                )
            )
    return out


def _check_dead_stores(
    program: Program, lines, filename
) -> List[Diagnostic]:
    """A104: a store overwritten by a same-cell store with no
    intervening read of that cell, within one basic block.

    Conservative: any control instruction clears pending stores (the
    cell may be read in another block), and only exact base+offset
    matches count (the repo's alias model — distinct symbolic bases or
    offsets never alias).
    """
    out: List[Diagnostic] = []
    for block in program:
        pending: Dict[Tuple[str, int], object] = {}
        for inst in block.instructions:
            if inst.is_control:
                pending.clear()
                continue
            if inst.addr is None:
                continue
            cell = (inst.addr.base, inst.addr.offset)
            if inst.is_memory_read:
                pending.pop(cell, None)
            elif inst.is_memory_write:
                earlier = pending.get(cell)
                if earlier is not None:
                    out.append(
                        Diagnostic(
                            "A104",
                            WARNING,
                            f"store to {inst.addr} is dead: overwritten "
                            f"at line {inst.line_no or '?'} before any "
                            "read",
                            span_for(
                                getattr(earlier, "line_no", None),
                                lines,
                                filename,
                            ),
                        )
                    )
                pending[cell] = inst
    return out


def _check_unused_values(
    program: Program, lines, filename
) -> List[Diagnostic]:
    """A105 (info): defined values no instruction ever reads."""
    used: Set[str] = set()
    for inst in program.all_instructions():
        used.update(inst.uses())
    out: List[Diagnostic] = []
    seen: Set[str] = set()
    for block in program:
        for inst in block.instructions:
            name = inst.dest
            if name is None or name in used or name in seen:
                continue
            seen.add(name)
            out.append(
                Diagnostic(
                    "A105",
                    INFO,
                    f"value {name!r} is defined but never used",
                    span_for(inst.line_no, lines, filename, anchor=name),
                )
            )
    return out


def _check_machine_ops(
    program: Program,
    machine: MachineModel,
    lines,
    filename,
) -> List[Diagnostic]:
    """A106: opcodes no FU class of ``machine`` executes.

    Mirrors the exact check the measurement phase would hit
    (``MachineModel.fu_class_for``), restricted to opcodes the DAG
    actually schedules.
    """
    out: List[Diagnostic] = []
    reported: Set[Opcode] = set()
    for block in program:
        for inst in block.instructions:
            if inst.op in _UNSCHEDULED_OPS or inst.op in reported:
                continue
            try:
                machine.fu_class_for(inst.op)
            except MachineConfigError:
                reported.add(inst.op)
                out.append(
                    Diagnostic(
                        "A106",
                        ERROR,
                        f"no FU class of machine {machine.name!r} "
                        f"executes opcode {inst.op.value!r}",
                        span_for(inst.line_no, lines, filename),
                    )
                )
    return out
