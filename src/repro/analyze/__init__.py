"""``repro.analyze`` — ahead-of-time static analysis of ursa-lang.

Everything here runs *before* compilation: well-formedness diagnostics
with ``file:line`` caret spans (:mod:`repro.analyze.wellformed`), and
sound resource/length lower bounds derived from the paper's reuse
orders (:mod:`repro.analyze.bounds`).  The `repro analyze` CLI, the
``POST /v1/analyze`` serve endpoint, and serve admission control all
call :func:`analyze_source`; the resilience ladder consumes
:class:`FeasibilityReport` hints via
``compile_with_fallback(hints=...)``.  See ``docs/analysis.md``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro import obs
from repro.analyze.bounds import (
    FeasibilityReport,
    FUClassBound,
    LengthBound,
    RegisterClassBound,
    feasibility_report,
    fu_lower_bound,
    length_lower_bound,
    necessary_reuse_order,
    register_lower_bound,
    register_pressure_floor,
)
from repro.analyze.diagnostics import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalyzeReport,
    Diagnostic,
    SourceSpan,
    parse_error_diagnostic,
    render_parse_error,
)
from repro.analyze.wellformed import check_program
from repro.ir.program import Program
from repro.machine.model import MachineModel

__all__ = [
    "AnalyzeReport",
    "CODES",
    "Diagnostic",
    "FUClassBound",
    "FeasibilityReport",
    "LengthBound",
    "RegisterClassBound",
    "SourceSpan",
    "analyze_program",
    "analyze_source",
    "check_program",
    "feasibility_report",
    "fu_lower_bound",
    "length_lower_bound",
    "necessary_reuse_order",
    "parse_error_diagnostic",
    "register_lower_bound",
    "register_pressure_floor",
    "render_parse_error",
]


def analyze_program(
    program: Program,
    machine: Optional[MachineModel] = None,
    source: Optional[str] = None,
    filename: Optional[str] = None,
    bounds: bool = True,
) -> AnalyzeReport:
    """Analyze a parsed program: diagnostics plus per-trace bounds.

    ``bounds=True`` (and a ``machine``) additionally builds one
    dependence DAG per basic block — the same per-trace granularity the
    program compiler uses — and attaches a
    :class:`~repro.analyze.bounds.FeasibilityReport` per block label.
    Bound computation is skipped when well-formedness errors exist (the
    DAGs would be meaningless).
    """
    with obs.span("analyze.program", blocks=len(program.blocks)):
        report = AnalyzeReport(filename=filename)
        report.diagnostics = check_program(
            program, machine=machine, source=source, filename=filename
        )
        if bounds and machine is not None and report.ok:
            from repro.analysis.liveness import block_live_sets
            from repro.graph.dag import DependenceDAG

            _, live_out = block_live_sets(program)
            for block in program:
                dag = DependenceDAG.from_trace(
                    block.instructions, live_out=live_out[block.label]
                )
                report.feasibility[block.label] = feasibility_report(
                    dag, machine
                )
    return report


def analyze_source(
    source: str,
    machine: Optional[MachineModel] = None,
    filename: Optional[str] = None,
    bounds: bool = True,
) -> AnalyzeReport:
    """Parse and analyze ursa-lang text; never raises on bad source.

    A parse failure becomes a single ``A001`` error diagnostic in the
    returned report (``report.ok`` is False), so callers get uniform
    structured output for every failure mode.
    """
    from repro.ir.parser import ParseError, parse_program
    from repro.ir.program import IRError

    obs.count("analyze.sources")
    try:
        program = parse_program(source)
    except (ParseError, IRError, ValueError) as exc:
        report = AnalyzeReport(filename=filename)
        report.add(parse_error_diagnostic(exc, source, filename))
        return report
    return analyze_program(
        program, machine=machine, source=source, filename=filename,
        bounds=bounds,
    )
