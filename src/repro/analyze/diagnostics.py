"""Source-mapped diagnostics for the ahead-of-time analyzer.

Every finding carries a stable code (``A1xx`` well-formedness, ``A9xx``
parse), a severity, and — when the parser recorded one — a
:class:`SourceSpan` rendered gcc-style with the offending line and a
caret column::

    trace.ursa:5: error[A101]: value 'x' may be used before definition
      5 | y = x + 1
        |     ^

The code catalogue is documented in ``docs/analysis.md``; codes are
append-only so downstream tooling can match on them.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Stable diagnostic codes.  Append-only; never renumber.
CODES: Dict[str, str] = {
    "A001": "source does not parse",
    "A101": "value may be used before its definition",
    "A102": "branch to a label not defined in this program",
    "A103": "basic block is unreachable from the entry block",
    "A104": "store is dead (overwritten before any read)",
    "A105": "value is defined but never used",
    "A106": "opcode is not executable on the target machine",
}

#: Report JSON schema version (``docs/analysis.md``).
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SourceSpan:
    """A ``file:line`` location with optional caret column."""

    line_no: int
    line: str = ""
    filename: Optional[str] = None
    column: Optional[int] = None  # 1-based; None = no caret

    def location(self) -> str:
        return f"{self.filename or '<source>'}:{self.line_no}"

    def caret_lines(self) -> List[str]:
        """The quoted source line plus a caret marker, if any text."""
        if not self.line.strip():
            return []
        stripped = self.line.rstrip()
        gutter = f"{self.line_no:>4} | "
        out = [f"{gutter}{stripped}"]
        if self.column is not None and 1 <= self.column <= len(stripped) + 1:
            out.append(" " * 4 + " | " + " " * (self.column - 1) + "^")
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.filename,
            "line": self.line_no,
            "column": self.column,
            "text": self.line.rstrip() or None,
        }


def span_for(
    line_no: Optional[int],
    source_lines: Optional[Sequence[str]] = None,
    filename: Optional[str] = None,
    anchor: Optional[str] = None,
) -> Optional[SourceSpan]:
    """Build a span for ``line_no``, pointing the caret at ``anchor``.

    ``anchor`` is an identifier to underline; the caret lands on its
    first word-boundary occurrence in the line (or is omitted).
    """
    if line_no is None or line_no <= 0:
        return None
    line = ""
    if source_lines is not None and 1 <= line_no <= len(source_lines):
        line = source_lines[line_no - 1]
    column: Optional[int] = None
    if anchor and line:
        match = re.search(rf"\b{re.escape(anchor)}\b", line)
        if match is not None:
            column = match.start() + 1
    return SourceSpan(line_no, line, filename, column)


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding: code, severity, message, location."""

    code: str
    severity: str
    message: str
    span: Optional[SourceSpan] = None

    def render(self) -> str:
        prefix = f"{self.span.location()}: " if self.span else ""
        lines = [f"{prefix}{self.severity}[{self.code}]: {self.message}"]
        if self.span is not None:
            lines.extend(f"  {text}" for text in self.span.caret_lines())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": self.span.to_dict() if self.span else None,
        }


def parse_error_diagnostic(
    exc: Exception,
    source: Optional[str] = None,
    filename: Optional[str] = None,
) -> Diagnostic:
    """Wrap a :class:`repro.ir.parser.ParseError` as an ``A001``.

    Works for any exception exposing ``line_no``/``line`` attributes;
    other exceptions get a span-less diagnostic.
    """
    line_no = getattr(exc, "line_no", None)
    line = getattr(exc, "line", "") or ""
    span: Optional[SourceSpan] = None
    if line_no:
        lines = source.splitlines() if source else None
        span = span_for(line_no, lines, filename)
        if span is not None and not span.line and line:
            span = SourceSpan(line_no, line, filename)
    message = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
    if line_no and span is not None:
        # The span already renders the location and line text; drop the
        # redundant "line N: ...: 'text'" envelope ParseError carries.
        message = re.sub(rf"^line {line_no}: ", "", message)
        message = re.sub(r": '[^']*'$", "", message)
    return Diagnostic("A001", ERROR, message, span)


def render_parse_error(
    exc: Exception,
    source: Optional[str] = None,
    filename: Optional[str] = None,
) -> str:
    """Caret-rendered one-stop formatting for CLI ``ParseError`` paths."""
    return parse_error_diagnostic(exc, source, filename).render()


@dataclass
class AnalyzeReport:
    """Everything the analyzer found for one source: diagnostics plus
    (when the source was analyzable) per-trace feasibility reports."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Block label -> :class:`repro.analyze.bounds.FeasibilityReport`.
    feasibility: Dict[str, Any] = field(default_factory=dict)
    filename: Optional[str] = None

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors()

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def render(self) -> str:
        lines: List[str] = []
        for diagnostic in self.diagnostics:
            lines.append(diagnostic.render())
        for label, report in sorted(self.feasibility.items()):
            lines.append(f"trace {label}:")
            lines.extend(f"  {row}" for row in report.render().splitlines())
        summary = (
            f"analysis: {len(self.errors())} error(s), "
            f"{len(self.warnings())} warning(s), "
            f"{len(self.feasibility)} trace(s) bounded"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "ok": self.ok,
            "file": self.filename,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "feasibility": {
                label: report.to_dict()
                for label, report in sorted(self.feasibility.items())
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
