"""Sound static lower bounds on registers, FUs, and schedule length.

The paper measures the *worst-case* requirement of a trace as the width
of a reuse partial order (Dilworth, Theorem 1).  This module derives
cheap **lower** bounds on those measurements — and on every schedule's
realized cost — so admission control and ladder selection can act
before any compilation:

* :func:`register_lower_bound` — width of the *necessary-reuse* order
  ``R``: ``R(u, w)`` iff some maximal use ``m`` of ``u`` satisfies
  ``def(w) == m`` or ``def(w)`` is a descendant of ``m`` (dead values:
  ``def(w)`` below ``def(u)``).  Because ``Kill()`` always picks a
  maximal use (``repro.core.kill``), ``R`` contains ``CanReuse_Reg``
  for *every* admissible kill assignment; an ``R``-antichain is
  therefore a ``CanReuse`` antichain, so ``width(R) <= width(CanReuse)``
  — the measured requirement — regardless of which kill the heuristic
  chose.  Built on the same bitset mask sweeps and Dilworth kernels as
  the measurement core (``repro.graph.bitset``).
* :func:`register_pressure_floor` — the largest set of values forced
  live across one DAG node (def strictly before, some use strictly
  after).  Such sets are ``R``-antichains too, but additionally every
  legal schedule realizes them simultaneously, and the floor is
  monotone under added sequentialization edges — so a floor above the
  register file proves sequentialization alone can never fit the trace
  (spill/remat will be forced; the ``ursa-seq`` ladder rung is doomed).
* :func:`fu_lower_bound` — ``ceil(ops / slots)`` where ``slots`` is the
  most class-ops one dependence chain can hold
  (``floor(critical_path / latency)``): chains of ``CanReuse_FU`` are
  dependence paths, so no chain decomposition can use fewer chains.
* :func:`length_lower_bound` — ``max(critical path, resource MII)``:
  each of ``count`` units starts at most ``length / occupancy`` ops.

:func:`feasibility_report` bundles all of it, per machine class, into a
:class:`FeasibilityReport` with structured predictions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.core.reuse import (
    ValueInfo,
    _element_reach,
    collect_values,
    fu_elements,
)
from repro.graph import bitset
from repro.graph.dag import DependenceDAG
from repro.graph.dilworth import PartialOrder, width
from repro.machine.model import MachineModel


def _class_values(
    dag: DependenceDAG, machine: MachineModel, reg_class: str
) -> List[ValueInfo]:
    return [
        v for v in collect_values(dag, machine) if v.reg_class == reg_class
    ]


# ======================================================================
# Register bounds.
# ======================================================================
def necessary_reuse_order(
    dag: DependenceDAG, values: List[ValueInfo]
) -> PartialOrder:
    """The order ``R`` that *every* kill choice's ``CanReuse_Reg``
    contains: reuse via **some** maximal use instead of every one.

    Dual of :func:`repro.core.reuse.can_reuse_registers_sound`, which
    intersects over maximal uses to get an upper bound; the union here
    yields a lower bound.  Transitive because a use is always a proper
    descendant of its value's definition; acyclic because ``R(u, w)``
    forces ``def(u)`` strictly before ``def(w)`` (and entry-defined
    live-ins, which share a definition node, admit no ``R`` pairs).
    """
    names = [v.name for v in values]
    def_bits_at: Dict[int, int] = {}
    for i, v in enumerate(values):
        def_bits_at[v.def_uid] = def_bits_at.get(v.def_uid, 0) | (1 << i)
    down = _element_reach(dag, def_bits_at)
    desc, node_index, _ = dag.closure_masks()

    masks: List[int] = []
    for i, u in enumerate(values):
        uses = u.use_uids
        if not uses:
            # Dead value: any kill choice frees it at its definition.
            masks.append(down[u.def_uid] & ~(1 << i))
            continue
        use_mask = bitset.mask_of(node_index[m] for m in uses)
        maximal = [m for m in uses if not (desc[m] & use_mask)]
        if dag.exit in maximal:
            masks.append(0)  # live-out: never reusable under any kill
            continue
        mask = 0
        for m in maximal:
            mask |= down[m] | def_bits_at.get(m, 0)
        masks.append(mask & ~(1 << i))
    return PartialOrder.from_masks(names, masks)


def register_lower_bound(
    dag: DependenceDAG, machine: MachineModel, reg_class: str = "gpr"
) -> int:
    """A provable lower bound on the measured register requirement."""
    values = _class_values(dag, machine, reg_class)
    if not values:
        return 0
    return width(necessary_reuse_order(dag, values))


def register_pressure_floor(
    dag: DependenceDAG, machine: MachineModel, reg_class: str = "gpr"
) -> int:
    """Most class values any single node forces live simultaneously.

    Per op node ``n``: values untouched at ``n`` whose definition
    strictly precedes it while some use strictly follows (their
    registers are held across ``n``), plus the larger of (values read
    at ``n``, values defined at ``n``) — both variants are antichains
    of the necessary-reuse order, and the two groups are disjoint by
    construction.  Entry counts all live-in values, exit all live-out
    values (the execution model pins both sets).
    """
    values = _class_values(dag, machine, reg_class)
    if not values:
        return 0
    crossing: Dict[int, int] = {uid: 0 for uid in dag.op_nodes()}
    reads: Dict[int, int] = {uid: 0 for uid in dag.op_nodes()}
    defines: Dict[int, int] = {uid: 0 for uid in dag.op_nodes()}
    live_in_count = 0
    live_out_count = 0
    for v in values:
        if v.def_uid == dag.entry:
            live_in_count += 1
        if v.name in dag.live_out:
            live_out_count += 1
        if v.def_uid in defines:
            defines[v.def_uid] += 1
        if not v.use_uids:
            continue
        ancestors: Set[int] = set()
        for m in v.use_uids:
            if m in reads:
                reads[m] += 1
            ancestors |= dag.ancestors(m)
        # A value read at a node is accounted there by ``reads``; keep
        # ``crossing`` disjoint (counting it in both would double-count
        # one register and break the lower-bound guarantee).
        for uid in (dag.descendants(v.def_uid) & ancestors) - set(v.use_uids):
            if uid in crossing:
                crossing[uid] += 1
    floor = max(live_in_count, live_out_count)
    for uid in crossing:
        here = crossing[uid] + max(reads[uid], defines[uid])
        if here > floor:
            floor = here
    return floor


# ======================================================================
# FU and length bounds.
# ======================================================================
def fu_lower_bound(
    dag: DependenceDAG, machine: MachineModel, fu_class: str
) -> int:
    """A provable lower bound on the measured ``fu_class`` width.

    ``CanReuse_FU`` chains are dependence paths; a path through ``k``
    class-ops costs at least ``k * latency`` cycles, so no chain holds
    more than ``floor(critical_path / latency)`` ops and covering
    ``ops`` elements needs at least ``ceil(ops / that)`` chains.
    """
    ops = len(fu_elements(dag, machine, fu_class))
    if ops == 0:
        return 0
    latency = machine.fu_class(fu_class).latency
    horizon = dag.critical_path_length(machine.latency_of)
    slots = max(1, horizon // latency)
    return -(-ops // slots)


def _resource_min(dag: DependenceDAG, machine: MachineModel) -> int:
    """Resource-limited minimum length: each of ``count`` units starts
    at most ``length / occupancy`` class-ops within ``length`` cycles."""
    resource = 0
    for fu in machine.fu_classes:
        ops = len(fu_elements(dag, machine, fu.name))
        if ops:
            need = -(-ops * fu.occupancy // fu.count)
            if need > resource:
                resource = need
    return resource


def length_lower_bound(dag: DependenceDAG, machine: MachineModel) -> int:
    """A lower bound on any schedule's cycle count for ``dag``:
    ``max(critical path with machine latencies, resource MII)``."""
    critical = dag.critical_path_length(machine.latency_of)
    return max(critical, _resource_min(dag, machine))


# ======================================================================
# The machine-aware summary.
# ======================================================================
@dataclass(frozen=True)
class RegisterClassBound:
    cls: str
    available: int
    lower_bound: int
    pressure_floor: int
    live_in: int
    live_out: int

    @property
    def infeasible(self) -> bool:
        """No method at all can fit (entry/exit sets overflow the file)."""
        return max(self.live_in, self.live_out) > self.available

    @property
    def forces_reduction(self) -> bool:
        return self.lower_bound > self.available

    @property
    def forces_spill(self) -> bool:
        """Sequentialization alone cannot fit this class."""
        return self.pressure_floor > self.available

    def to_dict(self) -> Dict[str, Any]:
        return {
            "class": self.cls,
            "available": self.available,
            "lower_bound": self.lower_bound,
            "pressure_floor": self.pressure_floor,
            "live_in": self.live_in,
            "live_out": self.live_out,
            "infeasible": self.infeasible,
            "forces_reduction": self.forces_reduction,
            "forces_spill": self.forces_spill,
        }


@dataclass(frozen=True)
class FUClassBound:
    cls: str
    available: int
    ops: int
    lower_bound: int

    @property
    def forces_reduction(self) -> bool:
        return self.lower_bound > self.available

    def to_dict(self) -> Dict[str, Any]:
        return {
            "class": self.cls,
            "available": self.available,
            "ops": self.ops,
            "lower_bound": self.lower_bound,
            "forces_reduction": self.forces_reduction,
        }


@dataclass(frozen=True)
class LengthBound:
    critical_path: int
    resource_min: int

    @property
    def lower_bound(self) -> int:
        return max(self.critical_path, self.resource_min)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "critical_path": self.critical_path,
            "resource_min": self.resource_min,
            "lower_bound": self.lower_bound,
        }


@dataclass
class FeasibilityReport:
    """Machine-aware static bounds for one trace, with predictions."""

    machine: str
    ops: int
    registers: Dict[str, RegisterClassBound] = field(default_factory=dict)
    fus: Dict[str, FUClassBound] = field(default_factory=dict)
    length: LengthBound = field(default_factory=lambda: LengthBound(0, 0))

    @property
    def infeasible(self) -> bool:
        return any(b.infeasible for b in self.registers.values())

    def infeasible_reasons(self) -> List[str]:
        reasons = []
        for bound in self.registers.values():
            if bound.infeasible:
                pinned = max(bound.live_in, bound.live_out)
                reasons.append(
                    f"{pinned} live-in/live-out values need register "
                    f"class {bound.cls!r} but only {bound.available} "
                    "exist; no method can be feasible"
                )
        return reasons

    def doomed_rungs(self) -> Dict[str, str]:
        """Ladder rungs static analysis proves cannot succeed.

        Capability-driven: a pressure floor above the register file
        dooms every backend that declares ``can_spill=False`` in
        ``repro.methods`` (``ursa-seq``, ``bnb-exact``, ...) — no
        amount of sequentialization or search avoids spill code the
        backend is not allowed to emit.  Always-feasible terminal rungs
        are never doomed.
        """
        from repro.methods import backends

        doomed: Dict[str, str] = {}
        for bound in self.registers.values():
            if not bound.forces_spill:
                continue
            reason = (
                f"register class {bound.cls!r} pressure floor "
                f"{bound.pressure_floor} > {bound.available} available; "
                "a backend that cannot spill cannot fit"
            )
            for backend in backends():
                if not backend.can_spill and not backend.always_feasible:
                    doomed.setdefault(backend.name, reason)
            break
        return doomed

    def predictions(self) -> List[str]:
        """Human-readable transform/spill forecasts for this machine."""
        out: List[str] = []
        for bound in self.registers.values():
            if bound.infeasible:
                out.append(
                    f"reg {bound.cls}: infeasible — "
                    f"{max(bound.live_in, bound.live_out)} pinned values "
                    f"exceed {bound.available} registers"
                )
            elif bound.forces_spill:
                out.append(
                    f"reg {bound.cls}: pressure floor "
                    f"{bound.pressure_floor} > {bound.available} — "
                    "spill/remat will be forced (sequentialization "
                    "cannot help)"
                )
            elif bound.forces_reduction:
                out.append(
                    f"reg {bound.cls}: requirement >= {bound.lower_bound} "
                    f"> {bound.available} — reduction transforms will run"
                )
        for bound in self.fus.values():
            if bound.forces_reduction:
                out.append(
                    f"fu {bound.cls}: requirement >= {bound.lower_bound} "
                    f"> {bound.available} — sequentialization will run"
                )
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "machine": self.machine,
            "ops": self.ops,
            "registers": {
                cls: b.to_dict() for cls, b in sorted(self.registers.items())
            },
            "fus": {
                cls: b.to_dict() for cls, b in sorted(self.fus.items())
            },
            "length": self.length.to_dict(),
            "infeasible": self.infeasible,
            "doomed_rungs": self.doomed_rungs(),
            "predictions": self.predictions(),
        }

    def render(self) -> str:
        lines = [f"feasibility on {self.machine} ({self.ops} ops):"]
        for cls, b in sorted(self.registers.items()):
            lines.append(
                f"  reg {cls}: >= {b.lower_bound} of {b.available} "
                f"(floor {b.pressure_floor}, live-in {b.live_in}, "
                f"live-out {b.live_out})"
            )
        for cls, b in sorted(self.fus.items()):
            lines.append(
                f"  fu {cls}: >= {b.lower_bound} of {b.available} "
                f"({b.ops} ops)"
            )
        lines.append(
            f"  length: >= {self.length.lower_bound} cycles "
            f"(critical path {self.length.critical_path}, "
            f"resource {self.length.resource_min})"
        )
        for prediction in self.predictions():
            lines.append(f"  ! {prediction}")
        return "\n".join(lines)


def feasibility_report(
    dag: DependenceDAG, machine: MachineModel
) -> FeasibilityReport:
    """Compute every static bound for ``dag`` on ``machine``."""
    with obs.span("analyze.bounds", nodes=len(dag)):
        obs.count("analyze.reports")
        report = FeasibilityReport(
            machine=machine.describe(), ops=len(dag.op_nodes())
        )
        for cls in sorted(machine.registers):
            values = _class_values(dag, machine, cls)
            live_in = sum(1 for v in values if v.def_uid == dag.entry)
            live_out = sum(1 for v in values if v.name in dag.live_out)
            report.registers[cls] = RegisterClassBound(
                cls=cls,
                available=machine.registers[cls],
                lower_bound=register_lower_bound(dag, machine, cls),
                pressure_floor=register_pressure_floor(dag, machine, cls),
                live_in=live_in,
                live_out=live_out,
            )
        for fu in machine.fu_classes:
            report.fus[fu.name] = FUClassBound(
                cls=fu.name,
                available=fu.count,
                ops=len(fu_elements(dag, machine, fu.name)),
                lower_bound=fu_lower_bound(dag, machine, fu.name),
            )
        report.length = LengthBound(
            critical_path=dag.critical_path_length(machine.latency_of),
            resource_min=_resource_min(dag, machine),
        )
    return report
