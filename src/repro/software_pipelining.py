"""Resource-constrained software pipelining via unrolling + URSA (§6).

The paper's future work combines URSA with loop unrolling to create "a
new resource constrained software pipelining technique": unroll the
body, let URSA measure and shrink the unrolled trace's requirements to
the machine, and let assignment overlap the iterations.  This module
implements that pipeline end to end:

* :class:`LoopSpec` describes a loop abstractly (initialization, one
  iteration parameterized by its index and the carried values, and the
  epilogue that stores the carried results);
* :func:`unroll_loop` instantiates ``factor`` iterations as a single
  straight-line trace, chaining carried values through SSA names;
* :func:`min_initiation_interval` computes the classical lower bound
  ``MII = max(ResMII, RecMII)`` from one iteration's resource usage and
  the carried-dependence recurrence length;
* :func:`pipeline_sweep` compiles each unroll factor (any method) with
  full verification and reports achieved cycles/iteration against MII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.graph.dag import DependenceDAG
from repro.ir.builder import TraceBuilder
from repro.ir.instructions import Instruction
from repro.machine.model import MachineModel
from repro.pipeline import compile_trace

#: Carried-value environment: logical name -> current SSA value name.
Carried = Dict[str, str]


@dataclass(frozen=True)
class LoopSpec:
    """An abstract loop for unroll-and-allocate pipelining.

    Attributes:
        name: identifier used in reports.
        init: emits loop-invariant/initial code, returns the initial
            carried environment.
        iteration: emits one iteration given the carried environment and
            the iteration index (used for per-iteration memory offsets),
            returns the next carried environment.
        finish: emits the epilogue (typically stores of carried values).
    """

    name: str
    init: Callable[[TraceBuilder], Carried]
    iteration: Callable[[TraceBuilder, Carried, int], Carried]
    finish: Callable[[TraceBuilder, Carried], None]


def unroll_loop(spec: LoopSpec, factor: int) -> List[Instruction]:
    """Instantiate ``factor`` iterations as one straight-line trace."""
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    builder = TraceBuilder(name_prefix=f"{spec.name[:1]}t")
    carried = dict(spec.init(builder))
    for index in range(factor):
        carried = dict(spec.iteration(builder, carried, index))
    spec.finish(builder, carried)
    return builder.build()


# ======================================================================
# Initiation-interval bounds.
# ======================================================================
def resource_mii(spec: LoopSpec, machine: MachineModel) -> float:
    """ResMII: per-class steady-state op latency over unit count.

    Returned as an exact fraction: an unrolled kernel can realize a
    fractional per-iteration initiation interval (that is the point of
    unrolling), so rounding up here would overstate the bound.
    """
    single = unroll_loop(spec, 1)
    double = unroll_loop(spec, 2)
    per_class_single: Dict[str, int] = {}
    per_class_double: Dict[str, int] = {}
    for trace, bucket in ((single, per_class_single), (double, per_class_double)):
        for inst in trace:
            if inst.is_pseudo or inst.is_control:
                continue
            fu = machine.fu_class_for(inst.op)
            bucket[fu.name] = bucket.get(fu.name, 0) + fu.latency
    best = 0.0
    for cls in per_class_double:
        # Per-iteration steady-state cost: the increment from x1 to x2
        # (excludes prologue/epilogue ops emitted by init/finish).
        steady = per_class_double[cls] - per_class_single.get(cls, 0)
        count = machine.fu_class(cls).count
        best = max(best, steady / count)
    return best


def recurrence_mii(spec: LoopSpec, machine: MachineModel) -> int:
    """RecMII: longest latency-weighted carried-dependence cycle.

    Measured structurally: in a 2x unrolled trace, the delay between
    the same carried definition in consecutive iterations.
    """
    single = unroll_loop(spec, 1)
    double = unroll_loop(spec, 2)
    cp1 = DependenceDAG.from_trace(single).critical_path_length(machine.latency_of)
    cp2 = DependenceDAG.from_trace(double).critical_path_length(machine.latency_of)
    # The growth of the critical path per extra iteration bounds the
    # recurrence: independent iterations grow ~0, a full serial
    # recurrence grows by the loop-carried chain length.
    return max(1, cp2 - cp1)


def min_initiation_interval(
    spec: LoopSpec, machine: MachineModel
) -> Tuple[float, float, int]:
    """Return ``(MII, ResMII, RecMII)`` for the loop on the machine."""
    res = resource_mii(spec, machine)
    rec = recurrence_mii(spec, machine)
    return max(res, float(rec)), res, rec


# ======================================================================
# The sweep.
# ======================================================================
@dataclass
class PipelineResult:
    """Outcome of compiling one unroll factor."""

    factor: int
    cycles: int
    per_iteration: float
    spills: int
    fu_requirement: int
    reg_requirement: int
    verified: bool

    def row(self) -> tuple:
        return (
            self.factor,
            self.cycles,
            f"{self.per_iteration:.2f}",
            self.spills,
            self.fu_requirement,
            self.reg_requirement,
            "ok" if self.verified else "FAIL",
        )


def pipeline_sweep(
    spec: LoopSpec,
    machine: MachineModel,
    factors: Sequence[int] = (1, 2, 4, 8),
    method: str = "ursa",
) -> List[PipelineResult]:
    """Compile each unroll factor and report cycles per iteration."""
    from repro.core.measure import measure_all

    results: List[PipelineResult] = []
    for factor in factors:
        trace = unroll_loop(spec, factor)
        dag = DependenceDAG.from_trace(trace)
        requirements = {
            f"{r.kind.value}:{r.cls}": r.required
            for r in measure_all(dag, machine)
        }
        outcome = compile_trace(trace, machine, method=method)
        results.append(
            PipelineResult(
                factor=factor,
                cycles=outcome.stats.cycles,
                per_iteration=outcome.stats.cycles / factor,
                spills=outcome.stats.spill_ops,
                fu_requirement=max(
                    v for k, v in requirements.items() if k.startswith("fu:")
                ),
                reg_requirement=max(
                    v for k, v in requirements.items() if k.startswith("reg:")
                ),
                verified=bool(outcome.verified),
            )
        )
    return results


def best_initiation_interval(results: Sequence[PipelineResult]) -> float:
    """The best cycles/iteration achieved across the sweep."""
    return min(r.per_iteration for r in results)


# ======================================================================
# Canonical loop specs.
# ======================================================================
def dot_product_loop() -> LoopSpec:
    """acc += a[i] * b[i] — one carried accumulator, parallel loads."""

    def init(b: TraceBuilder) -> Carried:
        return {"acc": b.const(0, name="dp_acc0")}

    def iteration(b: TraceBuilder, carried: Carried, i: int) -> Carried:
        a_i = b.load("a", offset=i)
        b_i = b.load("b", offset=i)
        return {"acc": b.add(carried["acc"], b.mul(a_i, b_i))}

    def finish(b: TraceBuilder, carried: Carried) -> None:
        b.store("sum", carried["acc"])

    return LoopSpec("dot", init, iteration, finish)


def saxpy_loop() -> LoopSpec:
    """y[i] += alpha * x[i] — fully parallel iterations (no recurrence)."""

    def init(b: TraceBuilder) -> Carried:
        return {"alpha": b.load("alpha", name="sx_alpha")}

    def iteration(b: TraceBuilder, carried: Carried, i: int) -> Carried:
        x_i = b.load("x", offset=i)
        y_i = b.load("y", offset=i)
        b.store("y", b.add(y_i, b.mul(carried["alpha"], x_i)), offset=i)
        return carried

    def finish(b: TraceBuilder, carried: Carried) -> None:
        pass

    return LoopSpec("saxpy", init, iteration, finish)


def recurrence_loop() -> LoopSpec:
    """x[i] = b[i] - a[i] * x[i-1] — a tight serial recurrence."""

    def init(b: TraceBuilder) -> Carried:
        return {"x": b.load("x0", name="rc_x0")}

    def iteration(b: TraceBuilder, carried: Carried, i: int) -> Carried:
        a_i = b.load("a", offset=i)
        b_i = b.load("b", offset=i)
        x = b.sub(b_i, b.mul(a_i, carried["x"]))
        b.store("x", x, offset=i)
        return {"x": x}

    def finish(b: TraceBuilder, carried: Carried) -> None:
        pass

    return LoopSpec("recurrence", init, iteration, finish)


def complex_mac_loop() -> LoopSpec:
    """Complex multiply-accumulate: two carried accumulators, wide body."""

    def init(b: TraceBuilder) -> Carried:
        return {
            "accr": b.const(0, name="cm_ar0"),
            "acci": b.const(0, name="cm_ai0"),
        }

    def iteration(b: TraceBuilder, carried: Carried, i: int) -> Carried:
        ar = b.load("ar", offset=i)
        ai = b.load("ai", offset=i)
        br = b.load("br", offset=i)
        bi = b.load("bi", offset=i)
        prod_r = b.sub(b.mul(ar, br), b.mul(ai, bi))
        prod_i = b.add(b.mul(ar, bi), b.mul(ai, br))
        return {
            "accr": b.add(carried["accr"], prod_r),
            "acci": b.add(carried["acci"], prod_i),
        }

    def finish(b: TraceBuilder, carried: Carried) -> None:
        b.store("outr", carried["accr"])
        b.store("outi", carried["acci"])

    return LoopSpec("cmac", init, iteration, finish)


#: Registry of the canonical loops.
LOOPS: Dict[str, Callable[[], LoopSpec]] = {
    "dot": dot_product_loop,
    "saxpy": saxpy_loop,
    "recurrence": recurrence_loop,
    "cmac": complex_mac_loop,
}
