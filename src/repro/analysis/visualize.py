"""Visualization helpers: Graphviz DOT export and ASCII schedule charts.

Pure-text renderers (no drawing dependencies): DAGs and reuse chains go
to Graphviz DOT source for external rendering; schedules render as an
ASCII occupancy chart (one row per functional unit, one column per
cycle) that makes stalls and serialization visually obvious in logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph.dag import DependenceDAG, EdgeKind
from repro.machine.model import MachineModel
from repro.scheduling.list_scheduler import Schedule


def _node_label(dag: DependenceDAG, uid: int) -> str:
    inst = dag.instruction(uid)
    if uid == dag.entry:
        return "ENTRY"
    if uid == dag.exit:
        return "EXIT"
    return str(inst)


def dag_to_dot(
    dag: DependenceDAG,
    title: str = "dependence DAG",
    include_pseudo: bool = False,
    highlight: Optional[Sequence[int]] = None,
) -> str:
    """Render the DAG as Graphviz DOT source.

    Data edges are solid and labelled with their value; sequence edges
    are dashed and labelled with their reason.  ``highlight`` nodes are
    drawn filled (useful for excessive chain sets).
    """
    highlight_set = set(highlight or ())
    lines = [
        "digraph ursa {",
        f'  label="{title}";',
        "  rankdir=TB;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for uid in dag.nodes():
        if not include_pseudo and uid in (dag.entry, dag.exit):
            continue
        attrs = [f'label="[{uid}] {_node_label(dag, uid)}"']
        if uid in highlight_set:
            attrs.append('style=filled, fillcolor="lightgoldenrod"')
        lines.append(f"  n{uid} [{', '.join(attrs)}];")
    for src, dst, data in dag.edges():
        if not include_pseudo and (
            src in (dag.entry, dag.exit) or dst in (dag.entry, dag.exit)
        ):
            continue
        if data["kind"] is EdgeKind.DATA:
            label = data.get("value", "")
            lines.append(f'  n{src} -> n{dst} [label="{label}"];')
        else:
            reason = data.get("reason", "seq")
            lines.append(
                f'  n{src} -> n{dst} [style=dashed, color=gray40, '
                f'label="{reason}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def chains_to_dot(
    dag: DependenceDAG,
    chains: Sequence[Sequence[int]],
    title: str = "allocation chains",
) -> str:
    """Render a chain decomposition: one color-ranked cluster per chain."""
    palette = [
        "lightblue", "lightgoldenrod", "palegreen", "lightpink",
        "lightsalmon", "plum", "khaki", "lightcyan",
    ]
    lines = [
        "digraph chains {",
        f'  label="{title}";',
        '  node [shape=box, fontname="monospace"];',
    ]
    colored: Dict[int, str] = {}
    for index, chain in enumerate(chains):
        color = palette[index % len(palette)]
        for uid in chain:
            colored[uid] = color
    for uid in dag.op_nodes():
        color = colored.get(uid, "white")
        lines.append(
            f'  n{uid} [label="[{uid}] {_node_label(dag, uid)}", '
            f'style=filled, fillcolor="{color}"];'
        )
    for src, dst, data in dag.edges():
        if src in (dag.entry, dag.exit) or dst in (dag.entry, dag.exit):
            continue
        style = "solid" if data["kind"] is EdgeKind.DATA else "dashed"
        lines.append(f"  n{src} -> n{dst} [style={style}];")
    for index, chain in enumerate(chains):
        for earlier, later in zip(chain, chain[1:]):
            lines.append(
                f"  n{earlier} -> n{later} "
                f"[color=red, penwidth=2.0, constraint=false];"
            )
    lines.append("}")
    return "\n".join(lines)


def schedule_gantt(
    schedule: Schedule,
    machine: Optional[MachineModel] = None,
    cell_width: int = 5,
) -> str:
    """ASCII occupancy chart: rows are FU instances, columns cycles.

    Each cell shows the issuing op's uid (or ``sp``/``re`` for spill
    code); dots are idle slots.  Latency occupancy is drawn with ``=``.
    """
    machine = machine or schedule.machine
    if not schedule.ops:
        return "(empty schedule)"
    cycles = max(op.cycle for op in schedule.ops) + 1

    rows: Dict[tuple, List[str]] = {
        (fu.name, index): ["." * cell_width] * cycles
        for fu in machine.fu_classes
        for index in range(fu.count)
    }
    for op in schedule.ops:
        if op.uid is not None:
            tag = str(op.uid)
        elif op.inst.op.value == "spill":
            tag = "sp"
        else:
            tag = "re"
        cell = tag[:cell_width].center(cell_width)
        rows[(op.fu_class, op.fu_index)][op.cycle] = cell
        latency = machine.fu_class(op.fu_class).latency
        for extra in range(1, latency):
            if op.cycle + extra < cycles:
                rows[(op.fu_class, op.fu_index)][op.cycle + extra] = (
                    "=" * cell_width
                )

    header = "cycle".ljust(10) + "".join(
        str(c).center(cell_width) for c in range(cycles)
    )
    lines = [header, "-" * len(header)]
    for (cls, index), cells in sorted(rows.items()):
        lines.append(f"{cls}[{index}]".ljust(10) + "".join(cells))
    return "\n".join(lines)


def pressure_profile(schedule: Schedule, reg_class: str = "gpr") -> str:
    """ASCII bar chart of register occupancy per cycle."""
    if not schedule.ops:
        return "(empty schedule)"
    first: Dict[str, int] = {}
    last: Dict[str, int] = {}
    for op in schedule.ops:
        if op.inst.dest is not None:
            first[op.inst.dest] = op.cycle
            last.setdefault(op.inst.dest, op.cycle)
        for name in op.inst.uses():
            last[name] = max(last.get(name, 0), op.cycle)
    for name in schedule.live_in_regs:
        first[name] = 0
    for name in schedule.live_out_regs:
        last[name] = schedule.length

    cycles = max(op.cycle for op in schedule.ops) + 1
    lines = []
    for cycle in range(cycles):
        # Occupancy interval is (def cycle, last-use cycle]: a register
        # holds its value from the end of the defining cycle through the
        # issue of the last use (read-at-issue lets a dest reuse a
        # source's register within one cycle).
        live = sum(
            1
            for name, start in first.items()
            if schedule.reg_assignment.get(name) is not None
            and schedule.reg_assignment[name].cls == reg_class
            and start < cycle <= last.get(name, start)
        )
        lines.append(f"{cycle:4d} |{'#' * live} {live}")
    return "\n".join(lines)
