"""Program analyses, metrics, visualization and reporting.

``visualize`` and ``reporting`` are intentionally not re-exported here:
they depend on the graph/scheduling layers, which import this package's
``liveness`` during initialization — import them as
``repro.analysis.visualize`` / ``repro.analysis.reporting`` directly.
"""

from repro.analysis.liveness import (
    block_live_sets,
    block_use_def,
    linear_live_before,
    max_linear_pressure,
)
from repro.analysis.metrics import STATS_HEADERS, ScheduleStats, speedup

__all__ = [
    "STATS_HEADERS",
    "ScheduleStats",
    "block_live_sets",
    "block_use_def",
    "linear_live_before",
    "max_linear_pressure",
    "speedup",
]
