"""Markdown compilation reports: everything about one compile, in one
document — measured requirements, URSA's transformation log, the VLIW
code, the occupancy chart, and the verification verdict."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.visualize import pressure_profile, schedule_gantt
from repro.core.measure import measure_all
from repro.graph.dag import DependenceDAG
from repro.ir.printer import format_trace
from repro.pipeline import CompilationResult


def compilation_report(
    result: CompilationResult,
    title: Optional[str] = None,
    include_code: bool = True,
    include_charts: bool = True,
) -> str:
    """Render a :class:`CompilationResult` as a Markdown document."""
    machine = result.machine
    lines: List[str] = []
    lines.append(f"# {title or 'Compilation report'}")
    lines.append("")
    lines.append(f"* method: `{result.method}`")
    lines.append(f"* machine: `{machine.describe()}`")
    lines.append(f"* cycles: **{result.stats.cycles}**")
    lines.append(f"* spill ops: {result.stats.spill_ops}")
    lines.append(f"* FU utilization: {result.stats.utilization:.2f}")
    verdict = {True: "verified ✅", False: "MISMATCH ❌", None: "not simulated"}
    lines.append(f"* correctness: {verdict[result.verified]}")
    lines.append("")

    lines.append("## Measured requirements (final DAG)")
    lines.append("")
    lines.append("| resource | required | available |")
    lines.append("|---|---|---|")
    for requirement in measure_all(result.dag, machine):
        lines.append(
            f"| {requirement.kind.value}:{requirement.cls} "
            f"| {requirement.required} | {requirement.available} |"
        )
    lines.append("")

    if result.allocation is not None:
        allocation = result.allocation
        status = "converged" if allocation.converged else "not converged"
        lines.append(
            f"## URSA allocation ({status}, "
            f"{len(allocation.records)} transformations)"
        )
        lines.append("")
        if allocation.records:
            lines.append("| # | kind | excess | critical path | edit |")
            lines.append("|---|---|---|---|---|")
            for record in allocation.records:
                lines.append(
                    f"| {record.iteration} | {record.kind} "
                    f"| {record.excess_before}→{record.excess_after} "
                    f"| {record.critical_path_before}→"
                    f"{record.critical_path_after} "
                    f"| {record.description} |"
                )
        else:
            lines.append("No transformations were needed.")
        lines.append("")

    if include_code:
        lines.append("## VLIW code")
        lines.append("")
        lines.append("```")
        lines.append(str(result.program))
        lines.append("```")
        lines.append("")

    if include_charts:
        lines.append("## Unit occupancy")
        lines.append("")
        lines.append("```")
        lines.append(schedule_gantt(result.schedule, machine))
        lines.append("```")
        lines.append("")
        lines.append("## Register pressure")
        lines.append("")
        lines.append("```")
        lines.append(pressure_profile(result.schedule))
        lines.append("```")
        lines.append("")

    return "\n".join(lines)
