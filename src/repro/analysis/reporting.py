"""Markdown compilation reports and observability-trace rendering.

Two renderers live here:

* :func:`compilation_report` — everything about one compile, in one
  Markdown document: measured requirements, URSA's transformation log,
  the VLIW code, the occupancy chart, and the verification verdict;
* :func:`trace_summary` — the per-pass time/counter tables behind the
  CLI's ``--profile`` flag, re-renderable from a live
  :class:`~repro.obs.Observer` or a ``--trace out.jsonl`` file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.analysis.visualize import pressure_profile, schedule_gantt
from repro.core.measure import measure_all
from repro.graph.dag import DependenceDAG
from repro.ir.printer import format_table, format_trace
from repro.obs import (
    Observer,
    aggregate_spans,
    commit_log,
    read_jsonl,
    scalar_totals,
)
from repro.pipeline import CompilationResult


def compilation_report(
    result: CompilationResult,
    title: Optional[str] = None,
    include_code: bool = True,
    include_charts: bool = True,
) -> str:
    """Render a :class:`CompilationResult` as a Markdown document."""
    machine = result.machine
    lines: List[str] = []
    lines.append(f"# {title or 'Compilation report'}")
    lines.append("")
    lines.append(f"* method: `{result.method}`")
    lines.append(f"* machine: `{machine.describe()}`")
    lines.append(f"* cycles: **{result.stats.cycles}**")
    lines.append(f"* spill ops: {result.stats.spill_ops}")
    lines.append(f"* FU utilization: {result.stats.utilization:.2f}")
    verdict = {True: "verified ✅", False: "MISMATCH ❌", None: "not simulated"}
    lines.append(f"* correctness: {verdict[result.verified]}")
    lines.append("")

    lines.append("## Measured requirements (final DAG)")
    lines.append("")
    lines.append("| resource | required | available |")
    lines.append("|---|---|---|")
    for requirement in measure_all(result.dag, machine):
        lines.append(
            f"| {requirement.kind.value}:{requirement.cls} "
            f"| {requirement.required} | {requirement.available} |"
        )
    lines.append("")

    if result.allocation is not None:
        allocation = result.allocation
        status = "converged" if allocation.converged else "not converged"
        lines.append(
            f"## URSA allocation ({status}, "
            f"{len(allocation.records)} transformations)"
        )
        lines.append("")
        if allocation.records:
            lines.append("| # | kind | excess | critical path | edit |")
            lines.append("|---|---|---|---|---|")
            for record in allocation.records:
                lines.append(
                    f"| {record.iteration} | {record.kind} "
                    f"| {record.excess_before}→{record.excess_after} "
                    f"| {record.critical_path_before}→"
                    f"{record.critical_path_after} "
                    f"| {record.description} |"
                )
        else:
            lines.append("No transformations were needed.")
        lines.append("")

    if include_code:
        lines.append("## VLIW code")
        lines.append("")
        lines.append("```")
        lines.append(str(result.program))
        lines.append("```")
        lines.append("")

    if include_charts:
        lines.append("## Unit occupancy")
        lines.append("")
        lines.append("```")
        lines.append(schedule_gantt(result.schedule, machine))
        lines.append("```")
        lines.append("")
        lines.append("## Register pressure")
        lines.append("")
        lines.append("```")
        lines.append(pressure_profile(result.schedule))
        lines.append("```")
        lines.append("")

    return "\n".join(lines)


# ======================================================================
# Observability traces (repro.obs) -> summary tables.
# ======================================================================
TraceSource = Union[Observer, str, Path, Iterable[Mapping[str, Any]]]


def _trace_records(source: TraceSource) -> List[Dict[str, Any]]:
    """Normalize any trace source into a list of schema records.

    Accepts a live (possibly unfinished) :class:`Observer`, a path to a
    ``--trace`` JSONL file, or an already-loaded record list.  For a
    live observer the counter/peak totals are synthesized if the capture
    has not been finished yet, so the summary is always complete.
    """
    if isinstance(source, Observer):
        records: List[Dict[str, Any]] = list(source.events)
        have = {(r["type"], r["name"]) for r in records}
        for name, total in sorted(source.counters.items()):
            if ("counter", name) not in have:
                records.append(
                    {"type": "counter", "name": name, "t": 0.0, "total": total}
                )
        for name, total in sorted(source.peaks.items()):
            if ("peak", name) not in have:
                records.append(
                    {"type": "peak", "name": name, "t": 0.0, "total": total}
                )
        return records
    if isinstance(source, (str, Path)):
        return read_jsonl(source)
    return [dict(record) for record in source]


def _format_total(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:.3f}"


def trace_summary(source: TraceSource, title: str = "observability trace") -> str:
    """Render a trace as the ``--profile`` per-pass breakdown.

    Three tables: span timings (sorted by total time), counter/peak
    totals, and the allocator's committed-transformation log.  Sections
    with no data are omitted; an empty trace renders a placeholder line.
    """
    records = _trace_records(source)
    parts: List[str] = []

    spans = aggregate_spans(records)
    if spans:
        rows = [
            (
                name,
                int(stats["calls"]),
                f"{stats['total'] * 1e3:.2f}",
                f"{stats['mean'] * 1e3:.3f}",
                f"{stats['max'] * 1e3:.3f}",
            )
            for name, stats in sorted(
                spans.items(), key=lambda item: -item[1]["total"]
            )
        ]
        parts.append(
            format_table(
                ("span", "calls", "total ms", "mean ms", "max ms"),
                rows,
                title=f"{title} — per-pass timing",
            )
        )

    counters = scalar_totals(records, "counter")
    peaks = scalar_totals(records, "peak")
    if counters or peaks:
        rows = [(name, _format_total(value)) for name, value in sorted(counters.items())]
        rows.extend(
            (f"{name} (peak)", _format_total(value))
            for name, value in sorted(peaks.items())
        )
        parts.append(
            format_table(("counter", "value"), rows, title=f"{title} — counters")
        )

    commits = commit_log(records)
    if commits:
        rows = [
            (
                commit.get("iteration", "?"),
                commit.get("kind", "?"),
                f"{commit.get('excess_before', '?')}->{commit.get('excess_after', '?')}",
                f"{commit.get('cp_before', '?')}->{commit.get('cp_after', '?')}",
                commit.get("spills_added", 0),
            )
            for commit in commits
        ]
        parts.append(
            format_table(
                ("it", "kind", "excess", "critical path", "spills"),
                rows,
                title=f"{title} — committed transformations",
            )
        )

    if not parts:
        return f"{title}: no records"
    return "\n\n".join(parts)
