"""Schedule and program quality metrics reported by the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.machine.simulator import SimulationResult
from repro.machine.vliw import VLIWProgram

if TYPE_CHECKING:  # avoid a circular import through repro.scheduling
    from repro.scheduling.list_scheduler import Schedule


@dataclass
class ScheduleStats:
    """Quality metrics for one compiled trace."""

    method: str
    machine: str
    cycles: int
    ops: int
    spill_ops: int
    issue_words: int
    utilization: float
    max_pressure: Dict[str, int]
    verified: Optional[bool] = None

    @classmethod
    def collect(
        cls,
        method: str,
        schedule: Schedule,
        program: VLIWProgram,
        sim: Optional[SimulationResult] = None,
        verified: Optional[bool] = None,
    ) -> "ScheduleStats":
        pressure = {
            reg_cls: schedule.max_live_registers(reg_cls)
            for reg_cls in schedule.machine.registers
        }
        return cls(
            method=method,
            machine=schedule.machine.name,
            cycles=sim.cycles if sim is not None else schedule.length,
            ops=program.op_count,
            spill_ops=program.spill_op_count,
            issue_words=program.issue_cycles,
            utilization=program.utilization(),
            max_pressure=pressure,
            verified=verified,
        )

    def row(self) -> tuple:
        """A tuple for tabular benchmark output."""
        pressure = ",".join(
            f"{cls}={n}" for cls, n in sorted(self.max_pressure.items())
        )
        return (
            self.method,
            self.cycles,
            self.spill_ops,
            self.ops,
            f"{self.utilization:.2f}",
            pressure,
            "ok" if self.verified else ("?" if self.verified is None else "FAIL"),
        )


STATS_HEADERS = (
    "method", "cycles", "spills", "ops", "util", "pressure", "verified"
)


def speedup(baseline: ScheduleStats, improved: ScheduleStats) -> float:
    """Cycle-count speedup of ``improved`` over ``baseline``."""
    if improved.cycles == 0:
        return float("inf")
    return baseline.cycles / improved.cycles
