"""Liveness analysis: per-block dataflow and linear (in-order) liveness."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.ir.instructions import Instruction
from repro.ir.program import Program


def block_use_def(instructions: Iterable[Instruction]) -> Tuple[Set[str], Set[str]]:
    """Return (upward-exposed uses, definitions) for a straight-line body."""
    uses: Set[str] = set()
    defs: Set[str] = set()
    for inst in instructions:
        for name in inst.uses():
            if name not in defs:
                uses.add(name)
        if inst.dest is not None:
            defs.add(inst.dest)
    return uses, defs


def block_live_sets(
    program: Program,
) -> Tuple[Dict[str, FrozenSet[str]], Dict[str, FrozenSet[str]]]:
    """Compute live-in / live-out sets per basic block.

    Standard backwards iterative dataflow over the CFG:
    ``live_out(B) = ∪ live_in(S) for S in succ(B)``;
    ``live_in(B) = use(B) ∪ (live_out(B) - def(B))``.
    """
    cfg = program.cfg()
    use: Dict[str, Set[str]] = {}
    define: Dict[str, Set[str]] = {}
    for block in program:
        use[block.label], define[block.label] = block_use_def(block.instructions)

    live_in: Dict[str, Set[str]] = {b.label: set() for b in program}
    live_out: Dict[str, Set[str]] = {b.label: set() for b in program}

    changed = True
    while changed:
        changed = False
        for block in reversed(program.blocks):
            label = block.label
            out: Set[str] = set()
            for succ in cfg.successors(label):
                out |= live_in[succ]
            new_in = use[label] | (out - define[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True

    return (
        {k: frozenset(v) for k, v in live_in.items()},
        {k: frozenset(v) for k, v in live_out.items()},
    )


def linear_live_before(
    instructions: Sequence[Instruction],
    live_out: FrozenSet[str] = frozenset(),
) -> List[FrozenSet[str]]:
    """Liveness immediately *before* each instruction of a linear sequence.

    ``live_out`` is the set of values live after the last instruction.
    """
    live: Set[str] = set(live_out)
    result: List[FrozenSet[str]] = [frozenset()] * len(instructions)
    for index in range(len(instructions) - 1, -1, -1):
        inst = instructions[index]
        if inst.dest is not None:
            live.discard(inst.dest)
        live.update(inst.uses())
        result[index] = frozenset(live)
    return result


def max_linear_pressure(
    instructions: Sequence[Instruction],
    live_out: FrozenSet[str] = frozenset(),
) -> int:
    """Maximum number of simultaneously live values in program order."""
    before = linear_live_before(instructions, live_out)
    if not before:
        return len(live_out)
    # Pressure at a point counts the live set *after* a definition too:
    # right after instruction i, (live_before[i+1]) values are live; the
    # maximum over all points includes live_out at the end.
    peak = max(len(s) for s in before)
    return max(peak, len(live_out))
