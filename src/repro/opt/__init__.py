"""Classical scalar optimizations run before allocation."""

from repro.opt.passes import (
    simplify_algebraic,
    OptStats,
    eliminate_common_subexpressions,
    eliminate_dead_code,
    fold_constants,
    optimize_trace,
    propagate_copies,
)

__all__ = [
    "simplify_algebraic",
    "OptStats",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_constants",
    "optimize_trace",
    "propagate_copies",
]
