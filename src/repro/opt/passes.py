"""Classical scalar optimizations on straight-line traces.

URSA consumes whatever the front end produces; a realistic front end
cleans the trace up first.  These passes operate on single-assignment
straight-line code (the same form the dependence-DAG builder consumes)
and preserve the observable semantics exactly (memory effects and side
exits are never touched):

* :func:`fold_constants` — evaluates ops whose operands are constants;
* :func:`simplify_algebraic` — identities like ``x*0``, ``x+0``, ``x-x``;
* :func:`propagate_copies` — forwards ``x = y`` moves to the uses;
* :func:`eliminate_common_subexpressions` — reuses prior identical
  pure computations (memory ops are not candidates);
* :func:`eliminate_dead_code` — drops value definitions nothing reads.

:func:`optimize_trace` runs them to a fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.instructions import Imm, Instruction, Operand, Var
from repro.ir.interp import InterpreterError, _binary_eval
from repro.ir.opcodes import (
    BINARY_OPS,
    COMMUTATIVE_OPS,
    Opcode,
)
from repro.ir.rename import is_single_assignment, rename_trace


@dataclass
class OptStats:
    """How much each pass changed the trace."""

    folded: int = 0
    copies_propagated: int = 0
    cse_hits: int = 0
    dead_removed: int = 0
    iterations: int = 0

    @property
    def total(self) -> int:
        return (
            self.folded
            + self.copies_propagated
            + self.cse_hits
            + self.dead_removed
        )


def _ensure_ssa(instructions: Sequence[Instruction]) -> List[Instruction]:
    if is_single_assignment(instructions):
        return list(instructions)
    return rename_trace(list(instructions)).instructions


# ======================================================================
# Individual passes.
# ======================================================================
def fold_constants(
    instructions: Sequence[Instruction],
    stats: Optional[OptStats] = None,
) -> List[Instruction]:
    """Replace ops on constant operands with ``CONST`` definitions.

    Ops that would fault (division by zero) are left untouched — the
    program's behaviour, including its errors, is preserved.
    """
    stats = stats if stats is not None else OptStats()
    constants: Dict[str, int] = {}
    out: List[Instruction] = []
    for inst in instructions:
        srcs = tuple(
            Imm(constants[s.name]) if isinstance(s, Var) and s.name in constants
            else s
            for s in inst.srcs
        )
        inst = inst if srcs == inst.srcs else _with_srcs(inst, srcs)

        if inst.op is Opcode.CONST:
            constants[inst.dest] = inst.srcs[0].value  # type: ignore[union-attr]
            out.append(inst)
            continue
        if inst.op in BINARY_OPS and all(isinstance(s, Imm) for s in srcs):
            try:
                value = _binary_eval(inst.op, srcs[0].value, srcs[1].value)
            except InterpreterError:
                out.append(inst)  # would fault: keep it faulting
                continue
            constants[inst.dest] = value
            out.append(
                Instruction(
                    Opcode.CONST, dest=inst.dest, srcs=(Imm(value),),
                    uid=inst.uid,
                )
            )
            stats.folded += 1
            continue
        if inst.op is Opcode.NEG and isinstance(srcs[0], Imm):
            value = -srcs[0].value
            constants[inst.dest] = value
            out.append(
                Instruction(
                    Opcode.CONST, dest=inst.dest, srcs=(Imm(value),),
                    uid=inst.uid,
                )
            )
            stats.folded += 1
            continue
        if inst.op is Opcode.MOV and isinstance(srcs[0], Imm):
            constants[inst.dest] = srcs[0].value
            out.append(
                Instruction(
                    Opcode.CONST, dest=inst.dest, srcs=(srcs[0],), uid=inst.uid
                )
            )
            stats.folded += 1
            continue
        out.append(inst)
    return out


def propagate_copies(
    instructions: Sequence[Instruction],
    stats: Optional[OptStats] = None,
) -> List[Instruction]:
    """Forward ``x = y`` so uses of ``x`` read ``y`` directly."""
    stats = stats if stats is not None else OptStats()
    alias: Dict[str, str] = {}
    out: List[Instruction] = []
    for inst in instructions:
        rename = {
            name: alias[name] for name in inst.uses() if name in alias
        }
        if rename:
            inst = inst.with_renamed_uses(rename)
            stats.copies_propagated += 1
        if inst.op is Opcode.MOV and isinstance(inst.srcs[0], Var):
            alias[inst.dest] = inst.srcs[0].name
        out.append(inst)
    return out


def simplify_algebraic(
    instructions: Sequence[Instruction],
    stats: Optional[OptStats] = None,
) -> List[Instruction]:
    """Apply algebraic identities: x*0, x*1, x+0, x-x, x^x and friends.

    Divisions are only simplified when the simplification cannot hide a
    fault the original would raise (``x/1`` is safe; ``0/x`` is not).
    """
    stats = stats if stats is not None else OptStats()
    out: List[Instruction] = []

    def const(inst: Instruction, value: int) -> Instruction:
        stats.folded += 1
        return Instruction(
            Opcode.CONST, dest=inst.dest, srcs=(Imm(value),), uid=inst.uid
        )

    def mov(inst: Instruction, operand: Operand) -> Instruction:
        stats.folded += 1
        return Instruction(
            Opcode.MOV, dest=inst.dest, srcs=(operand,), uid=inst.uid
        )

    for inst in instructions:
        if inst.op not in BINARY_OPS:
            out.append(inst)
            continue
        lhs, rhs = inst.srcs
        lhs_imm = lhs.value if isinstance(lhs, Imm) else None
        rhs_imm = rhs.value if isinstance(rhs, Imm) else None
        same = (
            isinstance(lhs, Var) and isinstance(rhs, Var) and lhs.name == rhs.name
        )
        op = inst.op
        replacement: Optional[Instruction] = None
        if op is Opcode.MUL:
            if lhs_imm == 0 or rhs_imm == 0:
                replacement = const(inst, 0)
            elif lhs_imm == 1:
                replacement = mov(inst, rhs)
            elif rhs_imm == 1:
                replacement = mov(inst, lhs)
        elif op is Opcode.ADD:
            if lhs_imm == 0:
                replacement = mov(inst, rhs)
            elif rhs_imm == 0:
                replacement = mov(inst, lhs)
        elif op is Opcode.SUB:
            if rhs_imm == 0:
                replacement = mov(inst, lhs)
            elif same:
                replacement = const(inst, 0)
        elif op is Opcode.DIV:
            if rhs_imm == 1:
                replacement = mov(inst, lhs)
        elif op is Opcode.XOR:
            if same:
                replacement = const(inst, 0)
            elif lhs_imm == 0:
                replacement = mov(inst, rhs)
            elif rhs_imm == 0:
                replacement = mov(inst, lhs)
        elif op in (Opcode.OR, Opcode.AND):
            if same:
                replacement = mov(inst, lhs)
            elif op is Opcode.OR and rhs_imm == 0:
                replacement = mov(inst, lhs)
            elif op is Opcode.OR and lhs_imm == 0:
                replacement = mov(inst, rhs)
            elif op is Opcode.AND and (lhs_imm == 0 or rhs_imm == 0):
                replacement = const(inst, 0)
        elif op in (Opcode.SHL, Opcode.SHR):
            if rhs_imm == 0:
                replacement = mov(inst, lhs)
        elif op in (Opcode.MIN, Opcode.MAX):
            if same:
                replacement = mov(inst, lhs)
        out.append(replacement if replacement is not None else inst)
    return out


def _cse_key(inst: Instruction) -> Optional[Tuple]:
    """A value-numbering key for pure computations."""
    if inst.op is Opcode.CONST:
        return (inst.op, inst.srcs[0].value)  # type: ignore[union-attr]
    if inst.op in BINARY_OPS:
        operands = tuple(
            ("var", s.name) if isinstance(s, Var) else ("imm", s.value)
            for s in inst.srcs
        )
        if inst.op in COMMUTATIVE_OPS:
            operands = tuple(sorted(operands))
        return (inst.op, operands)
    if inst.op is Opcode.NEG:
        s = inst.srcs[0]
        return (inst.op, ("var", s.name) if isinstance(s, Var) else ("imm", s.value))
    return None  # loads, stores, branches: never CSE'd


def eliminate_common_subexpressions(
    instructions: Sequence[Instruction],
    stats: Optional[OptStats] = None,
) -> List[Instruction]:
    """Replace recomputed pure expressions with MOVs of the first result.

    The MOVs are cleaned up by a following copy-propagation + DCE round
    (``optimize_trace`` iterates to a fixed point).
    """
    stats = stats if stats is not None else OptStats()
    seen: Dict[Tuple, str] = {}
    out: List[Instruction] = []
    for inst in instructions:
        key = _cse_key(inst)
        if key is not None:
            prior = seen.get(key)
            if prior is not None and prior != inst.dest:
                out.append(
                    Instruction(
                        Opcode.MOV, dest=inst.dest, srcs=(Var(prior),),
                        uid=inst.uid,
                    )
                )
                stats.cse_hits += 1
                continue
            seen.setdefault(key, inst.dest)
        out.append(inst)
    return out


def eliminate_dead_code(
    instructions: Sequence[Instruction],
    live_out: Sequence[str] = (),
    stats: Optional[OptStats] = None,
) -> List[Instruction]:
    """Drop definitions whose values are never used.

    Memory writes, branches and other effects are always kept.
    """
    stats = stats if stats is not None else OptStats()
    needed: Set[str] = set(live_out)
    keep: List[bool] = [False] * len(instructions)
    for index in range(len(instructions) - 1, -1, -1):
        inst = instructions[index]
        effect = inst.is_memory_write or inst.is_control or inst.op is Opcode.NOP
        if effect or (inst.dest is not None and inst.dest in needed):
            keep[index] = True
            needed.update(inst.uses())
    removed = sum(1 for k in keep if not k)
    stats.dead_removed += removed
    return [inst for inst, kept in zip(instructions, keep) if kept]


# ======================================================================
def optimize_trace(
    instructions: Sequence[Instruction],
    live_out: Sequence[str] = (),
    max_rounds: int = 10,
) -> Tuple[List[Instruction], OptStats]:
    """Run all passes to a fixed point; returns (trace, statistics)."""
    stats = OptStats()
    work = _ensure_ssa(instructions)
    for _ in range(max_rounds):
        stats.iterations += 1
        before = [str(i) for i in work]
        work = fold_constants(work, stats)
        work = simplify_algebraic(work, stats)
        work = propagate_copies(work, stats)
        work = eliminate_common_subexpressions(work, stats)
        work = propagate_copies(work, stats)
        work = eliminate_dead_code(work, live_out, stats)
        if [str(i) for i in work] == before:
            break
    return work, stats


def _with_srcs(inst: Instruction, srcs: Tuple[Operand, ...]) -> Instruction:
    from dataclasses import replace

    return replace(inst, srcs=srcs)
