"""The ``repro serve`` wire protocol: JSON requests in, JSON results out.

Transport-independent: :func:`handle_payload` maps one decoded JSON
body to one JSON-serializable response, so the HTTP server, tests, and
any future socket transport share identical semantics.  The full
request/response schema reference lives in ``docs/serving.md``.

A *single* request::

    {"kind": "trace",                  # or "program"
     "source": "x = load [a]\\n...",    # ursa-lang text
     "machine": {"fus": 4, "regs": 8}, # or {"preset": "research"}, ...
     "method": "ursa",
     "options": {"deadline_ms": 500, "resilient": true, "verify": false}}

A *batch* request is ``{"requests": [<single>, ...]}`` and returns
``{"responses": [...]}`` — one response per request, order preserved,
failures isolated per entry.

Every response is ``{"ok": true, "result": {...}}`` or
``{"ok": false, "error": {"code", "type", "message"}}`` with codes:

========== ====== ================================================
code       HTTP   meaning
========== ====== ================================================
bad_request 400   malformed body, unknown method/kind/machine spec
parse_error 400   the ursa-lang source does not parse
ill_formed  422   static analysis rejected the source before compile
compile_error 422 the pipeline rejected the program (verifier, ...)
timeout     408   the deadline expired (non-resilient compiles)
internal    500   unexpected server-side failure
========== ====== ================================================

``ill_formed`` rejections are *admission control* (docs/analysis.md):
``repro.analyze`` well-formedness errors fail the request with
structured ``error.diagnostics`` and **no compiler invocation** — the
``serve.analyze_reject`` counter tracks them.  ``kind: "analyze"``
requests (or ``POST /v1/analyze``) run the analyzer alone and always
return the full report, diagnostics and feasibility bounds included.

Degraded-but-successful compiles stay ``ok: true`` and carry the
structured :class:`~repro.resilience.fallback.DegradationReport` dict
in ``result.degradation`` — same shape as the CLI's ``--json`` output.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.machine.model import MachineModel
from repro.serve.cache import CompileCache, TraceArtifact, trace_key
from repro.serve.shard import _compile_one

#: Maps protocol error codes to HTTP statuses.
ERROR_STATUS = {
    "bad_request": 400,
    "parse_error": 400,
    "ill_formed": 422,
    "compile_error": 422,
    "timeout": 408,
    "overloaded": 503,
    "draining": 503,
    "internal": 500,
}

#: Upper bound on entries per batch request.
DEFAULT_MAX_BATCH = 64


class ProtocolError(Exception):
    """A request the protocol cannot serve; carries an error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


class IllFormedError(ProtocolError):
    """Admission control rejected the source; carries the diagnostics."""

    def __init__(
        self, message: str, diagnostics: List[Dict[str, Any]]
    ) -> None:
        super().__init__("ill_formed", message)
        self.diagnostics = diagnostics


def machine_from_spec(spec: Optional[Dict[str, Any]]) -> MachineModel:
    """Build a machine from its JSON spec.

    ``{"preset": "research"}`` picks a named preset;
    ``{"fus": N, "regs": N, "classed": bool, "latency": N}`` builds a
    homogeneous (or classed) machine like the CLI flags do.  ``None``
    means the default research machine.
    """
    if spec is None:
        spec = {}
    if not isinstance(spec, dict):
        raise ProtocolError("bad_request", "machine spec must be an object")
    if "preset" in spec:
        from repro.machine.presets import PRESETS

        name = spec["preset"]
        if name not in PRESETS:
            raise ProtocolError(
                "bad_request",
                f"unknown preset {name!r}; available: {sorted(PRESETS)}",
            )
        return PRESETS[name]()
    unknown = set(spec) - {"fus", "regs", "classed", "latency"}
    if unknown:
        raise ProtocolError(
            "bad_request", f"unknown machine spec fields: {sorted(unknown)}"
        )
    try:
        fus = int(spec.get("fus", 4))
        regs = int(spec.get("regs", 8))
        latency = int(spec.get("latency", 1))
    except (TypeError, ValueError):
        raise ProtocolError("bad_request", "fus/regs/latency must be integers")
    if spec.get("classed"):
        return MachineModel.classed(
            alu=fus, mul=max(1, fus // 2), mem=max(1, fus // 2),
            branch=1, alu_regs=regs,
        )
    return MachineModel.homogeneous(fus, regs, latency=latency)


def error_response(
    code: str,
    exc_type: str,
    message: str,
    diagnostics: Optional[List[Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    obs.count("serve.errors")
    obs.count(f"serve.error.{code}")
    error: Dict[str, Any] = {
        "code": code, "type": exc_type, "message": message,
    }
    if diagnostics is not None:
        error["diagnostics"] = diagnostics
    return {"ok": False, "error": error}


def _classify_exception(exc: Exception) -> Tuple[str, str]:
    """(error code, message) for a compile-path exception."""
    from repro.resilience.budgets import DeadlineExpired

    if isinstance(exc, ProtocolError):
        return exc.code, str(exc)
    if isinstance(exc, DeadlineExpired):
        return "timeout", f"deadline expired at {exc.site}"
    name = type(exc).__name__
    if name in (
        "PipelineError", "AllocationError", "ScheduleError",
        "RegAllocError", "VerifyError", "ProgramCompileError",
        "CycleError", "MachineConfigError", "InterpreterError",
    ):
        message = str(exc).splitlines()[0] if str(exc) else name
        return "compile_error", message
    if name in ("ParseError", "SyntaxError", "ValueError", "KeyError"):
        return "parse_error", str(exc).splitlines()[0] if str(exc) else name
    return "internal", f"{name}: {exc}"


# ======================================================================
# Request handlers.
# ======================================================================
def _require_source(request: Dict[str, Any]) -> str:
    source = request.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("bad_request", "missing 'source' (ursa-lang text)")
    return source


def _method_of(request: Dict[str, Any]) -> str:
    from repro.methods import UnknownMethodError, resolve

    method = request.get("method", "ursa")
    try:
        return resolve(method).name
    except UnknownMethodError as exc:
        raise ProtocolError("bad_request", str(exc))


def _options_of(request: Dict[str, Any]) -> Dict[str, Any]:
    options = request.get("options", {})
    if not isinstance(options, dict):
        raise ProtocolError("bad_request", "'options' must be an object")
    unknown = set(options) - {
        "deadline_ms", "resilient", "verify", "seed", "memory", "bounds",
    }
    if unknown:
        raise ProtocolError(
            "bad_request", f"unknown options: {sorted(unknown)}"
        )
    return options


def _memory_of(options: Dict[str, Any]) -> Dict[Tuple[str, int], int]:
    """Initial memory cells: ``{"v": 5, "w+4": 2}`` -> {(base, off): val}.

    Same addressing the CLI's ``--mem base[+offset]=value`` flag uses.
    """
    spec = options.get("memory", {})
    if not isinstance(spec, dict):
        raise ProtocolError(
            "bad_request", "'options.memory' must map cells to integers"
        )
    memory: Dict[Tuple[str, int], int] = {}
    for cell, value in spec.items():
        base, _, offset = str(cell).partition("+")
        try:
            memory[(base, int(offset) if offset else 0)] = int(value)
        except (TypeError, ValueError):
            raise ProtocolError(
                "bad_request", f"bad memory cell {cell!r}={value!r}"
            )
    return memory


def _parse_or_reject(source: str):
    """Parse ursa-lang text, mapping failures to ``parse_error``."""
    from repro.ir.parser import parse_program

    try:
        return parse_program(source)
    except Exception as exc:
        raise ProtocolError(
            "parse_error",
            str(exc).splitlines()[0] if str(exc) else "parse failed",
        )


def _admit(program, machine: MachineModel, source: str) -> None:
    """Fast-reject ill-formed sources *before* any compile work.

    Runs the ``repro.analyze`` well-formedness pack (CFG + liveness
    only — no DAG build); error-severity findings abort the request
    with structured diagnostics.  Warnings/info pass through: they are
    legal programs (docs/analysis.md).
    """
    from repro.analyze import check_program

    diagnostics = [
        d for d in check_program(program, machine=machine, source=source)
        if d.severity == "error"
    ]
    if diagnostics:
        obs.count("serve.analyze_reject")
        head = diagnostics[0]
        raise IllFormedError(
            f"{head.code}: {head.message}"
            + (f" (+{len(diagnostics) - 1} more)" if len(diagnostics) > 1 else ""),
            [d.to_dict() for d in diagnostics],
        )


def handle_trace_request(
    request: Dict[str, Any],
    cache: Optional[CompileCache],
    default_deadline_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Compile one straight-line trace; memoized through ``cache``."""
    source = _require_source(request)
    method = _method_of(request)
    options = _options_of(request)
    machine = machine_from_spec(request.get("machine"))
    deadline_ms = options.get("deadline_ms", default_deadline_ms)
    resilient = bool(options.get("resilient", False))

    parsed = _parse_or_reject(source)
    if len(parsed.blocks) != 1:
        raise ProtocolError(
            "parse_error",
            f"expected straight-line code, found {len(parsed.blocks)} blocks",
        )
    _admit(parsed, machine, source)
    instructions = list(parsed.blocks[0].instructions)

    extra = ("resilient",) if resilient else ()
    key = trace_key(instructions, machine, method, extra=extra)
    artifact: Optional[TraceArtifact] = None
    hit = hot = False
    cacheable = cache is not None and deadline_ms is None
    if cacheable:
        before_hot = cache.hot_hits
        artifact = cache.get(key)
        hit = artifact is not None
        hot = hit and cache.hot_hits > before_hot
    if artifact is None:
        artifact = _compile_one(
            instructions, machine, method, deadline_ms, resilient, key
        )
        if cacheable and not (
            artifact.degradation and artifact.degradation.get("degraded")
        ):
            cache.put(artifact)

    verified: Optional[bool] = None
    if options.get("verify"):
        from repro.pipeline import build_dag, synthesize_memory, verify_program

        dag = build_dag(instructions)
        memory = synthesize_memory(dag, int(options.get("seed", 0)))
        _, verified = verify_program(
            dag, artifact.program, machine, memory
        )

    program = artifact.program
    return {
        "ok": True,
        "result": {
            "kind": "trace",
            "method": method,
            "machine": machine.describe(),
            "cycles_estimate": artifact.cycles_estimate,
            "issue_cycles": program.issue_cycles,
            "op_count": program.op_count,
            "spill_ops": program.spill_op_count,
            "utilization": round(program.utilization(), 4),
            "program": str(program),
            "verified": verified,
            "degradation": artifact.degradation,
            "cache": {"hit": hit, "hot": hot, "key": key},
        },
    }


def handle_program_request(
    request: Dict[str, Any],
    cache: Optional[CompileCache],
    default_deadline_ms: Optional[float] = None,
    jobs: Optional[int] = None,
    pool: Optional[object] = None,
) -> Dict[str, Any]:
    """Compile (and run) a whole multi-block program."""
    import hashlib

    from repro.program_compiler import compile_program, verify_compiled_program
    from repro.serve.cache import program_signature

    source = _require_source(request)
    method = _method_of(request)
    options = _options_of(request)
    machine = machine_from_spec(request.get("machine"))
    deadline_ms = options.get("deadline_ms", default_deadline_ms)

    program = _parse_or_reject(source)
    _admit(program, machine, source)

    compiled = compile_program(
        program, machine, method=method,
        jobs=jobs, cache=cache, deadline_ms=deadline_ms,
        resilient=bool(options.get("resilient", False)),
        pool=pool,
    )
    # Per-trace digests of the uid-free program rendering: lets clients
    # (and the serve-chaos CI smoke) assert bit-identity of two compiles
    # without shipping the full program text twice.
    signatures = {
        head: hashlib.sha256(
            program_signature(trace.program).encode()
        ).hexdigest()[:16]
        for head, trace in sorted(compiled.traces.items())
    }
    result: Dict[str, Any] = {
        "kind": "program",
        "method": method,
        "machine": machine.describe(),
        "traces": sorted(compiled.traces),
        "signatures": signatures,
        "static_ops": compiled.total_static_ops(),
        "cache": {
            "hits": compiled.cache_hits,
            "misses": compiled.cache_misses,
        },
    }
    if options.get("verify", True):
        run, ok = verify_compiled_program(
            compiled, memory=_memory_of(options) or None
        )
        result["dynamic_cycles"] = run.cycles
        result["dispatch_path"] = run.trace_path
        result["verified"] = ok
    return {"ok": True, "result": result}


def handle_analyze_request(request: Dict[str, Any]) -> Dict[str, Any]:
    """Run the static analyzer alone; never invokes the compiler.

    Unlike compile kinds, a source that fails to parse or is ill-formed
    still returns ``ok: true`` — the report *is* the result, with
    ``result.report.ok`` carrying the verdict (docs/analysis.md).
    """
    from repro.analyze import analyze_source

    source = _require_source(request)
    options = _options_of(request)
    machine = machine_from_spec(request.get("machine"))
    obs.count("serve.analyze_requests")
    report = analyze_source(
        source, machine=machine, bounds=bool(options.get("bounds", True))
    )
    return {
        "ok": True,
        "result": {
            "kind": "analyze",
            "machine": machine.describe(),
            "report": report.to_dict(),
        },
    }


def handle_single(
    request: Dict[str, Any],
    cache: Optional[CompileCache],
    default_deadline_ms: Optional[float] = None,
    jobs: Optional[int] = None,
    pool: Optional[object] = None,
) -> Dict[str, Any]:
    """Dispatch one request dict; never raises."""
    try:
        if not isinstance(request, dict):
            raise ProtocolError("bad_request", "request must be an object")
        kind = request.get("kind", "trace")
        with obs.span("serve.request", kind=str(kind)):
            obs.count("serve.requests")
            if kind == "trace":
                response = handle_trace_request(
                    request, cache, default_deadline_ms
                )
            elif kind == "program":
                response = handle_program_request(
                    request, cache, default_deadline_ms, jobs, pool
                )
            elif kind == "analyze":
                response = handle_analyze_request(request)
            else:
                raise ProtocolError(
                    "bad_request",
                    f"unknown kind {kind!r}; expected 'trace', 'program', "
                    "or 'analyze'",
                )
        if "id" in request:
            response["id"] = request["id"]
        return response
    except Exception as exc:
        code, message = _classify_exception(exc)
        response = error_response(
            code,
            type(exc).__name__,
            message,
            diagnostics=getattr(exc, "diagnostics", None),
        )
        if isinstance(request, dict) and "id" in request:
            response["id"] = request["id"]
        return response


def handle_payload(
    payload: Any,
    cache: Optional[CompileCache],
    default_deadline_ms: Optional[float] = None,
    jobs: Optional[int] = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    pool: Optional[object] = None,
) -> Tuple[int, Dict[str, Any]]:
    """One decoded JSON body -> ``(http_status, response_body)``.

    Accepts a single request object or a ``{"requests": [...]}`` batch;
    batch entries fail independently, and the batch itself is always
    HTTP 200 (per-entry status is in each response's ``ok``/``error``).
    """
    if isinstance(payload, dict) and "requests" in payload:
        requests = payload["requests"]
        if not isinstance(requests, list):
            body = error_response(
                "bad_request", "ProtocolError", "'requests' must be an array"
            )
            return ERROR_STATUS["bad_request"], body
        if len(requests) > max_batch:
            body = error_response(
                "bad_request",
                "ProtocolError",
                f"batch of {len(requests)} exceeds max_batch={max_batch}",
            )
            return ERROR_STATUS["bad_request"], body
        obs.count("serve.batch_requests")
        obs.count("serve.batched_entries", len(requests))
        responses: List[Dict[str, Any]] = [
            handle_single(entry, cache, default_deadline_ms, jobs, pool)
            for entry in requests
        ]
        return 200, {"responses": responses}

    response = handle_single(payload, cache, default_deadline_ms, jobs, pool)
    if response.get("ok"):
        return 200, response
    return ERROR_STATUS.get(response["error"]["code"], 500), response
