"""Content-addressed persistent compile cache.

The per-process :class:`repro.pm.AnalysisManager` makes *analyses*
cheap within one compile; this module makes whole *compiles* free
across runs, processes, and users.  The unit of caching is one
prepared trace: a canonical hash of everything that determines its
compiled form —

* the trace text (instruction renderings, which deliberately exclude
  the process-local ``uid`` counters),
* the register class of every value name the trace mentions (probing
  ``machine.reg_class_of`` so classifier behavior is captured even for
  exotic callables),
* the machine fingerprint (FU classes, latencies, pipelining, register
  files, classifier identity),
* the compilation method, the active measurement engine
  (``bitset``/``legacy``), and the pipeline cache version —

keys a pickled :class:`TraceArtifact` (the VLIW program plus its
schedule-length estimate) in an on-disk object store rooted at
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``).  Identical kernels
therefore compile once per fleet, not once per process.

Layering (see ``docs/serving.md``): the persistent cache sits *under*
the :class:`~repro.pm.analysis.AnalysisManager` — a lookup is tried
before any DAG is even built; only misses run the pass pipeline (which
then shares its analysis cache across the program's other misses).

Counters: ``serve.cache_hit`` / ``serve.cache_miss`` /
``serve.cache_put`` / ``serve.cache_evict`` (disk), ``serve.hot_hit``
(in-memory memo).  ``repro cache stats|gc|clear`` manages the store.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.ir.instructions import Instruction
from repro.machine.model import (
    MachineModel,
    PrefixRegClassifier,
    default_reg_class,
)
from repro.machine.vliw import VLIWProgram

#: Bumped whenever compiled-artifact layout or pipeline output changes
#: in a way that would make replaying an old artifact wrong.  Part of
#: every cache key, so stale stores simply stop hitting.
CACHE_VERSION = 1

#: Environment override for the store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class CacheError(Exception):
    """The persistent store is unusable (permissions, bad layout)."""


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


# ======================================================================
# Key derivation.
# ======================================================================
def classifier_id(fn) -> str:
    """A stable identity string for a register classifier callable."""
    if fn is default_reg_class:
        return "default"
    if isinstance(fn, PrefixRegClassifier):
        return f"prefix:{fn.prefix}:{fn.match_cls}:{fn.other_cls}"
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    return f"callable:{module}.{qualname}"


def machine_fingerprint(machine: MachineModel) -> Dict[str, object]:
    """Everything about a machine that can change compiled output."""
    return {
        "name": machine.name,
        "fus": [
            {
                "name": fu.name,
                "count": fu.count,
                "latency": fu.latency,
                "ops": (
                    sorted(op.value for op in fu.ops)
                    if fu.ops is not None
                    else None
                ),
                "pipelined": fu.pipelined,
            }
            for fu in machine.fu_classes
        ],
        "registers": dict(sorted(machine.registers.items())),
        "classifier": classifier_id(machine.reg_class_of),
    }


def _value_names(instructions: Sequence[Instruction]) -> List[str]:
    names = set()
    for inst in instructions:
        if inst.dest is not None:
            names.add(inst.dest)
        names.update(inst.uses())
    return sorted(names)


def trace_key(
    instructions: Sequence[Instruction],
    machine: MachineModel,
    method: str,
    engine: Optional[str] = None,
    extra: Iterable[object] = (),
) -> str:
    """The content address of one trace compilation.

    Uid-independent: two structurally identical traces built in
    different processes (different uid counters) share a key, which is
    what makes cross-run and cross-user hits possible.  ``extra``
    admits caller-specific discriminators (e.g. a resilience mode).
    """
    if engine is None:
        from repro.graph.bitset import active_engine

        engine = active_engine()
    classes = {
        name: machine.reg_class_of(name)
        for name in _value_names(instructions)
    }
    payload = {
        "v": CACHE_VERSION,
        "trace": [f"{inst.op.value}|{inst}" for inst in instructions],
        "classes": classes,
        "machine": machine_fingerprint(machine),
        "method": method,
        "engine": engine,
        "extra": [str(item) for item in extra],
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def program_signature(program: VLIWProgram) -> str:
    """A uid-free rendering of a VLIW program, for identity checks.

    ``MachineOp.source_uid`` values differ between processes even for
    identical compiles, so bit-identity is defined on this signature:
    every word/slot/op rendering plus the live-in register binding.
    """
    live_ins = ",".join(
        f"{name}={ref.cls}{ref.index}"
        for name, ref in sorted(program.live_in_regs.items())
    )
    return f"{program}\n; live-in: {live_ins}"


# ======================================================================
# Artifacts.
# ======================================================================
@dataclass
class TraceArtifact:
    """What the cache stores for one compiled trace."""

    key: str
    method: str
    program: VLIWProgram
    cycles_estimate: int
    #: ``DegradationReport.to_dict()`` when a resilient compile degraded.
    degradation: Optional[Dict[str, object]] = None


# ======================================================================
# The store.
# ======================================================================
class CompileCache:
    """A two-level compiled-artifact cache: memory memo over disk store.

    The disk level is content-addressed (``objects/<k[:2]>/<k>.pkl``)
    and shared by every process pointing at the same root; writes are
    atomic (temp file + rename), and unreadable objects are treated as
    misses and deleted.  The memory level is a bounded LRU memo that
    makes *hot* traces free without even touching the filesystem —
    this is the ``repro serve`` hot-trace memoization.

    Thread-safe: the server handles requests on multiple threads.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        memory_entries: int = 256,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.memory_entries = memory_entries
        self._memo: "OrderedDict[str, TraceArtifact]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.hot_hits = 0
        self.puts = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[TraceArtifact]:
        """The cached artifact for ``key``, or None on a miss."""
        with self._lock:
            memo = self._memo.get(key)
            if memo is not None:
                self._memo.move_to_end(key)
                self.hot_hits += 1
                self.hits += 1
                obs.count("serve.hot_hit")
                obs.count("serve.cache_hit")
                return memo
        path = self._object_path(key)
        try:
            blob = path.read_bytes()
            artifact = pickle.loads(blob)
        except FileNotFoundError:
            self.misses += 1
            obs.count("serve.cache_miss")
            return None
        except Exception:
            # Corrupt or incompatible object: drop it, report a miss.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            obs.count("serve.cache_miss")
            obs.count("serve.cache_corrupt")
            return None
        if not isinstance(artifact, TraceArtifact) or artifact.key != key:
            self.misses += 1
            obs.count("serve.cache_miss")
            return None
        self._memoize(key, artifact)
        self.hits += 1
        obs.count("serve.cache_hit")
        return artifact

    def put(self, artifact: TraceArtifact) -> bool:
        """Store ``artifact`` under its key; False if it cannot pickle."""
        try:
            blob = pickle.dumps(artifact)
        except Exception:
            obs.count("serve.cache_unpicklable")
            return False
        path = self._object_path(artifact.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        self._memoize(artifact.key, artifact)
        self.puts += 1
        obs.count("serve.cache_put")
        return True

    def _memoize(self, key: str, artifact: TraceArtifact) -> None:
        with self._lock:
            self._memo[key] = artifact
            self._memo.move_to_end(key)
            while len(self._memo) > self.memory_entries:
                self._memo.popitem(last=False)

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` CLI).
    # ------------------------------------------------------------------
    def _objects(self) -> List[Path]:
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(objects.glob("*/*.pkl"))

    def stats(self) -> Dict[str, object]:
        """Store-wide and session counters, JSON-friendly."""
        objects = self._objects()
        return {
            "root": str(self.root),
            "entries": len(objects),
            "bytes": sum(p.stat().st_size for p in objects),
            "memory_entries": len(self._memo),
            "session": {
                "hits": self.hits,
                "hot_hits": self.hot_hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "hit_rate": round(
                    self.hits / (self.hits + self.misses), 4
                ) if (self.hits + self.misses) else 0.0,
            },
        }

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> Dict[str, int]:
        """Evict by age, then oldest-first down to a size budget.

        Eviction order is deterministic: ``(mtime, object name)``, so
        two stores with identical contents gc identically regardless of
        directory enumeration order or object sizes.  Each gc eviction
        bumps ``serve.cache.gc_evicted`` (on top of the generic
        ``serve.cache_evict``).
        """
        removed = 0
        removed_bytes = 0
        objects = [(p.stat().st_mtime, p.name, p.stat().st_size, p)
                   for p in self._objects()]
        objects.sort(key=lambda entry: entry[:2])  # oldest first, then name
        now = time.time()
        survivors = []
        for mtime, _name, size, path in objects:
            if max_age_days is not None and now - mtime > max_age_days * 86400:
                self._evict(path, gc=True)
                removed += 1
                removed_bytes += size
            else:
                survivors.append((size, path))
        if max_bytes is not None:
            total = sum(size for size, _ in survivors)
            for size, path in survivors:
                if total <= max_bytes:
                    break
                self._evict(path, gc=True)
                total -= size
                removed += 1
                removed_bytes += size
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "remaining": len(self._objects()),
        }

    def clear(self) -> int:
        """Remove every stored object (and the memory memo)."""
        removed = 0
        for path in self._objects():
            self._evict(path)
            removed += 1
        with self._lock:
            self._memo.clear()
        return removed

    def _evict(self, path: Path, gc: bool = False) -> None:
        try:
            path.unlink()
            self.evictions += 1
            obs.count("serve.cache_evict")
            if gc:
                obs.count("serve.cache.gc_evicted")
        except OSError:
            pass


def resolve_cache(
    cache: Union[None, bool, str, Path, CompileCache],
) -> Optional[CompileCache]:
    """Normalize the ``cache=`` argument accepted across the API.

    ``None``/``False`` — caching off; ``True`` — the default store;
    a path — a store rooted there; a :class:`CompileCache` — itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return CompileCache()
    if isinstance(cache, CompileCache):
        return cache
    return CompileCache(cache)
