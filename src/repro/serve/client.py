"""A minimal stdlib client for the ``repro serve`` endpoint.

``urllib``-based, no dependencies; mirrors the protocol exactly:

    >>> client = ServeClient("http://127.0.0.1:8377")
    >>> result = client.compile_trace("t0 = add a, b\\nstore t0, [out]")
    >>> result["cycles_estimate"], result["cache"]["hit"]

Errors come back as :class:`ServeError` carrying the structured
``error`` object (code/type/message) from the server.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional


class ServeError(Exception):
    """A structured error response from the server."""

    def __init__(self, error: Dict[str, Any], status: int = 0) -> None:
        code = error.get("code", "internal")
        message = error.get("message", "")
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.status = status
        self.error = error


class ServeClient:
    """Talks to one ``repro serve`` endpoint."""

    def __init__(self, base_url: str = "http://127.0.0.1:8377",
                 timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                body = json.loads(resp.read().decode())
                status = resp.status
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode())
            except Exception:
                raise ServeError(
                    {"code": "internal", "message": str(exc)}, exc.code
                ) from exc
            status = exc.code
        if isinstance(body, dict) and body.get("ok") is False:
            raise ServeError(body.get("error", {}), status)
        return body

    # ------------------------------------------------------------------
    def compile_trace(
        self,
        source: str,
        machine: Optional[Dict[str, Any]] = None,
        method: str = "ursa",
        **options: Any,
    ) -> Dict[str, Any]:
        """Compile one straight-line trace; returns the ``result`` dict."""
        request: Dict[str, Any] = {
            "kind": "trace", "source": source, "method": method,
        }
        if machine is not None:
            request["machine"] = machine
        if options:
            request["options"] = options
        return self._request("POST", "/v1/compile", request)["result"]

    def compile_program(
        self,
        source: str,
        machine: Optional[Dict[str, Any]] = None,
        method: str = "ursa",
        **options: Any,
    ) -> Dict[str, Any]:
        """Compile (and verify-run) a multi-block program."""
        request: Dict[str, Any] = {
            "kind": "program", "source": source, "method": method,
        }
        if machine is not None:
            request["machine"] = machine
        if options:
            request["options"] = options
        return self._request("POST", "/v1/compile", request)["result"]

    def batch(self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Submit a batch; returns the per-entry response list.

        Entries fail independently — inspect each element's ``ok``.
        """
        body = self._request("POST", "/v1/compile", {"requests": requests})
        return body["responses"]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def cache_stats(self) -> Optional[Dict[str, Any]]:
        return self._request("GET", "/v1/cache")["cache"]

    def health(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServeError, OSError):
            return False
