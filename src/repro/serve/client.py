"""A minimal stdlib client for the ``repro serve`` endpoint.

``urllib``-based, no dependencies; mirrors the protocol exactly:

    >>> client = ServeClient("http://127.0.0.1:8377")
    >>> result = client.compile_trace("t0 = add a, b\\nstore t0, [out]")
    >>> result["cycles_estimate"], result["cache"]["hit"]

Errors come back as :class:`ServeError` carrying the structured
``error`` object (code/type/message) from the server.

Retries: every request in this protocol is idempotent (compilation is
pure), so the client transparently retries connection resets and 503
load-shed/drain responses with jittered exponential backoff, honoring
the server's ``Retry-After`` header.  ``max_retries`` bounds the
budget; the lifetime retry count is surfaced as the ``client.retries``
field of :meth:`stats`.  Liveness probes (:meth:`health`) never retry.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional


class ServeError(Exception):
    """A structured error response from the server."""

    def __init__(self, error: Dict[str, Any], status: int = 0) -> None:
        code = error.get("code", "internal")
        message = error.get("message", "")
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.status = status
        self.error = error


class _Retryable(Exception):
    """Internal: wraps a failure the retry loop may absorb."""

    def __init__(self, error: Exception, retry_after: Optional[float] = None):
        super().__init__(str(error))
        self.error = error
        self.retry_after = retry_after


def _retry_after_of(headers) -> Optional[float]:
    if headers is None:
        return None
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        return max(0.0, float(value))
    except (TypeError, ValueError):
        return None


class ServeClient:
    """Talks to one ``repro serve`` endpoint."""

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8377",
        timeout: float = 60.0,
        max_retries: int = 3,
        backoff_base_s: float = 0.25,
        backoff_cap_s: float = 5.0,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        #: Lifetime count of retried attempts (all requests).
        self.retries = 0
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------
    def _backoff_delay(
        self, attempt: int, retry_after: Optional[float]
    ) -> float:
        """Jittered exponential backoff, floored by ``Retry-After``.

        The cap applies after the floor so test configurations with a
        tiny ``backoff_cap_s`` stay fast even against ``Retry-After: 1``.
        """
        base = self.backoff_base_s * (2.0 ** attempt)
        delay = base * (0.5 + self._rng.random() / 2.0)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return min(delay, self.backoff_cap_s)

    def _once(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """One attempt; raises :class:`_Retryable` for absorbable faults."""
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                body = json.loads(resp.read().decode())
                status = resp.status
        except urllib.error.HTTPError as exc:
            retry_after = _retry_after_of(exc.headers)
            try:
                body = json.loads(exc.read().decode())
            except Exception:
                body = None
            error = ServeError(
                (body or {}).get("error", {"code": "internal",
                                           "message": str(exc)}),
                exc.code,
            )
            if exc.code == 503:
                raise _Retryable(error, retry_after) from exc
            raise error from exc
        except (urllib.error.URLError, ConnectionError,
                http.client.HTTPException, TimeoutError) as exc:
            raise _Retryable(exc) from exc
        if isinstance(body, dict) and body.get("ok") is False:
            raise ServeError(body.get("error", {}), status)
        return body

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 retry: bool = True) -> Dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self._once(method, path, payload)
            except _Retryable as failure:
                if not retry or attempt >= self.max_retries:
                    raise failure.error from failure
                self._sleep(self._backoff_delay(attempt, failure.retry_after))
                attempt += 1
                self.retries += 1

    # ------------------------------------------------------------------
    def compile_trace(
        self,
        source: str,
        machine: Optional[Dict[str, Any]] = None,
        method: str = "ursa",
        **options: Any,
    ) -> Dict[str, Any]:
        """Compile one straight-line trace; returns the ``result`` dict."""
        request: Dict[str, Any] = {
            "kind": "trace", "source": source, "method": method,
        }
        if machine is not None:
            request["machine"] = machine
        if options:
            request["options"] = options
        return self._request("POST", "/v1/compile", request)["result"]

    def compile_program(
        self,
        source: str,
        machine: Optional[Dict[str, Any]] = None,
        method: str = "ursa",
        **options: Any,
    ) -> Dict[str, Any]:
        """Compile (and verify-run) a multi-block program."""
        request: Dict[str, Any] = {
            "kind": "program", "source": source, "method": method,
        }
        if machine is not None:
            request["machine"] = machine
        if options:
            request["options"] = options
        return self._request("POST", "/v1/compile", request)["result"]

    def batch(self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Submit a batch; returns the per-entry response list.

        Entries fail independently — inspect each element's ``ok``.
        """
        body = self._request("POST", "/v1/compile", {"requests": requests})
        return body["responses"]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        body = self._request("GET", "/v1/stats")
        if isinstance(body, dict):
            body["client"] = {
                "retries": self.retries,
                "max_retries": self.max_retries,
            }
        return body

    def cache_stats(self) -> Optional[Dict[str, Any]]:
        return self._request("GET", "/v1/cache")["cache"]

    def health(self) -> bool:
        """Liveness probe; never retries (a probe must not mask faults)."""
        try:
            body = self._request("GET", "/healthz", retry=False)
            return bool(body.get("ok"))
        except (ServeError, OSError, http.client.HTTPException):
            return False

    def health_detail(self) -> Dict[str, Any]:
        """Full ``/healthz`` body (status + workers); never retries.

        A draining server answers 503 with ``status="draining"`` — that
        body is returned rather than raised so probes can render it.
        """
        try:
            return self._request("GET", "/healthz", retry=False)
        except ServeError as exc:
            return {"ok": False, "status": exc.code, "error": exc.error}
