"""Sharded parallel compilation: traces fanned over a process pool.

Whole-program compilation is embarrassingly parallel — every prepared
trace is self-contained straight-line code (boundary values travel
through memory, registers are intra-trace; see
``repro/program_compiler.py``) — so the shards are the traces.
:func:`compile_shards` fans a list of them across a
``multiprocessing`` pool and returns artifacts **in input order**
(``Pool.map`` preserves it), so results are deterministic regardless
of which worker finishes first.

Resilience is inherited from ``repro.resilience`` per shard: each
worker installs its own per-trace :class:`~repro.resilience.Deadline`
and, under ``resilient=True``, runs the full fallback ladder, so one
pathological trace degrades alone instead of stalling the program.

Degradation is graceful twice over:

* if the pool itself cannot be used (payloads that do not pickle, a
  sandbox with no process spawning, a crashed worker) the caller falls
  back to the serial path — ``serve.pool_fallback`` counts it;
* if one shard fails *inside* a worker, the parent recompiles that
  trace serially so the genuine exception type propagates unchanged.

Workers hold no observer (``repro.obs`` is process-local and off by
default), so the parent's counters describe orchestration only.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.ir.instructions import Instruction
from repro.machine.model import MachineModel
from repro.serve.cache import TraceArtifact, trace_key

#: Fallback-worthy pool failures.  Anything raised while *setting up or
#: driving* the pool (as opposed to inside a shard compile) lands here.
POOL_ERRORS = (
    OSError,
    pickle.PicklingError,
    AttributeError,  # unpicklable closure reached a worker boundary
    EOFError,
    BrokenPipeError,
    ImportError,
)


class ShardError(Exception):
    """A shard failed inside a worker (carries the worker's rendering)."""


def _compile_one(
    instructions: Sequence[Instruction],
    machine: MachineModel,
    method: str,
    deadline_ms: Optional[float],
    resilient: bool,
    key: str,
    analysis_manager=None,
):
    """Compile one prepared trace into a :class:`TraceArtifact`.

    Shared by the serial path, the pool workers, and the server, so
    every route produces identical artifacts for identical inputs.
    """
    from repro.pipeline import compile_trace

    deadline = None
    if deadline_ms is not None:
        from repro.resilience import Deadline

        deadline = Deadline(seconds=deadline_ms / 1000.0)
    result = compile_trace(
        instructions,
        machine,
        method=method,
        verify=False,
        resilient=resilient,
        deadline=deadline,
        analysis_manager=analysis_manager,
    )
    degradation = (
        result.degradation.to_dict() if result.degradation is not None else None
    )
    return TraceArtifact(
        key=key,
        method=method,
        program=result.program,
        cycles_estimate=result.schedule.length,
        degradation=degradation,
    )


def _worker(payload: Tuple) -> Tuple[int, Optional[TraceArtifact], Optional[str]]:
    """Pool entry point; must stay module-level (pickled by name)."""
    index, key, instructions, machine, method, deadline_ms, resilient, engine = payload
    from repro.graph.bitset import set_engine

    set_engine(engine)
    try:
        artifact = _compile_one(
            instructions, machine, method, deadline_ms, resilient, key
        )
        return (index, artifact, None)
    except Exception as exc:  # rendered; the parent re-raises serially
        return (index, None, f"{type(exc).__name__}: {exc}")


def compile_shards(
    shards: Sequence[Tuple[str, Sequence[Instruction]]],
    machine: MachineModel,
    method: str,
    jobs: int,
    deadline_ms: Optional[float] = None,
    resilient: bool = False,
) -> Optional[List[TraceArtifact]]:
    """Compile ``shards`` (``(key, instructions)`` pairs) in parallel.

    Returns artifacts in input order, or ``None`` when the pool could
    not run at all (caller degrades to serial).  A shard that fails in
    its worker is recompiled serially in the parent so its exception
    surfaces with the original type.
    """
    from repro.graph.bitset import active_engine

    engine = active_engine()
    payloads = [
        (i, key, list(instructions), machine, method, deadline_ms,
         resilient, engine)
        for i, (key, instructions) in enumerate(shards)
    ]
    try:
        pickle.dumps(payloads[0])  # cheap preflight: will shards travel?
    except Exception:
        obs.count("serve.pool_fallback")
        obs.event("serve.pool_fallback", reason="unpicklable payload")
        return None

    import multiprocessing

    jobs = max(1, min(jobs, len(payloads)))
    try:
        with multiprocessing.Pool(processes=jobs) as pool:
            raw = pool.map(_worker, payloads)
    except POOL_ERRORS as exc:
        obs.count("serve.pool_fallback")
        obs.event("serve.pool_fallback", reason=f"{type(exc).__name__}: {exc}")
        return None

    obs.count("serve.pool_compiles", len(payloads))
    artifacts: List[Optional[TraceArtifact]] = [None] * len(payloads)
    for index, artifact, error in raw:
        if error is not None:
            # Reproduce the failure in-process: the serial compile
            # raises the genuine exception type for the caller.
            obs.count("serve.shard_errors")
            _, key, instructions, *_ = payloads[index]
            artifact = _compile_one(
                instructions, machine, method, deadline_ms, resilient, key
            )
        artifacts[index] = artifact
    return artifacts  # type: ignore[return-value]
