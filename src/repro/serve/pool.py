"""Persistent supervised worker pool for ``repro serve``.

PR 7's ``compile_shards`` forks a fresh ``multiprocessing.Pool`` per
request — ~30 ms of startup tax that dwarfs the compile time of small
programs, and a crashed worker silently degrades the whole request to
serial mode.  :class:`WorkerPool` replaces it for long-lived servers:

* workers are forked **once** (at server start) and kept warm across
  requests, so sharding small programs finally wins;
* each worker is **supervised**: liveness is checked every poll tick,
  idle workers emit heartbeats, and a worker that crashes, hangs past
  its shard deadline, or exceeds a memory watermark is killed and
  respawned under the capped exponential backoff of
  :class:`~repro.serve.supervisor.RestartPolicy`;
* a shard whose worker died is **requeued** on another worker — and a
  trace key that keeps killing workers is circuit-broken by the
  :class:`~repro.serve.supervisor.QuarantineRegistry` and compiled
  in-parent under the resilient fallback ladder instead of
  crash-looping the pool;
* compilation is deterministic, so a shard retried after a crash (or
  even double-executed by a stale worker) produces the same artifact —
  ``map_shards`` keeps only the first result per task and bit-identity
  with a serial compile is preserved (``program_signature``).

Fork-safety notes: each worker has a private inbox ``Queue`` written
only by the parent; all workers share one outbox ``Queue`` written
only by children and read only by the parent, so neither lock is ever
contended across the fork boundary in a surprising way.  Batches are
serialized by a parent-side lock (`ThreadingHTTPServer` handlers all
funnel through the same pool).

``map_shards`` mirrors the ``compile_shards`` contract: it returns
in-order :class:`~repro.serve.cache.TraceArtifact` objects, or
``None`` when the pool cannot run at all (unpicklable payload, pool
closed, every slot exhausted) — callers degrade to their serial path
exactly as they do for a per-request pool failure.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro import obs
from repro.serve.supervisor import RestartPolicy, Supervisor

# Outbox message kinds (plain tuples; must stay picklable and tiny).
_RESULT = "result"
_BEAT = "beat"

# How often an idle worker proves its loop is not wedged.
HEARTBEAT_INTERVAL_S = 5.0

# Parent-side poll tick while a batch is in flight.
_POLL_S = 0.02


@dataclass(frozen=True)
class ShardTask:
    """One trace shard, shipped to a worker over its inbox queue."""

    task_id: int
    key: str
    instructions: tuple
    machine: object
    method: str
    deadline_ms: Optional[int]
    resilient: bool
    chaos_sleep_s: float = 0.0


def _pool_worker_main(worker_id: int, inbox, outbox, engine: str) -> None:
    """Long-lived worker loop: compile shards until the ``None`` sentinel.

    Runs in the forked child.  SIGINT is ignored (Ctrl-C belongs to the
    parent's drain path); SIGTERM/SIGKILL from the supervisor just end
    the process — the parent requeues whatever we were holding.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    from repro.graph.bitset import set_engine
    from repro.serve import shard as shard_mod

    set_engine(engine)
    while True:
        try:
            task = inbox.get(timeout=HEARTBEAT_INTERVAL_S)
        except queue.Empty:
            outbox.put((_BEAT, worker_id, time.time()))
            continue
        if task is None:
            return
        if task.chaos_sleep_s > 0:  # injected by service-level chaos faults
            time.sleep(task.chaos_sleep_s)
        try:
            # The parent's uid counter is always ahead of ours (we forked
            # at server start); lift ours past the shipped instructions
            # or freshly synthesized uids would collide with them.
            from repro.ir.instructions import ensure_uid_floor

            ensure_uid_floor(
                max((inst.uid for inst in task.instructions), default=0)
            )
            artifact = shard_mod._compile_one(
                list(task.instructions),
                task.machine,
                task.method,
                task.deadline_ms,
                task.resilient,
                task.key,
            )
            outbox.put((_RESULT, task.task_id, worker_id, artifact, None))
        except BaseException as error:  # noqa: BLE001 - report, don't die
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            outbox.put((_RESULT, task.task_id, worker_id, None, repr(error)))


def _read_rss_kb(pid: int) -> Optional[int]:
    """Resident set size of ``pid`` in KiB via /proc, None off-Linux."""
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


class _WorkerHandle:
    """A live worker process plus its private inbox queue."""

    def __init__(self, process, inbox) -> None:
        self.process = process
        self.inbox = inbox


class WorkerPool:
    """Forked-once, supervised shard-compilation pool (see module docs)."""

    def __init__(
        self,
        workers: int = 2,
        hang_timeout_s: float = 60.0,
        max_worker_rss_mb: Optional[int] = None,
        restart_policy: Optional[RestartPolicy] = None,
        quarantine_threshold: int = 2,
    ) -> None:
        self.size = max(1, int(workers))
        self.hang_timeout_s = hang_timeout_s
        self.max_worker_rss_mb = max_worker_rss_mb
        self.supervisor = Supervisor(
            self.size, restart_policy, quarantine_threshold
        )
        self._rss_reader = _read_rss_kb
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context()
        from repro.graph.bitset import active_engine

        self._engine = active_engine()
        self._outbox = self._ctx.Queue()
        self._handles: List[Optional[_WorkerHandle]] = [None] * self.size
        self._batch_lock = threading.Lock()
        self._closed = False
        for worker_id in range(self.size):
            self._spawn(worker_id)
        obs.peak("serve.pool.workers", self.supervisor.alive_count())

    # -- lifecycle -----------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(worker_id, inbox, self._outbox, self._engine),
            daemon=True,
        )
        process.start()
        self._handles[worker_id] = _WorkerHandle(process, inbox)
        self.supervisor.on_spawn(self.supervisor.states[worker_id], process.pid)

    def _restart(self, worker_id: int, reason: str) -> None:
        state = self.supervisor.states[worker_id]
        state.restarts += 1
        obs.count("serve.pool.restarts")
        obs.event("serve.pool.restart", worker=worker_id, reason=reason)
        self._discard_handle(worker_id)
        self._spawn(worker_id)
        obs.peak("serve.pool.workers", self.supervisor.alive_count())

    def _discard_handle(self, worker_id: int) -> None:
        handle = self._handles[worker_id]
        self._handles[worker_id] = None
        if handle is None:
            return
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=2.0)

    def shutdown(self, timeout_s: float = 2.0) -> None:
        """Stop all workers (sentinel first, SIGKILL stragglers)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles:
            if handle is not None and handle.process.is_alive():
                try:
                    handle.inbox.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout_s
        for worker_id, handle in enumerate(self._handles):
            if handle is None:
                continue
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            self._handles[worker_id] = None
            state = self.supervisor.states[worker_id]
            state.alive = False
            state.pid = None

    @property
    def closed(self) -> bool:
        return self._closed

    # -- observation ---------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Pool state for ``/v1/stats`` and ``/healthz``."""
        self._drain_beats()
        for worker_id, state in enumerate(self.supervisor.states):
            handle = self._handles[worker_id]
            if state.alive and (handle is None or not handle.process.is_alive()):
                state.alive = False
        snap = self.supervisor.snapshot()
        snap["engine"] = self._engine
        snap["closed"] = self._closed
        return snap

    def _drain_beats(self) -> None:
        """Consume idle heartbeats (results never appear outside a batch)."""
        while True:
            try:
                message = self._outbox.get_nowait()
            except (queue.Empty, OSError, ValueError):
                return
            self._note_beat(message)

    def _note_beat(self, message: tuple) -> bool:
        if message[0] != _BEAT:
            return False
        worker_id = message[1]
        if 0 <= worker_id < self.size:
            self.supervisor.states[worker_id].last_beat = time.monotonic()
        return True

    # -- the batch loop ------------------------------------------------
    def map_shards(
        self,
        shards: Sequence[Tuple[str, Sequence[object]]],
        machine,
        method: str,
        deadline_ms: Optional[int] = None,
        resilient: bool = False,
    ) -> Optional[List[object]]:
        """Compile ``[(key, instructions), ...]`` → in-order artifacts.

        Returns ``None`` when the pool cannot run at all (caller falls
        back to its serial path, like a ``compile_shards`` failure).
        Worker deaths mid-shard are recovered internally: the shard is
        requeued, the worker restarted under backoff, and quarantined
        keys are compiled in-parent — so a non-``None`` return is
        always complete and bit-identical to a serial compile.
        """
        if self._closed or not shards:
            return None
        if not self.supervisor.healthy():
            obs.count("serve.pool.unavailable")
            return None
        import pickle

        try:  # preflight: unpicklable machines degrade to serial (PR 7)
            pickle.dumps((shards[0][1], machine))
        except Exception:
            obs.count("serve.pool.unpicklable")
            return None
        with self._batch_lock:
            with obs.span("serve.pool.batch", shards=len(shards)):
                return self._run_batch(
                    shards, machine, method, deadline_ms, resilient
                )

    def _run_batch(
        self, shards, machine, method, deadline_ms, resilient
    ) -> List[object]:
        from collections import deque

        tasks = [
            ShardTask(
                task_id=index,
                key=key,
                instructions=tuple(instructions),
                machine=machine,
                method=method,
                deadline_ms=deadline_ms,
                resilient=resilient,
            )
            for index, (key, instructions) in enumerate(shards)
        ]
        results: List[object] = [None] * len(tasks)
        completed: set = set()
        pending = deque()
        for task in tasks:
            if self.supervisor.quarantine.hit(task.key):
                results[task.task_id] = self._compile_in_parent(
                    task, quarantined=True
                )
                completed.add(task.task_id)
            else:
                pending.append(task)
        running: Dict[int, ShardTask] = {}
        while len(completed) < len(tasks):
            self._dispatch(pending, running)
            if not running:
                if pending:
                    # No worker can take work right now (all dead or in
                    # backoff).  If a slot's backoff expires imminently,
                    # wait for the restart — shards should recover onto
                    # workers, not silently serialize into the parent —
                    # otherwise guarantee progress in-parent.
                    wait = self._next_restart_wait()
                    if wait is not None and wait <= 0.25:
                        time.sleep(min(max(wait, 0.0) + 0.005, 0.25))
                        continue
                    task = pending.popleft()
                    results[task.task_id] = self._compile_in_parent(task)
                    completed.add(task.task_id)
                continue
            message = self._poll()
            if message is not None:
                self._absorb(message, tasks, results, completed, running)
            self._reap(running, pending, results, completed)
        obs.count("serve.pool.tasks", len(tasks))
        return results

    def _dispatch(self, pending, running) -> None:
        from repro.resilience import chaos

        now = time.monotonic()
        for worker_id, state in enumerate(self.supervisor.states):
            if not pending:
                return
            if state.busy_key is not None:
                continue
            if not state.alive:
                if self.supervisor.may_restart(state, now):
                    self._restart(worker_id, reason="death")
                else:
                    continue
            handle = self._handles[worker_id]
            if handle is None:
                continue
            task = pending.popleft()
            if chaos.service_hang_worker(worker=worker_id, key=task.key):
                # Sleep far past the hang watchdog: the supervisor must
                # SIGKILL and requeue, exactly like a real wedged worker.
                task = replace(task, chaos_sleep_s=self._hang_budget(task) * 4)
            else:
                delay = chaos.service_shard_delay()
                if delay > 0:
                    task = replace(task, chaos_sleep_s=delay)
            try:
                handle.inbox.put(task)
            except (OSError, ValueError):  # pragma: no cover - torn queue
                self._on_death(worker_id, running, pending, None, None)
                pending.appendleft(task)
                continue
            state.busy_key = task.key
            state.busy_since = time.monotonic()
            running[worker_id] = task
            obs.count("serve.pool.dispatched")
            if chaos.service_kill_worker(worker=worker_id, key=task.key):
                if state.pid is not None:
                    try:
                        os.kill(state.pid, signal.SIGKILL)
                    except (OSError, ProcessLookupError):  # pragma: no cover
                        pass

    def _poll(self) -> Optional[tuple]:
        try:
            return self._outbox.get(timeout=_POLL_S)
        except (queue.Empty, OSError, ValueError):
            return None

    def _absorb(self, message, tasks, results, completed, running) -> None:
        if self._note_beat(message):
            return
        _, task_id, worker_id, artifact, error = message
        if 0 <= worker_id < self.size:
            state = self.supervisor.states[worker_id]
            if worker_id in running and running[worker_id].task_id == task_id:
                del running[worker_id]
                self.supervisor.on_task_done(state)
                self._maybe_recycle_for_memory(worker_id)
            else:
                # Stale result from a pre-restart incarnation of this
                # slot: don't touch the current incarnation's busy state.
                state.last_beat = time.monotonic()
        if task_id in completed:
            return  # stale duplicate from a pre-restart incarnation
        if error is not None:
            # The shard raised *inside* the worker.  Reproduce in-parent
            # so the genuine exception type propagates to the caller —
            # same contract as compile_shards' failed-shard recompile.
            obs.count("serve.pool.shard_errors")
            obs.event(
                "serve.pool.shard_error", key=tasks[task_id].key, error=error
            )
            results[task_id] = self._compile_in_parent(tasks[task_id])
        else:
            results[task_id] = artifact
        completed.add(task_id)

    def _reap(self, running, pending, results, completed) -> None:
        """Kill hung workers; absorb deaths; requeue or quarantine shards."""
        now = time.monotonic()
        for worker_id, state in enumerate(self.supervisor.states):
            handle = self._handles[worker_id]
            if handle is None or not state.alive:
                continue
            alive = handle.process.is_alive()
            if (
                alive
                and state.busy_since is not None
                and worker_id in running
                and now - state.busy_since
                > self._hang_budget(running[worker_id])
            ):
                self.supervisor.hangs += 1
                obs.count("serve.pool.hangs")
                obs.event(
                    "serve.pool.hang", worker=worker_id, key=state.busy_key
                )
                handle.process.kill()
                handle.process.join(timeout=2.0)
                alive = False
            if not alive:
                task = running.pop(worker_id, None)
                self._on_death(
                    worker_id, running, pending, results, completed, task
                )

    def _on_death(
        self, worker_id, running, pending, results, completed, task=None
    ) -> None:
        state = self.supervisor.states[worker_id]
        quarantined = self.supervisor.on_death(
            state, task.key if task is not None else None
        )
        self._discard_handle(worker_id)
        obs.peak("serve.pool.workers", self.supervisor.alive_count())
        if task is None or results is None or task.task_id in completed:
            return
        if quarantined:
            results[task.task_id] = self._compile_in_parent(
                task, quarantined=True
            )
            completed.add(task.task_id)
        else:
            pending.appendleft(task)  # retry on the next healthy worker

    def _next_restart_wait(self) -> Optional[float]:
        """Seconds until some dead slot may restart; None if none can."""
        now = time.monotonic()
        waits = [
            state.not_before - now
            for state in self.supervisor.states
            if not state.alive
            and not self.supervisor.policy.exhausted(
                state.consecutive_failures
            )
        ]
        return min(waits) if waits else None

    def _hang_budget(self, task: ShardTask) -> float:
        budget = self.hang_timeout_s
        if task.deadline_ms is not None:
            budget = max(budget, 3.0 * task.deadline_ms / 1000.0)
        return budget

    def _maybe_recycle_for_memory(self, worker_id: int) -> None:
        if self.max_worker_rss_mb is None:
            return
        state = self.supervisor.states[worker_id]
        if state.pid is None or not state.alive:
            return
        rss_kb = self._rss_reader(state.pid)
        if rss_kb is not None and rss_kb > self.max_worker_rss_mb * 1024:
            self.supervisor.mem_restarts += 1
            obs.count("serve.pool.mem_restarts")
            obs.event(
                "serve.pool.mem_restart", worker=worker_id, rss_kb=rss_kb
            )
            self._restart(worker_id, reason="memory")

    def _compile_in_parent(self, task: ShardTask, quarantined: bool = False):
        from repro.serve import shard as shard_mod

        self.supervisor.parent_compiles += 1
        obs.count("serve.pool.parent_compiles")
        if not quarantined:
            return shard_mod._compile_one(
                list(task.instructions),
                task.machine,
                task.method,
                task.deadline_ms,
                task.resilient,
                task.key,
            )
        # Quarantined key: always compile under the resilient fallback
        # ladder and stamp the DegradationReport so the outcome is
        # explicit (and never cached — degraded artifacts are skipped).
        artifact = shard_mod._compile_one(
            list(task.instructions),
            task.machine,
            task.method,
            task.deadline_ms,
            True,
            task.key,
        )
        degradation = dict(artifact.degradation or {})
        degradation.setdefault("requested_method", task.method)
        degradation.setdefault("final_method", artifact.method)
        degradation["degraded"] = True
        degradation["quarantined"] = True
        degradation["worker_deaths"] = self.supervisor.quarantine.deaths.get(
            task.key, 0
        )
        artifact.degradation = degradation
        return artifact
