"""Supervision policy for the persistent worker pool (no processes here).

:mod:`repro.serve.pool` owns the ``multiprocessing`` mechanics; this
module owns every *decision* the pool makes about its workers, so the
policy is unit-testable without forking anything:

* :class:`RestartPolicy` — capped exponential backoff between restarts
  of the same worker slot, and the give-up bar (a slot that keeps
  dying without ever finishing a task is eventually abandoned rather
  than crash-looped);
* :class:`WorkerState` — one slot's bookkeeping: pid, busy task,
  restart/death counts, heartbeat timestamps, backoff gate;
* :class:`QuarantineRegistry` — the poisoned-trace circuit breaker: a
  trace key whose compilation has killed ``threshold`` workers is
  quarantined and from then on compiled only in-parent under the
  resilient fallback ladder (``docs/serving.md``);
* :class:`Supervisor` — glues the three together and renders the
  ``/v1/stats`` / ``/healthz`` snapshot.

Counters (``docs/observability.md``): ``serve.pool.worker_deaths``,
``serve.pool.hangs``, ``serve.pool.restarts``,
``serve.pool.mem_restarts``, ``serve.pool.parent_compiles``,
``serve.quarantine.trips``, ``serve.quarantine.hits``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs


@dataclass
class RestartPolicy:
    """Capped exponential backoff for restarting a crashed worker slot.

    The first restart is nearly immediate; each *consecutive* failure
    (no completed task in between) doubles the delay up to
    ``cap_delay_s``.  After ``max_consecutive`` failures in a row the
    slot is abandoned — the pool keeps serving through its remaining
    workers (or in-parent) instead of crash-looping one slot forever.
    """

    base_delay_s: float = 0.05
    cap_delay_s: float = 2.0
    max_consecutive: int = 5

    def delay_for(self, consecutive_failures: int) -> float:
        exponent = max(0, consecutive_failures - 1)
        return min(self.base_delay_s * (2.0 ** exponent), self.cap_delay_s)

    def exhausted(self, consecutive_failures: int) -> bool:
        return consecutive_failures >= self.max_consecutive


@dataclass
class WorkerState:
    """Bookkeeping for one worker slot (survives restarts of the slot)."""

    worker_id: int
    pid: Optional[int] = None
    alive: bool = False
    busy_key: Optional[str] = None
    busy_since: Optional[float] = None
    restarts: int = 0
    consecutive_failures: int = 0
    not_before: float = 0.0
    tasks_done: int = 0
    last_beat: float = field(default_factory=time.monotonic)

    def snapshot(self) -> Dict[str, object]:
        now = time.monotonic()
        return {
            "id": self.worker_id,
            "pid": self.pid,
            "alive": self.alive,
            "busy": self.busy_key is not None,
            "restarts": self.restarts,
            "consecutive_failures": self.consecutive_failures,
            "tasks_done": self.tasks_done,
            "beat_age_s": round(now - self.last_beat, 3),
        }


class QuarantineRegistry:
    """Circuit breaker for traces that kill the workers compiling them.

    ``record_death(key)`` is called every time a worker dies (crash,
    SIGKILL, hang-kill) while holding ``key``; once the per-key death
    count reaches ``threshold`` the key is quarantined: the pool never
    hands it to a worker again, compiling it in-parent under the
    resilient fallback ladder instead, and the artifact's
    ``DegradationReport`` records the quarantine.
    """

    def __init__(self, threshold: int = 2) -> None:
        self.threshold = max(1, threshold)
        self.deaths: Dict[str, int] = {}
        self.quarantined: set = set()
        self.trips = 0
        self.hits = 0

    def record_death(self, key: str) -> bool:
        """Count one worker death against ``key``; True when it trips."""
        self.deaths[key] = self.deaths.get(key, 0) + 1
        if key not in self.quarantined and self.deaths[key] >= self.threshold:
            self.quarantined.add(key)
            self.trips += 1
            obs.count("serve.quarantine.trips")
            obs.event(
                "serve.quarantine", key=key, deaths=self.deaths[key]
            )
            return True
        return False

    def hit(self, key: str) -> bool:
        """True (and counted) when ``key`` must bypass the pool."""
        if key in self.quarantined:
            self.hits += 1
            obs.count("serve.quarantine.hits")
            return True
        return False

    def snapshot(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "keys": sorted(self.quarantined),
            "trips": self.trips,
            "hits": self.hits,
        }


class Supervisor:
    """Decides restarts, attributes deaths, and renders pool health."""

    def __init__(
        self,
        size: int,
        policy: Optional[RestartPolicy] = None,
        quarantine_threshold: int = 2,
    ) -> None:
        self.policy = policy or RestartPolicy()
        self.states: List[WorkerState] = [WorkerState(i) for i in range(size)]
        self.quarantine = QuarantineRegistry(quarantine_threshold)
        self.deaths = 0
        self.hangs = 0
        self.mem_restarts = 0
        self.parent_compiles = 0

    # ------------------------------------------------------------------
    def on_spawn(self, state: WorkerState, pid: int) -> None:
        state.pid = pid
        state.alive = True
        state.busy_key = None
        state.busy_since = None
        state.last_beat = time.monotonic()

    def on_task_done(self, state: WorkerState) -> None:
        state.busy_key = None
        state.busy_since = None
        state.consecutive_failures = 0
        state.tasks_done += 1
        state.last_beat = time.monotonic()

    def on_death(self, state: WorkerState, key: Optional[str]) -> bool:
        """Record one worker death; True when ``key`` just quarantined."""
        state.alive = False
        state.pid = None
        state.busy_key = None
        state.busy_since = None
        state.consecutive_failures += 1
        state.not_before = time.monotonic() + self.policy.delay_for(
            state.consecutive_failures
        )
        self.deaths += 1
        obs.count("serve.pool.worker_deaths")
        obs.event(
            "serve.pool.death",
            worker=state.worker_id,
            key=key,
            consecutive=state.consecutive_failures,
        )
        if key is not None:
            return self.quarantine.record_death(key)
        return False

    def may_restart(self, state: WorkerState, now: Optional[float] = None) -> bool:
        """True when a dead slot is allowed to respawn right now."""
        if state.alive:
            return False
        if self.policy.exhausted(state.consecutive_failures):
            return False
        return (now if now is not None else time.monotonic()) >= state.not_before

    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        """At least one slot is alive or still eligible to restart."""
        return any(
            state.alive or not self.policy.exhausted(state.consecutive_failures)
            for state in self.states
        )

    def alive_count(self) -> int:
        return sum(1 for state in self.states if state.alive)

    def snapshot(self) -> Dict[str, object]:
        return {
            "size": len(self.states),
            "alive": self.alive_count(),
            "healthy": self.healthy(),
            "workers": [state.snapshot() for state in self.states],
            "restarts": sum(state.restarts for state in self.states),
            "deaths": self.deaths,
            "hangs": self.hangs,
            "mem_restarts": self.mem_restarts,
            "parent_compiles": self.parent_compiles,
            "quarantine": self.quarantine.snapshot(),
        }
