"""The ``repro serve`` HTTP endpoint: a long-lived compilation service.

Stdlib-only (``http.server``), so it runs anywhere the library does.
One process hosts:

* ``POST /v1/compile`` — single or batch compile requests (see
  :mod:`repro.serve.protocol` and ``docs/serving.md``);
* ``POST /v1/analyze`` — static analysis only: diagnostics + resource
  lower bounds, never invokes the compiler (``docs/analysis.md``);
* ``GET  /v1/stats``   — server-lifetime observability counters plus
  cache statistics, worker-pool state, and admission-control state;
* ``GET  /v1/cache``   — the persistent store's stats alone;
* ``GET  /healthz``    — liveness probe reporting ``"ok"`` or
  ``"degraded"`` plus per-worker pool state; 503 only when no compile
  path remains (draining or closed).

The server owns one :class:`~repro.serve.cache.CompileCache` and (when
``workers`` is set) one persistent supervised
:class:`~repro.serve.pool.WorkerPool` — workers are forked once at
start and reused across requests (see :mod:`repro.serve.pool`).  A
server-lifetime ``repro.obs`` capture backs ``/v1/stats``, and every
request runs under a ``serve.request`` span.

Service hardening (PR 9, ``docs/serving.md`` runbook):

* **Admission control** — at most ``queue_depth`` POSTs in flight;
  excess requests are shed with ``503`` + ``Retry-After`` (counter
  ``serve.shed``) *before* their body is parsed, so a flood cannot
  wedge the server.  GET probes always pass.
* **Graceful drain** — SIGTERM (and the normal shutdown path) stops
  admission (new POSTs get ``503`` with ``code="draining"``), waits up
  to ``drain_timeout_s`` for in-flight requests, then flushes the
  cache and the obs capture exactly once (``ServeApp.close`` is
  idempotent and returns whether it performed the flush).

Threading: :class:`ThreadingHTTPServer` gives one thread per
connection.  The cache and pool are thread-safe (pool batches are
serialized); compilation itself is pure Python and GIL-bound, so
handler concurrency is about *latency overlap* while CPU-parallel
throughput comes from the worker pool on ``program`` requests.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro import obs
from repro.serve.cache import CompileCache, resolve_cache
from repro.serve.protocol import (
    DEFAULT_MAX_BATCH,
    error_response,
    handle_payload,
)

#: Request bodies larger than this are rejected outright (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Default admission-control watermark: concurrent POSTs beyond this
#: are shed with 503 + Retry-After (see docs/serving.md).
DEFAULT_QUEUE_DEPTH = 32

#: Default seconds to wait for in-flight requests during drain.
DEFAULT_DRAIN_TIMEOUT_S = 10.0

_HEADERS = Dict[str, str]


class ServeApp:
    """Transport-free core of the server: routes to JSON responses.

    Separated from the HTTP handler so tests can drive it without
    sockets and future transports can reuse it unchanged.  The guarded
    entry points (:meth:`guarded_compile` / :meth:`guarded_analyze`)
    wrap the routes with admission control and return
    ``(status, body, headers)``.
    """

    def __init__(
        self,
        cache: Union[None, bool, str, Path, CompileCache] = True,
        jobs: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        workers: Optional[int] = None,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
        pool: Optional[object] = None,
        pool_options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.cache = resolve_cache(cache)
        self.jobs = jobs
        self.deadline_ms = deadline_ms
        self.max_batch = max_batch
        self.queue_depth = max(1, int(queue_depth))
        self.drain_timeout_s = drain_timeout_s
        self.draining = False
        self.shed = 0
        self.flushes = 0
        self._closed = False
        self._inflight = 0
        self._admission = threading.Lock()
        self._idle = threading.Condition(self._admission)
        # Server-lifetime capture: /v1/stats reads these counters.  The
        # capture must be live before the pool forks so pool counters
        # land in it.
        self._capture = obs.capture()
        self.observer = self._capture.__enter__()
        if pool is None and workers is not None and workers > 0:
            from repro.serve.pool import WorkerPool

            pool = WorkerPool(workers=workers, **(pool_options or {}))
        self.pool = pool

    def close(self) -> bool:
        """Shut the pool down and flush the obs capture exactly once.

        Returns True when this call performed the flush, False when a
        previous call already did — the graceful-drain tests pin the
        exactly-once contract on this.
        """
        with self._admission:
            if self._closed:
                return False
            self._closed = True
            self.draining = True
        if self.pool is not None:
            self.pool.shutdown()
        self._capture.__exit__(None, None, None)
        self.flushes += 1
        return True

    # -- admission control ---------------------------------------------
    def admit(self) -> Optional[Tuple[int, Dict[str, Any], _HEADERS]]:
        """Admit one POST, or return the 503 shed/drain response.

        ``Connection: close`` rides along on sheds so a flood's
        keep-alive sockets don't pin handler threads.
        """
        from repro.resilience import chaos

        with self._admission:
            if self._closed or self.draining:
                obs.count("serve.drain.rejected")
                body = error_response(
                    "draining",
                    "ServiceDraining",
                    "server is draining; retry against another instance",
                )
                return 503, body, {"Retry-After": "1", "Connection": "close"}
            flooded = chaos.service_flood_queue()
            if flooded or self._inflight >= self.queue_depth:
                self.shed += 1
                obs.count("serve.shed")
                detail = (
                    "chaos queue-flood fault"
                    if flooded
                    else f"{self._inflight} requests in flight >= "
                    f"queue depth {self.queue_depth}"
                )
                body = error_response(
                    "overloaded", "Overloaded", f"load shed: {detail}"
                )
                return 503, body, {"Retry-After": "1", "Connection": "close"}
            self._inflight += 1
            return None

    def release(self) -> None:
        with self._admission:
            self._inflight = max(0, self._inflight - 1)
            if self._inflight == 0:
                self._idle.notify_all()

    def begin_drain(self) -> None:
        """Stop admitting new work (idempotent); in-flight continues."""
        with self._admission:
            if not self.draining:
                self.draining = True
                obs.count("serve.drain.begun")

    def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Wait for in-flight requests; True when the server is idle."""
        deadline = time.monotonic() + (
            self.drain_timeout_s if timeout_s is None else timeout_s
        )
        with self._admission:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
            return self._inflight == 0

    # -- routes ---------------------------------------------------------
    def compile(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        return handle_payload(
            payload,
            self.cache,
            default_deadline_ms=self.deadline_ms,
            jobs=self.jobs,
            max_batch=self.max_batch,
            pool=self.pool,
        )

    def analyze(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/analyze``: static analysis without compilation.

        The route defaults ``kind`` to ``"analyze"`` so clients can post
        bare ``{"source": ...}`` bodies; an explicit ``kind`` wins (and
        anything other than ``"analyze"`` is rejected by dispatch).
        """
        if isinstance(payload, dict) and "requests" in payload:
            requests = payload.get("requests")
            if isinstance(requests, list):
                payload = dict(payload)
                payload["requests"] = [
                    {"kind": "analyze", **entry}
                    if isinstance(entry, dict) else entry
                    for entry in requests
                ]
        elif isinstance(payload, dict):
            payload = {"kind": "analyze", **payload}
        return handle_payload(payload, None, max_batch=self.max_batch)

    def guarded_compile(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any], _HEADERS]:
        denied = self.admit()
        if denied is not None:
            return denied
        try:
            status, body = self.compile(payload)
            return status, body, {}
        finally:
            self.release()

    def guarded_analyze(
        self, payload: Any
    ) -> Tuple[int, Dict[str, Any], _HEADERS]:
        denied = self.admit()
        if denied is not None:
            return denied
        try:
            status, body = self.analyze(payload)
            return status, body, {}
        finally:
            self.release()

    # -- observation ----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        from repro.methods import catalogue

        counters = dict(sorted(self.observer.counters.items()))
        return {
            "ok": True,
            "counters": counters,
            "methods": catalogue(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "pool": self.pool.snapshot() if self.pool is not None else None,
            "service": {
                "inflight": self._inflight,
                "queue_depth": self.queue_depth,
                "shed": self.shed,
                "draining": self.draining,
            },
            "config": {
                "jobs": self.jobs,
                "deadline_ms": self.deadline_ms,
                "max_batch": self.max_batch,
                "caching": self.cache is not None,
                "workers": self.pool.size if self.pool is not None else None,
                "queue_depth": self.queue_depth,
                "drain_timeout_s": self.drain_timeout_s,
            },
        }

    def cache_stats(self) -> Tuple[int, Dict[str, Any]]:
        if self.cache is None:
            return 200, {"ok": True, "cache": None}
        return 200, {"ok": True, "cache": self.cache.stats()}

    def health(self) -> Tuple[int, Dict[str, Any]]:
        """Liveness + readiness: 503 only when no compile path remains.

        A pool with dead/exhausted workers is *degraded*, not down —
        requests still complete in-parent — so it reports 200 with
        ``status="degraded"`` and the per-worker detail.
        """
        if self._closed:
            return 503, {"ok": False, "status": "closed", "workers": None}
        if self.draining:
            workers = self.pool.snapshot() if self.pool is not None else None
            return 503, {"ok": False, "status": "draining", "workers": workers}
        workers = self.pool.snapshot() if self.pool is not None else None
        degraded = workers is not None and (
            not workers["healthy"] or workers["alive"] == 0
        )
        status = "degraded" if degraded else "ok"
        return 200, {"ok": True, "status": status, "workers": workers}


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP verbs/paths onto the :class:`ServeApp`."""

    app: ServeApp  # set by make_server on the subclass
    quiet = True

    # ------------------------------------------------------------------
    def _send(
        self,
        status: int,
        body: Dict[str, Any],
        headers: Optional[_HEADERS] = None,
    ) -> None:
        blob = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if headers and headers.get("Connection") == "close":
            self.close_connection = True
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, fmt: str, *args: Any) -> None:
        if not self.quiet:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path == "/healthz":
            self._send(*self.app.health())
        elif self.path == "/v1/stats":
            self._send(200, self.app.stats())
        elif self.path == "/v1/cache":
            self._send(*self.app.cache_stats())
        else:
            self._send(
                404,
                error_response("bad_request", "NotFound",
                               f"no route {self.path!r}"),
            )

    def do_POST(self) -> None:  # noqa: N802
        if self.path not in ("/v1/compile", "/v1/analyze"):
            self._send(
                404,
                error_response("bad_request", "NotFound",
                               f"no route {self.path!r}"),
            )
            return
        # Admission first: a shed request is answered (and its socket
        # closed) without even reading the body.
        denied = self.app.admit()
        if denied is not None:
            self._send(*denied)
            return
        try:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                self._send(
                    400,
                    error_response("bad_request", "ProtocolError",
                                   "missing or oversized Content-Length"),
                )
                return
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._send(
                    400,
                    error_response("bad_request", type(exc).__name__,
                                   f"body is not valid JSON: {exc}"),
                )
                return
            route = (
                self.app.analyze if self.path == "/v1/analyze"
                else self.app.compile
            )
            try:
                status, body = route(payload)
            except Exception as exc:  # handle_payload shields; belt+braces
                status, body = 500, error_response(
                    "internal", type(exc).__name__, str(exc)
                )
            self._send(status, body)
        finally:
            self.app.release()


def make_server(
    host: str = "127.0.0.1",
    port: int = 8377,
    cache: Union[None, bool, str, Path, CompileCache] = True,
    jobs: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    quiet: bool = True,
    workers: Optional[int] = None,
    queue_depth: int = DEFAULT_QUEUE_DEPTH,
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    pool_options: Optional[Dict[str, Any]] = None,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server.

    The returned server exposes ``.app`` (the :class:`ServeApp`) and
    ``.server_address`` (useful with ``port=0`` in tests).  Callers own
    shutdown: ``server.shutdown(); server.server_close();
    server.app.close()``.
    """
    app = ServeApp(
        cache=cache,
        jobs=jobs,
        deadline_ms=deadline_ms,
        max_batch=max_batch,
        workers=workers,
        queue_depth=queue_depth,
        drain_timeout_s=drain_timeout_s,
        pool_options=pool_options,
    )
    handler = type("BoundHandler", (_Handler,), {"app": app, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.app = app  # type: ignore[attr-defined]
    return server


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8377,
    **kwargs: Any,
) -> None:
    """Run the compile service until interrupted (the CLI entry).

    SIGTERM triggers a graceful drain: admission stops (new POSTs get
    503 ``draining``), in-flight requests are given ``drain_timeout_s``
    to finish, then the pool, cache, and obs capture are flushed
    exactly once.  Ctrl-C takes the same path.
    """
    server = make_server(host, port, **kwargs)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}")
    app: ServeApp = server.app  # type: ignore[attr-defined]
    if app.cache is not None:
        print(f"repro serve: persistent cache at {app.cache.root}")
    else:
        print("repro serve: persistent cache disabled")
    if app.pool is not None:
        print(
            f"repro serve: worker pool of {app.pool.size} "
            f"(queue depth {app.queue_depth})"
        )

    def _on_sigterm(signum: int, frame: Any) -> None:
        print("repro serve: SIGTERM — draining")
        app.begin_drain()
        # shutdown() blocks until serve_forever returns; do it off the
        # signal frame so the handler itself never deadlocks.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = None
    try:
        previous = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        app.begin_drain()
        drained = app.drain()
        server.server_close()
        app.close()
        outcome = "clean" if drained else "timed out with requests in flight"
        print(f"repro serve: drain {outcome}; cache and obs flushed")
