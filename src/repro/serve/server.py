"""The ``repro serve`` HTTP endpoint: a long-lived compilation service.

Stdlib-only (``http.server``), so it runs anywhere the library does.
One process hosts:

* ``POST /v1/compile`` — single or batch compile requests (see
  :mod:`repro.serve.protocol` and ``docs/serving.md``);
* ``POST /v1/analyze`` — static analysis only: diagnostics + resource
  lower bounds, never invokes the compiler (``docs/analysis.md``);
* ``GET  /v1/stats``   — server-lifetime observability counters plus
  cache statistics;
* ``GET  /v1/cache``   — the persistent store's stats alone;
* ``GET  /healthz``    — liveness probe (also warms nothing).

The server owns one :class:`~repro.serve.cache.CompileCache`: its disk
level is the cross-process persistent store, its memory level is the
hot-trace memoization that makes repeated requests for the same kernel
free.  A server-lifetime ``repro.obs`` capture backs ``/v1/stats``, and
every request runs under a ``serve.request`` span.

Threading: :class:`ThreadingHTTPServer` gives one thread per
connection.  The cache is thread-safe; compilation itself is pure
Python and GIL-bound, so concurrency here is about *latency overlap*
(slow clients, cache hits during a long compile), while CPU-parallel
throughput comes from the sharded pool (``jobs > 1`` on ``program``
requests).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro import obs
from repro.serve.cache import CompileCache, resolve_cache
from repro.serve.protocol import (
    DEFAULT_MAX_BATCH,
    error_response,
    handle_payload,
)

#: Request bodies larger than this are rejected outright (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServeApp:
    """Transport-free core of the server: routes to JSON responses.

    Separated from the HTTP handler so tests can drive it without
    sockets and future transports can reuse it unchanged.
    """

    def __init__(
        self,
        cache: Union[None, bool, str, Path, CompileCache] = True,
        jobs: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        self.cache = resolve_cache(cache)
        self.jobs = jobs
        self.deadline_ms = deadline_ms
        self.max_batch = max_batch
        # Server-lifetime capture: /v1/stats reads these counters.
        self._capture = obs.capture()
        self.observer = self._capture.__enter__()

    def close(self) -> None:
        self._capture.__exit__(None, None, None)

    # ------------------------------------------------------------------
    def compile(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        return handle_payload(
            payload,
            self.cache,
            default_deadline_ms=self.deadline_ms,
            jobs=self.jobs,
            max_batch=self.max_batch,
        )

    def analyze(self, payload: Any) -> Tuple[int, Dict[str, Any]]:
        """``POST /v1/analyze``: static analysis without compilation.

        The route defaults ``kind`` to ``"analyze"`` so clients can post
        bare ``{"source": ...}`` bodies; an explicit ``kind`` wins (and
        anything other than ``"analyze"`` is rejected by dispatch).
        """
        if isinstance(payload, dict) and "requests" in payload:
            requests = payload.get("requests")
            if isinstance(requests, list):
                payload = dict(payload)
                payload["requests"] = [
                    {"kind": "analyze", **entry}
                    if isinstance(entry, dict) else entry
                    for entry in requests
                ]
        elif isinstance(payload, dict):
            payload = {"kind": "analyze", **payload}
        return handle_payload(payload, None, max_batch=self.max_batch)

    def stats(self) -> Dict[str, Any]:
        counters = dict(sorted(self.observer.counters.items()))
        return {
            "ok": True,
            "counters": counters,
            "cache": self.cache.stats() if self.cache is not None else None,
            "config": {
                "jobs": self.jobs,
                "deadline_ms": self.deadline_ms,
                "max_batch": self.max_batch,
                "caching": self.cache is not None,
            },
        }

    def cache_stats(self) -> Tuple[int, Dict[str, Any]]:
        if self.cache is None:
            return 200, {"ok": True, "cache": None}
        return 200, {"ok": True, "cache": self.cache.stats()}

    def health(self) -> Dict[str, Any]:
        return {"ok": True, "status": "serving"}


class _Handler(BaseHTTPRequestHandler):
    """Maps HTTP verbs/paths onto the :class:`ServeApp`."""

    app: ServeApp  # set by make_server on the subclass
    quiet = True

    # ------------------------------------------------------------------
    def _send(self, status: int, body: Dict[str, Any]) -> None:
        blob = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, fmt: str, *args: Any) -> None:
        if not self.quiet:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path == "/healthz":
            self._send(200, self.app.health())
        elif self.path == "/v1/stats":
            self._send(200, self.app.stats())
        elif self.path == "/v1/cache":
            self._send(*self.app.cache_stats())
        else:
            self._send(
                404,
                error_response("bad_request", "NotFound",
                               f"no route {self.path!r}"),
            )

    def do_POST(self) -> None:  # noqa: N802
        if self.path not in ("/v1/compile", "/v1/analyze"):
            self._send(
                404,
                error_response("bad_request", "NotFound",
                               f"no route {self.path!r}"),
            )
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._send(
                400,
                error_response("bad_request", "ProtocolError",
                               "missing or oversized Content-Length"),
            )
            return
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send(
                400,
                error_response("bad_request", type(exc).__name__,
                               f"body is not valid JSON: {exc}"),
            )
            return
        route = (
            self.app.analyze if self.path == "/v1/analyze"
            else self.app.compile
        )
        try:
            status, body = route(payload)
        except Exception as exc:  # handle_payload shields; belt+braces
            status, body = 500, error_response(
                "internal", type(exc).__name__, str(exc)
            )
        self._send(status, body)


def make_server(
    host: str = "127.0.0.1",
    port: int = 8377,
    cache: Union[None, bool, str, Path, CompileCache] = True,
    jobs: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_batch: int = DEFAULT_MAX_BATCH,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server.

    The returned server exposes ``.app`` (the :class:`ServeApp`) and
    ``.server_address`` (useful with ``port=0`` in tests).  Callers own
    shutdown: ``server.shutdown(); server.server_close();
    server.app.close()``.
    """
    app = ServeApp(
        cache=cache, jobs=jobs, deadline_ms=deadline_ms, max_batch=max_batch
    )
    handler = type("BoundHandler", (_Handler,), {"app": app, "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.app = app  # type: ignore[attr-defined]
    return server


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 8377,
    **kwargs: Any,
) -> None:
    """Run the compile service until interrupted (the CLI entry)."""
    server = make_server(host, port, **kwargs)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}")
    app: ServeApp = server.app  # type: ignore[attr-defined]
    if app.cache is not None:
        print(f"repro serve: persistent cache at {app.cache.root}")
    else:
        print("repro serve: persistent cache disabled")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        server.server_close()
        app.close()
