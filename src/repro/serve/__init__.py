"""Compilation as a service: persistent caching, sharding, serving.

Three layers, each usable alone (tour in ``docs/serving.md``):

* :mod:`repro.serve.cache` — a content-addressed persistent compile
  cache (``$REPRO_CACHE_DIR``, default ``~/.cache/repro``) keyed on
  trace text + machine fingerprint + method + engine + pipeline
  version.  Plug it into :func:`repro.program_compiler.compile_program`
  via ``cache=True`` (or a path, or a :class:`CompileCache`).
* :mod:`repro.serve.shard` — sharded parallel compilation: a program's
  traces fanned over a ``multiprocessing`` pool (``jobs=N``), bit-
  identical to the serial path and degrading to it gracefully.
* :mod:`repro.serve.pool` / :mod:`repro.serve.supervisor` — the
  persistent supervised :class:`WorkerPool` behind ``repro serve
  --workers``: forked once, kept warm, crash/hang/memory-recovered,
  with poisoned-trace quarantine.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — a long-lived
  stdlib-HTTP compile service (``repro serve``) and its client, with
  admission control, graceful drain, and client-side retry/backoff.

Server/client/protocol are imported lazily so that importing
``repro.serve`` from inside the compiler (``program_compiler`` uses
the cache and shards) never drags HTTP machinery along.
"""

from repro.serve.cache import (
    CACHE_VERSION,
    CompileCache,
    TraceArtifact,
    default_cache_dir,
    machine_fingerprint,
    program_signature,
    resolve_cache,
    trace_key,
)
from repro.serve.shard import compile_shards

__all__ = [
    "CACHE_VERSION",
    "CompileCache",
    "TraceArtifact",
    "default_cache_dir",
    "machine_fingerprint",
    "program_signature",
    "resolve_cache",
    "trace_key",
    "compile_shards",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "WorkerPool",
    "RestartPolicy",
    "QuarantineRegistry",
    "make_server",
    "serve_forever",
    "handle_payload",
    "machine_from_spec",
]

_LAZY = {
    "ServeApp": "repro.serve.server",
    "make_server": "repro.serve.server",
    "serve_forever": "repro.serve.server",
    "ServeClient": "repro.serve.client",
    "ServeError": "repro.serve.client",
    "WorkerPool": "repro.serve.pool",
    "RestartPolicy": "repro.serve.supervisor",
    "QuarantineRegistry": "repro.serve.supervisor",
    "handle_payload": "repro.serve.protocol",
    "machine_from_spec": "repro.serve.protocol",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.serve' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
