"""``repro.obs`` — the allocator's observability layer.

Span-style timers, monotonic counters, peak gauges, and a structured
JSONL event log, threaded through the measure → reduce → assign
pipeline.  Disabled by default with near-zero overhead; see
``docs/observability.md`` for the event schema and a worked example.

Typical use::

    from repro import obs

    with obs.capture() as trace:
        compile_trace(source, machine)
    trace.write_jsonl("out.jsonl")
    print(trace.counters)

or, from the command line, ``python -m repro compile --kernel figure2
--profile --trace out.jsonl``.
"""

from repro.obs.observer import (
    Observer,
    ObserverError,
    Span,
    active,
    capture,
    count,
    event,
    peak,
    span,
)
from repro.obs.schema import (
    RECORD_TYPES,
    RESERVED_KEYS,
    SCHEMA_VERSION,
    SchemaError,
    aggregate_spans,
    commit_log,
    read_jsonl,
    scalar_totals,
    validate_record,
)

__all__ = [
    "Observer",
    "ObserverError",
    "RECORD_TYPES",
    "RESERVED_KEYS",
    "SCHEMA_VERSION",
    "SchemaError",
    "Span",
    "active",
    "aggregate_spans",
    "capture",
    "commit_log",
    "count",
    "event",
    "peak",
    "read_jsonl",
    "scalar_totals",
    "span",
    "validate_record",
]
