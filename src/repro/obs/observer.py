"""Span timers, monotonic counters, and structured trace events.

Design constraints (see ``docs/observability.md``):

* **Disabled by default, near-zero overhead.**  No observer is active
  unless a :class:`capture` block is open; every instrumentation call
  then reduces to one global read and a ``None`` check, and allocates
  nothing.
* **Flat, ordered records.**  Spans are recorded when they *close*
  (inner spans therefore precede their parent in the stream); their
  ``depth`` field reconstructs the nesting.  Counters and peaks are
  aggregated in memory and written once, when the capture finishes.
* **Streaming-friendly.**  An observer can mirror every record to a
  file sink as JSON Lines while also keeping the in-memory list.

The instrumented modules call the *module-level* functions
(:func:`span`, :func:`count`, :func:`peak`, :func:`event`), which
dispatch to the innermost active capture, so library code never holds
an observer reference.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Any, Callable, Dict, List, Optional, Union

from repro.obs.schema import RESERVED_KEYS, SCHEMA_VERSION


class ObserverError(Exception):
    """Misuse of the observation API (bad field names, closed capture)."""


class _NullSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """A timed region; records one ``span`` event when it exits."""

    __slots__ = ("_observer", "name", "fields", "_start", "_depth")

    def __init__(self, observer: "Observer", name: str, fields: Dict[str, Any]):
        self._observer = observer
        self.name = name
        self.fields = fields

    def __enter__(self) -> "Span":
        observer = self._observer
        self._depth = observer._depth
        observer._depth += 1
        self._start = observer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        observer = self._observer
        end = observer._clock()
        observer._depth -= 1
        record = {
            "type": "span",
            "name": self.name,
            "t": self._start - observer._epoch,
            "dur": end - self._start,
            "depth": self._depth,
        }
        if self.fields:
            record.update(self.fields)
        observer._emit(record)
        return False


class Observer:
    """Collects one trace: spans, events, counters, and peak gauges.

    Args:
        sink: optional text stream; every record is also written there
            as one JSON line, as soon as it is produced.
        clock: monotonic time source (injectable for deterministic
            tests); defaults to :func:`time.perf_counter`.
    """

    def __init__(
        self,
        sink: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._clock = clock
        self._epoch = clock()
        self._depth = 0
        self._sink = sink
        self._finished = False
        self.events: List[Dict[str, Any]] = []
        self.counters: Dict[str, float] = {}
        self.peaks: Dict[str, float] = {}
        self._emit({"type": "meta", "name": "obs", "t": 0.0, "schema": SCHEMA_VERSION})

    # ------------------------------------------------------------------
    def span(self, name: str, **fields: Any) -> Span:
        self._check_fields(fields)
        return Span(self, name, fields)

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def peak(self, name: str, value: Union[int, float]) -> None:
        current = self.peaks.get(name)
        if current is None or value > current:
            self.peaks[name] = value

    def event(self, name: str, **fields: Any) -> None:
        self._check_fields(fields)
        record = {
            "type": "event",
            "name": name,
            "t": self._clock() - self._epoch,
            "depth": self._depth,
        }
        if fields:
            record.update(fields)
        self._emit(record)

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Append counter/peak totals; further records are an error."""
        if self._finished:
            return
        now = self._clock() - self._epoch
        for name in sorted(self.counters):
            self._emit(
                {"type": "counter", "name": name, "t": now,
                 "total": self.counters[name]}
            )
        for name in sorted(self.peaks):
            self._emit(
                {"type": "peak", "name": name, "t": now,
                 "total": self.peaks[name]}
            )
        self._finished = True
        if self._sink is not None:
            self._sink.flush()

    def write_jsonl(self, path: Union[str, Path]) -> None:
        """Write the whole in-memory trace to ``path`` as JSON Lines."""
        with Path(path).open("w") as handle:
            for record in self.events:
                handle.write(json.dumps(record, default=str) + "\n")

    # ------------------------------------------------------------------
    def _emit(self, record: Dict[str, Any]) -> None:
        if self._finished:
            raise ObserverError("capture already finished")
        self.events.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record, default=str) + "\n")

    @staticmethod
    def _check_fields(fields: Dict[str, Any]) -> None:
        bad = RESERVED_KEYS.intersection(fields)
        if bad:
            raise ObserverError(f"reserved field names: {sorted(bad)}")


# ======================================================================
# The active-capture stack and the module-level dispatch API.
# ======================================================================
_stack: List[Observer] = []


def active() -> Optional[Observer]:
    """The innermost active observer, or None when observation is off."""
    return _stack[-1] if _stack else None


class capture:
    """Context manager opening an observation window::

        with obs.capture() as trace:
            compile_trace(...)
        print(trace.counters["matching.augments"])

    Captures nest: the innermost one receives the records.  On exit the
    observer is finished (counter/peak totals appended) and popped.
    """

    def __init__(
        self,
        sink: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._sink = sink
        self._clock = clock
        self._observer: Optional[Observer] = None

    def __enter__(self) -> Observer:
        self._observer = Observer(sink=self._sink, clock=self._clock)
        _stack.append(self._observer)
        return self._observer

    def __exit__(self, *exc: object) -> bool:
        observer = self._observer
        if observer is not None and observer in _stack:
            _stack.remove(observer)
        if observer is not None:
            observer.finish()
        return False


def span(name: str, **fields: Any):
    """Time a region on the active observer (no-op when disabled)."""
    observer = active()
    if observer is None:
        return _NULL_SPAN
    return observer.span(name, **fields)


def count(name: str, n: Union[int, float] = 1) -> None:
    """Bump a monotonic counter on the active observer."""
    observer = active()
    if observer is not None:
        observer.count(name, n)


def peak(name: str, value: Union[int, float]) -> None:
    """Raise a high-water-mark gauge on the active observer."""
    observer = active()
    if observer is not None:
        observer.peak(name, value)


def event(name: str, **fields: Any) -> None:
    """Record a point-in-time event on the active observer."""
    observer = active()
    if observer is not None:
        observer.event(name, **fields)
