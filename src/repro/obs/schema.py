"""The trace event schema (documented in ``docs/observability.md``).

A trace is a JSON-Lines stream.  Every record is a flat JSON object
with at least ``type``, ``name`` and ``t`` (seconds since capture
start); the remaining keys depend on the record type:

``meta``
    First record of every trace: ``schema`` (this format's version).
``span``
    A timed region, written when it *closes*: ``dur`` (seconds) and
    ``depth`` (nesting level at entry), plus any user fields.
``event``
    A point-in-time occurrence: ``depth`` plus any user fields.
``counter``
    Final total of one monotonic counter: ``total``.  Written once per
    counter when the capture finishes.
``peak``
    Final maximum of one high-water-mark gauge: ``total``.

User fields must avoid the reserved keys and be JSON-serializable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

#: Bumped whenever a reader of old traces would misinterpret new ones.
SCHEMA_VERSION = 1

#: Keys the observer itself writes; user fields may not collide.
RESERVED_KEYS = frozenset({"type", "name", "t", "dur", "depth", "total", "schema"})

#: Every valid value of the ``type`` key.
RECORD_TYPES = ("meta", "span", "event", "counter", "peak")


class SchemaError(ValueError):
    """A trace record does not conform to the documented schema."""


def validate_record(record: Mapping[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``record`` matches the schema."""
    kind = record.get("type")
    if kind not in RECORD_TYPES:
        raise SchemaError(f"unknown record type {kind!r}")
    if not isinstance(record.get("name"), str):
        raise SchemaError(f"record missing string 'name': {record!r}")
    if not isinstance(record.get("t"), (int, float)):
        raise SchemaError(f"record missing numeric 't': {record!r}")
    if kind == "meta" and not isinstance(record.get("schema"), int):
        raise SchemaError("meta record missing integer 'schema'")
    if kind == "span":
        if not isinstance(record.get("dur"), (int, float)):
            raise SchemaError(f"span missing numeric 'dur': {record!r}")
        if not isinstance(record.get("depth"), int):
            raise SchemaError(f"span missing integer 'depth': {record!r}")
    if kind in ("counter", "peak") and not isinstance(
        record.get("total"), (int, float)
    ):
        raise SchemaError(f"{kind} record missing numeric 'total': {record!r}")


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load and validate a trace file written by ``Observer.write_jsonl``."""
    records: List[Dict[str, Any]] = []
    for line_no, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}:{line_no}: not JSON: {exc}") from exc
        validate_record(record)
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Aggregation (shared by the --profile table and the reporting renderer).
# ----------------------------------------------------------------------
def aggregate_spans(
    records: Iterable[Mapping[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Per-span-name timing stats: calls, total/mean/max duration."""
    stats: Dict[str, Dict[str, float]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        entry = stats.setdefault(
            record["name"], {"calls": 0, "total": 0.0, "max": 0.0}
        )
        entry["calls"] += 1
        entry["total"] += record["dur"]
        entry["max"] = max(entry["max"], record["dur"])
    for entry in stats.values():
        entry["mean"] = entry["total"] / entry["calls"]
    return stats


def scalar_totals(
    records: Iterable[Mapping[str, Any]],
    kind: str,
) -> Dict[str, float]:
    """Final values of every ``counter`` or ``peak`` record, by name."""
    if kind not in ("counter", "peak"):
        raise ValueError(f"kind must be 'counter' or 'peak', not {kind!r}")
    return {
        record["name"]: record["total"]
        for record in records
        if record.get("type") == kind
    }


def commit_log(
    records: Iterable[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """The allocator's committed-transformation events, in order."""
    return [
        dict(record)
        for record in records
        if record.get("type") == "event" and record["name"] == "allocate.commit"
    ]
