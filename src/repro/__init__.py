"""URSA: a Unified ReSource Allocator for registers and functional units
in VLIW architectures — a full reproduction of Berson, Gupta & Soffa
(PACT 1993).

Quickstart::

    from repro import MachineModel, compile_trace
    from repro.workloads import kernel

    machine = MachineModel.homogeneous(n_fus=4, n_regs=8)
    result = compile_trace(kernel("dot-product", unroll=8), machine)
    print(result.stats.cycles, result.verified)
"""

from repro import obs
from repro.core import (
    AllocationResult,
    Policy,
    URSAAllocator,
    allocate,
    measure_all,
    measure_fu,
    measure_registers,
)
from repro.graph import DependenceDAG
from repro.ir import (
    Instruction,
    Opcode,
    Program,
    TraceBuilder,
    parse_program,
    parse_trace,
)
from repro.machine import MachineModel, VLIWProgram, VLIWSimulator
from repro.methods import Backend, UnknownMethodError, backends, resolve
from repro.pipeline import (
    METHODS,
    CompilationResult,
    PipelineError,
    build_dag,
    compare_methods,
    compile_trace,
    synthesize_memory,
)
from repro.program_compiler import (
    CompiledProgram,
    ProgramRunResult,
    compile_program,
    verify_compiled_program,
)
from repro.resilience import ChaosMonkey, Deadline, DeadlineExpired
from repro.scheduling import ListScheduler, Schedule
from repro.serve import CompileCache

__version__ = "1.0.0"

__all__ = [
    "AllocationResult",
    "Backend",
    "ChaosMonkey",
    "CompilationResult",
    "CompileCache",
    "Deadline",
    "DeadlineExpired",
    "DependenceDAG",
    "Instruction",
    "ListScheduler",
    "METHODS",
    "MachineModel",
    "Opcode",
    "PipelineError",
    "Policy",
    "Program",
    "Schedule",
    "TraceBuilder",
    "URSAAllocator",
    "UnknownMethodError",
    "VLIWProgram",
    "CompiledProgram",
    "ProgramRunResult",
    "compile_program",
    "verify_compiled_program",
    "VLIWSimulator",
    "allocate",
    "backends",
    "build_dag",
    "compare_methods",
    "compile_trace",
    "measure_all",
    "measure_fu",
    "measure_registers",
    "obs",
    "parse_program",
    "parse_trace",
    "resolve",
    "synthesize_memory",
]
