"""Command-line interface: ``python -m repro <command> ...``.

Subcommands:

* ``measure``  — print measured worst-case requirements for a trace;
* ``compile``  — compile one trace, print the VLIW code and stats;
* ``verify``   — static invariant/lint report for a trace's compilation;
* ``compare``  — compare all methods on one trace;
* ``program``  — compile a whole multi-block program and execute it
  (``--jobs`` shards traces over a process pool, ``--cache`` reuses
  the persistent compile cache);
* ``pipeline`` — unroll-and-allocate sweep for a canonical loop;
* ``passes``   — list registered passes, analyses, and invalidation
  contracts (``--kernel`` adds live analysis-cache statistics);
* ``serve``    — long-lived HTTP compilation service (docs/serving.md);
* ``cache``    — inspect/garbage-collect/clear the persistent compile
  cache (``stats`` / ``gc`` / ``clear``).

Traces/programs come from a file path or from ``--kernel <name>``.
Initial memory cells are passed as ``--mem base[+offset]=value``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import STATS_HEADERS
from repro.analysis.visualize import dag_to_dot, schedule_gantt
from repro.core.measure import find_excessive_sets, measure_all
from repro.graph.dag import DependenceDAG
from repro.ir.parser import parse_program, parse_trace
from repro.ir.printer import format_table, format_trace
from repro.machine.model import MachineModel
from repro.methods import default_compare_methods, method_names, resolve
from repro.pipeline import compare_methods, compile_trace
from repro.program_compiler import compile_program, verify_compiled_program
from repro.software_pipelining import (
    LOOPS,
    min_initiation_interval,
    pipeline_sweep,
)
from repro.workloads.kernels import KERNELS, kernel

#: The one registry call every ``--method`` choice list is built from.
METHODS = method_names()


def _machine_from_args(args: argparse.Namespace) -> MachineModel:
    if getattr(args, "classed", False):
        return MachineModel.classed(
            alu=args.fus, mul=max(1, args.fus // 2), mem=max(1, args.fus // 2),
            branch=1, alu_regs=args.regs,
        )
    return MachineModel.homogeneous(args.fus, args.regs)


def _parse_memory(entries: Optional[Sequence[str]]) -> Dict[Tuple[str, int], int]:
    memory: Dict[Tuple[str, int], int] = {}
    for entry in entries or ():
        try:
            cell, value = entry.split("=", 1)
            if "+" in cell:
                base, offset = cell.split("+", 1)
                memory[(base, int(offset))] = int(value)
            else:
                memory[(cell, 0)] = int(value)
        except ValueError:
            raise SystemExit(f"bad --mem entry {entry!r}; use base[+off]=value")
    return memory


def _load_trace(args: argparse.Namespace):
    if args.kernel is not None:
        return kernel(args.kernel)
    if args.source is None:
        raise SystemExit("give a source file or --kernel <name>")
    return parse_trace(Path(args.source).read_text())


def _add_common(parser: argparse.ArgumentParser, kernels: bool = True) -> None:
    parser.add_argument("source", nargs="?", help="ursa-lang source file")
    if kernels:
        parser.add_argument(
            "--kernel", choices=sorted(KERNELS), help="built-in kernel instead"
        )
    parser.add_argument("--fus", type=int, default=4, help="functional units")
    parser.add_argument("--regs", type=int, default=8, help="registers")
    parser.add_argument(
        "--classed", action="store_true",
        help="use a classed machine (alu/mul/mem/branch) instead of homogeneous",
    )
    _add_observability(parser)


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH",
        help="write a JSONL observability trace (see docs/observability.md)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print a per-pass time/counter table on stderr",
    )


# ======================================================================
# Subcommands.
# ======================================================================
def cmd_measure(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    machine = _machine_from_args(args)
    dag = DependenceDAG.from_trace(trace)
    print(f"machine: {machine.describe()}")
    for requirement in measure_all(dag, machine):
        print(f"  {requirement.describe()}")
        for ecs in find_excessive_sets(dag, requirement):
            chains = " | ".join(
                ",".join(str(e) for e in chain) for chain in ecs.chains
            )
            print(f"    excessive set (excess {ecs.excess}): {chains}")
    if args.dot:
        print(dag_to_dot(dag))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    machine = _machine_from_args(args)
    memory = _parse_memory(args.mem)
    deadline = None
    if args.deadline_ms is not None:
        from repro.resilience import Deadline

        deadline = Deadline(seconds=args.deadline_ms / 1000.0)
    result = compile_trace(
        trace, machine, method=args.method,
        memory=memory or None,
        verify_each=args.verify_each,
        resilient=args.resilient,
        deadline=deadline,
        transactional=args.transactional,
    )
    print(f"machine: {machine.describe()}   method: {args.method}")
    if args.show_source:
        print(format_trace(trace))
        print()
    print(result.program)
    if args.gantt:
        print()
        print(schedule_gantt(result.schedule))
    print(
        f"\ncycles={result.stats.cycles} spills={result.stats.spill_ops} "
        f"utilization={result.stats.utilization:.2f} verified={result.verified}"
    )
    if result.allocation is not None:
        for record in result.allocation.records:
            print(f"  [{record.kind}] {record.description}")
    if result.degradation is not None:
        print()
        if getattr(args, "json", False):
            import json as _json

            print(_json.dumps({"degradation": result.degradation.to_dict()}))
        else:
            print(result.degradation.render())
    if args.report:
        from repro.analysis.reporting import compilation_report

        Path(args.report).write_text(
            compilation_report(result, title=f"{args.method} compilation")
        )
        print(f"report written to {args.report}")
    if args.verify:
        from repro.verify import verify_compilation

        report = verify_compilation(result, remeasure=True)
        print()
        print(report.render())
        return 0 if report.ok else 1
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analyze import analyze_program, analyze_source

    machine = _machine_from_args(args)
    if args.kernel is not None:
        from repro.ir.program import straightline_program

        report = analyze_program(
            straightline_program(list(kernel(args.kernel))),
            machine=machine,
            filename=f"<kernel:{args.kernel}>",
            bounds=not args.no_bounds,
        )
    else:
        if args.source is None:
            raise SystemExit("give a source file or --kernel <name>")
        path = Path(args.source)
        report = analyze_source(
            path.read_text(),
            machine=machine,
            filename=str(path),
            bounds=not args.no_bounds,
        )
    if getattr(args, "json", False):
        print(report.to_json(indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_verify(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    machine = _machine_from_args(args)
    from repro.verify import verify_source

    report = verify_source(
        trace, machine, method=args.method, lint=not args.no_lint
    )
    if getattr(args, "json", False):
        args.format = "json"
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_compare(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    machine = _machine_from_args(args)
    methods = list(args.methods or default_compare_methods())
    results = compare_methods(trace, machine, methods=methods)
    if getattr(args, "json", False):
        import json as _json

        payload: Dict[str, object] = {
            "machine": machine.describe(),
            "methods": [],
        }
        for method in methods:
            result = results[method]
            entry: Dict[str, object] = {
                "method": method,
                "stats": dict(zip(STATS_HEADERS, result.stats.row())),
                "capabilities": resolve(method).capabilities(),
                "verified": result.verified,
            }
            if result.backend_report is not None:
                entry["backend_report"] = result.backend_report
                if result.backend_report.get("backend") == "portfolio":
                    entry["winner"] = result.backend_report.get("winner")
            payload["methods"].append(entry)
        print(_json.dumps(payload, indent=2))
        return 0
    rows = [results[m].stats.row() for m in methods]
    print(format_table(STATS_HEADERS, rows, title=machine.describe()))
    return 0


def cmd_program(args: argparse.Namespace) -> int:
    if args.source is None:
        raise SystemExit("program command needs a source file")
    program = parse_program(Path(args.source).read_text())
    machine = _machine_from_args(args)
    memory = _parse_memory(args.mem)
    cache: object = args.cache_dir if args.cache_dir else bool(args.cache)
    compiled = compile_program(
        program, machine, method=args.method,
        jobs=args.jobs, cache=cache,
        deadline_ms=args.deadline_ms, resilient=args.resilient,
    )
    run, ok = verify_compiled_program(compiled, memory)
    print(f"machine: {machine.describe()}   method: {args.method}")
    print(f"traces: {sorted(compiled.traces)}")
    if args.cache or args.cache_dir:
        print(
            f"cache: {compiled.cache_hits} hits, "
            f"{compiled.cache_misses} misses"
        )
    print(f"dynamic cycles: {run.cycles}")
    print(f"dispatch path: {' -> '.join(run.trace_path)}")
    print("final user memory:")
    for cell, value in sorted(run.user_memory().items()):
        print(f"  [{cell[0]}+{cell[1]}] = {value}")
    print(f"verified: {ok}")
    return 0 if ok else 1


def cmd_pipeline(args: argparse.Namespace) -> int:
    spec = LOOPS[args.loop]()
    machine = _machine_from_args(args)
    factors = [int(f) for f in args.factors.split(",")]
    mii, res, rec = min_initiation_interval(spec, machine)
    results = pipeline_sweep(spec, machine, factors=factors, method=args.method)
    print(
        format_table(
            ("unroll", "cycles", "cyc/iter", "spills", "FU need",
             "Reg need", "verified"),
            [r.row() for r in results],
            title=(
                f"{args.loop} on {machine.describe()} — "
                f"MII {mii:.2f} (res {res:.2f}, rec {rec})"
            ),
        )
    )
    return 0


def cmd_passes(args: argparse.Namespace) -> int:
    import repro.core.allocator  # noqa: F401 — registers invalidation contracts
    from repro.core.transforms.base import INVALIDATION_CONTRACTS
    from repro.pm import ANALYSES, PASS_REGISTRY
    from repro.pm.analysis import AnalysisManager

    cache_stats: Optional[Dict[str, float]] = None
    if args.kernel is not None:
        machine = _machine_from_args(args)
        manager = AnalysisManager()
        compile_trace(
            kernel(args.kernel), machine, method="ursa", verify=False,
            analysis_manager=manager,
        )
        cache_stats = manager.stats()

    if args.json:
        import json as _json

        payload: Dict[str, object] = {
            "passes": [
                {
                    "name": spec.name,
                    "description": spec.description,
                    "requires": list(spec.requires),
                    "provides": list(spec.provides),
                    "emit_span": spec.emit_span,
                }
                for spec in PASS_REGISTRY
            ],
            "analyses": [
                {
                    "name": spec.name,
                    "description": spec.description,
                    "invalidated_by": list(spec.invalidated_by),
                }
                for spec in ANALYSES
            ],
            "invalidation_contracts": {
                kind: {
                    "edges_only": inv.edges_only,
                    "adds_nodes": inv.adds_nodes,
                    "invalidates_all": inv.invalidates_all,
                    "analyses": list(inv.analyses),
                }
                for kind, inv in sorted(INVALIDATION_CONTRACTS.items())
            },
        }
        if cache_stats is not None:
            payload["cache"] = {"kernel": args.kernel, **cache_stats}
        print(_json.dumps(payload, indent=2))
        return 0

    print("passes (pipeline registration order):")
    for spec in PASS_REGISTRY:
        wires = ""
        if spec.requires or spec.provides:
            wires = (
                f"  [{','.join(spec.requires) or '-'}"
                f" -> {','.join(spec.provides) or '-'}]"
            )
        print(f"  {spec.name:<14} {spec.description}{wires}")
    print("\nanalyses (cached by DAG version):")
    for analysis in ANALYSES:
        print(f"  {analysis.name:<14} {analysis.description}")
        print(f"  {'':<14} invalidated by: {', '.join(analysis.invalidated_by)}")
    print("\ntransform invalidation contracts:")
    for kind, inv in sorted(INVALIDATION_CONTRACTS.items()):
        print(f"  {kind:<22} {inv.describe()}")
    if cache_stats is not None:
        print(f"\nanalysis cache after compiling --kernel {args.kernel}:")
        for key, value in cache_stats.items():
            print(f"  {key:<14} {value}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import serve_forever

    cache: object = args.cache_dir if args.cache_dir else not args.no_cache
    serve_forever(
        host=args.host,
        port=args.port,
        cache=cache,
        jobs=args.jobs,
        deadline_ms=args.deadline_ms,
        max_batch=args.max_batch,
        quiet=not args.verbose,
        workers=args.workers,
        queue_depth=args.queue_depth,
        drain_timeout_s=args.drain_timeout,
    )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.serve.cache import CompileCache

    cache = CompileCache(args.cache_dir) if args.cache_dir else CompileCache()
    if args.action == "stats":
        stats = cache.stats()
        if args.json:
            import json as _json

            print(_json.dumps(stats, indent=2))
        else:
            print(f"cache root: {stats['root']}")
            print(f"entries:    {stats['entries']}")
            print(f"bytes:      {stats['bytes']}")
        return 0
    if args.action == "gc":
        if args.max_bytes is None and args.max_age_days is None:
            raise SystemExit("cache gc needs --max-bytes and/or --max-age-days")
        outcome = cache.gc(
            max_bytes=args.max_bytes, max_age_days=args.max_age_days
        )
        if args.json:
            import json as _json

            print(_json.dumps(outcome))
        else:
            print(
                f"gc: removed {outcome['removed']} "
                f"({outcome['removed_bytes']} bytes), "
                f"remaining {outcome['remaining']}"
            )
        return 0
    removed = cache.clear()
    print(f"clear: removed {removed} entries from {cache.root}")
    return 0


# ======================================================================
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="URSA (PACT 1993) reproduction — VLIW unified resource allocation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("measure", help="measure worst-case requirements")
    _add_common(p)
    p.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    p.set_defaults(func=cmd_measure)

    p = sub.add_parser("compile", help="compile one trace")
    _add_common(p)
    p.add_argument("--method", choices=METHODS, default="ursa")
    p.add_argument("--mem", action="append", help="base[+off]=value")
    p.add_argument("--gantt", action="store_true", help="ASCII occupancy chart")
    p.add_argument("--show-source", action="store_true")
    p.add_argument("--report", metavar="PATH", help="write a Markdown report")
    p.add_argument(
        "--verify", action="store_true",
        help="print the full static verification report after compiling",
    )
    p.add_argument(
        "--verify-each", action="store_true",
        help="re-verify DAG invariants after every committed URSA transform",
    )
    p.add_argument(
        "--resilient", action="store_true",
        help="escalate down the fallback ladder instead of failing "
             "(see docs/resilience.md); prints a degradation report",
    )
    p.add_argument(
        "--deadline-ms", type=float, metavar="MS",
        help="compilation deadline; expiring searches degrade to "
             "heuristic answers",
    )
    p.add_argument(
        "--transactional", action="store_true",
        help="checkpoint each URSA commit and roll back regressions",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable output: errors (and the degradation "
             "report) as single-line JSON",
    )
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser(
        "analyze",
        help="ahead-of-time static analysis: diagnostics + resource "
             "lower bounds (exit 1 on errors; docs/analysis.md)",
    )
    _add_common(p)
    p.add_argument(
        "--no-bounds", action="store_true",
        help="diagnostics only; skip the feasibility/lower-bound layer",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable report (schema in docs/analysis.md)",
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "verify", help="static invariant/lint report (exit 1 on errors)"
    )
    _add_common(p)
    p.add_argument("--method", choices=METHODS, default="ursa")
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json follows docs/observability.md schema)",
    )
    p.add_argument(
        "--no-lint", action="store_true",
        help="suppress the warning/info lint pack; errors only",
    )
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable output: implies --format json; compile "
             "errors become single-line JSON diagnostics",
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("compare", help="compare methods on one trace")
    _add_common(p)
    p.add_argument("--methods", nargs="+", choices=METHODS)
    p.add_argument(
        "--json", action="store_true",
        help="machine-readable comparison: per-backend stats, declared "
             "capabilities, and portfolio win attribution",
    )
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("program", help="compile and run a whole program")
    _add_common(p, kernels=False)
    p.add_argument("--method", choices=METHODS, default="ursa")
    p.add_argument("--mem", action="append", help="base[+off]=value")
    p.add_argument(
        "--jobs", type=int, metavar="N",
        help="shard traces over N worker processes (default: serial)",
    )
    p.add_argument(
        "--cache", action="store_true",
        help="reuse the persistent compile cache ($REPRO_CACHE_DIR)",
    )
    p.add_argument(
        "--cache-dir", metavar="PATH",
        help="use a compile cache rooted at PATH (implies --cache)",
    )
    p.add_argument(
        "--deadline-ms", type=float, metavar="MS",
        help="per-trace compilation deadline (disables caching)",
    )
    p.add_argument(
        "--resilient", action="store_true",
        help="per-trace fallback ladder instead of failing outright",
    )
    p.set_defaults(func=cmd_program)

    p = sub.add_parser(
        "passes",
        help="list passes, analyses, and transform invalidation contracts",
    )
    p.add_argument(
        "--kernel", choices=sorted(KERNELS),
        help="also compile this kernel and report analysis-cache stats",
    )
    p.add_argument("--fus", type=int, default=4, help="functional units")
    p.add_argument("--regs", type=int, default=8, help="registers")
    p.add_argument("--classed", action="store_true")
    p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p.set_defaults(func=cmd_passes)

    p = sub.add_parser(
        "serve", help="run the HTTP compilation service (docs/serving.md)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377)
    p.add_argument(
        "--cache-dir", metavar="PATH",
        help="persistent cache root (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the persistent cache"
    )
    p.add_argument(
        "--jobs", type=int, metavar="N",
        help="per-request worker processes for program requests "
             "(default: serial; superseded by --workers)",
    )
    p.add_argument(
        "--workers", type=int, metavar="N",
        help="persistent supervised worker pool: fork N workers once at "
             "start, keep them warm, restart on crash/hang/memory "
             "watermark (docs/serving.md)",
    )
    p.add_argument(
        "--queue-depth", type=int, default=32, metavar="N",
        help="admission watermark: concurrent requests beyond N are shed "
             "with 503 + Retry-After (default 32)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="S",
        help="seconds to wait for in-flight requests on SIGTERM before "
             "flushing and exiting (default 10)",
    )
    p.add_argument(
        "--deadline-ms", type=float, metavar="MS",
        help="default per-trace deadline applied to every request",
    )
    p.add_argument(
        "--max-batch", type=int, default=64,
        help="largest accepted batch request (default 64)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "cache", help="inspect or prune the persistent compile cache"
    )
    p.add_argument("action", choices=("stats", "gc", "clear"))
    p.add_argument(
        "--cache-dir", metavar="PATH",
        help="cache root (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    p.add_argument(
        "--max-bytes", type=int, metavar="N",
        help="gc: shrink the store to at most N bytes (oldest evicted first)",
    )
    p.add_argument(
        "--max-age-days", type=float, metavar="D",
        help="gc: evict objects older than D days",
    )
    p.add_argument("--json", action="store_true", help="machine-readable stats")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("pipeline", help="software-pipelining unroll sweep")
    p.add_argument("loop", choices=sorted(LOOPS))
    p.add_argument("--fus", type=int, default=4)
    p.add_argument("--regs", type=int, default=8)
    p.add_argument("--classed", action="store_true")
    p.add_argument("--method", choices=METHODS, default="ursa")
    p.add_argument("--factors", default="1,2,4,8")
    _add_observability(p)
    p.set_defaults(func=cmd_pipeline)

    return parser


def _compiler_errors() -> tuple:
    """Failure types mapped to structured exit code 2 (vs. tracebacks)."""
    from repro.core.allocator import AllocationError
    from repro.ir.program import IRError
    from repro.pipeline import PipelineError
    from repro.scheduling.list_scheduler import ScheduleError
    from repro.scheduling.regalloc import RegAllocError
    from repro.verify import VerifyError

    return (AllocationError, PipelineError, ScheduleError, RegAllocError,
            VerifyError, IRError)


def _structured_failure(args: argparse.Namespace, exc: Exception) -> int:
    """One-line machine-readable diagnostic; JSON under ``--json``."""
    message = str(exc).splitlines()[0] if str(exc) else type(exc).__name__
    if getattr(args, "json", False):
        import json as _json

        print(_json.dumps({
            "error": {
                "type": type(exc).__name__,
                "command": args.command,
                "message": message,
            }
        }))
    else:
        print(
            f"repro {args.command}: error: {type(exc).__name__}: {message}",
            file=sys.stderr,
        )
    return 2


def _dispatch(args: argparse.Namespace) -> int:
    from repro.ir.parser import ParseError

    try:
        return args.func(args)
    except ParseError as exc:
        # Bad source is a user error, not a crash: render the offending
        # line with a caret (docs/analysis.md), then exit 2 with the
        # same one-line structured message other compiler errors use.
        if not getattr(args, "json", False):
            from repro.analyze import render_parse_error

            source_path = getattr(args, "source", None)
            source_text = None
            if source_path is not None:
                try:
                    source_text = Path(source_path).read_text()
                except OSError:
                    source_text = None
            print(
                render_parse_error(exc, source_text, source_path),
                file=sys.stderr,
            )
        return _structured_failure(args, exc)
    except _compiler_errors() as exc:
        return _structured_failure(args, exc)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # `--kernel` only exists on some subcommands.
    if not hasattr(args, "kernel"):
        args.kernel = None

    trace_path = getattr(args, "trace", None)
    profile = getattr(args, "profile", False)
    if not trace_path and not profile:
        return _dispatch(args)

    from repro import obs
    from repro.analysis.reporting import trace_summary

    if trace_path and not Path(trace_path).parent.is_dir():
        raise SystemExit(f"--trace: directory of {trace_path!r} does not exist")

    with obs.capture() as observer:
        code = _dispatch(args)
    if trace_path:
        observer.write_jsonl(trace_path)
        print(f"trace written to {trace_path}", file=sys.stderr)
    if profile:
        print(trace_summary(observer, title=args.command), file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
