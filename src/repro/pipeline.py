"""End-to-end compilation pipelines: source/trace -> VLIW -> verified run.

This is the top-level user API: pick a method (URSA with any policy, or
one of the baselines), compile a trace for a machine, and — by default —
verify the generated VLIW program against the reference interpreter on
synthesized inputs.

The pipeline itself is composed as explicit passes over a
:class:`repro.pm.PipelineState` (build_dag -> allocate -> assign ->
codegen -> verify, or the baseline schedule pass in the middle), run by
a :class:`repro.pm.PassManager` that owns the ``phase.*`` spans and the
``verify_each`` inter-pass instrument.  ``repro passes`` lists them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.analysis.metrics import ScheduleStats
from repro.core.allocator import AllocationResult, URSAAllocator
from repro.core.codegen import lower_schedule
from repro.graph.dag import DependenceDAG
from repro.ir.instructions import Instruction
from repro.ir.interp import Interpreter, MemoryState
from repro.ir.opcodes import Opcode
from repro.ir.parser import parse_trace
from repro.ir.trace import Trace
from repro.machine.model import MachineModel
from repro.machine.simulator import SimulationResult, VLIWSimulator
from repro.machine.vliw import VLIWProgram
from repro.methods import (
    UnknownMethodError,
    default_compare_methods,
    method_names,
    resolve,
)
from repro.pm import (
    PassManager,
    PassSpec,
    PipelineState,
    register_pass_spec,
    verify_instrument,
)
from repro.pm.analysis import AnalysisManager
from repro.scheduling.list_scheduler import Schedule

#: The compilation methods the harness can compare — one registry call;
#: every backend registered in ``repro.methods`` appears here.
METHODS = method_names()


class PipelineError(Exception):
    """Compilation or verification failed."""


@dataclass
class CompilationResult:
    """Everything produced by one compile: schedule, code, and metrics."""

    method: str
    machine: MachineModel
    dag: DependenceDAG
    schedule: Schedule
    program: VLIWProgram
    allocation: Optional[AllocationResult]
    simulation: Optional[SimulationResult]
    verified: Optional[bool]
    stats: ScheduleStats
    #: Set by resilient compilation (``compile_trace(resilient=True)``):
    #: a :class:`repro.resilience.fallback.DegradationReport`.
    degradation: Optional[object] = None
    #: Backend-specific attribution: the exact solver's optimality
    #: certificate, the portfolio's win report (see docs/backends.md).
    backend_report: Optional[Dict[str, object]] = None

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def degraded(self) -> bool:
        if self.degradation is not None and self.degradation.degraded:
            return True
        return self.allocation is not None and self.allocation.degraded


def build_dag(
    source: Union[str, Sequence[Instruction], Trace, DependenceDAG],
    live_out: Sequence[str] = (),
) -> DependenceDAG:
    """Normalize any supported input into a dependence DAG."""
    if isinstance(source, DependenceDAG):
        return source
    if isinstance(source, Trace):
        return DependenceDAG.from_trace(
            source.flatten(),
            side_exit_liveness=source.side_exit_liveness(),
            live_out=source.fallthrough_liveness(),
        )
    if isinstance(source, str):
        instructions = parse_trace(source)
    else:
        instructions = list(source)
    return DependenceDAG.from_trace(instructions, live_out=live_out)


def compile_trace(
    source: Union[str, Sequence[Instruction], Trace, DependenceDAG],
    machine: MachineModel,
    method: str = "ursa",
    live_out: Sequence[str] = (),
    verify: bool = True,
    memory: Optional[MemoryState] = None,
    seed: int = 0,
    optimize: bool = False,
    assignment: str = "bind",
    static_checks: bool = True,
    verify_each: bool = False,
    resilient: bool = False,
    deadline: Optional[object] = None,
    hints: Optional[object] = None,
    transactional: bool = False,
    incremental: bool = True,
    analysis_manager: Optional[AnalysisManager] = None,
    backend_options: Optional[Dict[str, object]] = None,
) -> CompilationResult:
    """Compile one trace with the chosen method.

    With ``verify=True`` the generated VLIW program is simulated and its
    final memory compared against the reference interpreter running the
    original trace on the same inputs (synthesized deterministically
    from ``seed`` unless ``memory`` is given).  ``optimize`` runs the
    classical scalar passes (folding, CSE, copy propagation, DCE) before
    allocation; it requires a trace input (not a prebuilt DAG).

    ``static_checks`` runs the ``repro.verify`` schedule rule pack on
    the final schedule *before* any simulation — a soundness break is
    reported as the rule that caught it, not as a memory divergence.
    ``verify_each`` additionally re-verifies the DAG after every
    transform the URSA allocator commits (slow; for debugging passes).

    Resilience (see ``docs/resilience.md``): ``resilient=True`` routes
    through the escalation ladder — on any failure the compile degrades
    to a simpler method, ending at the always-feasible spill-everywhere
    baseline, and the result carries a structured ``degradation``
    report.  ``deadline`` (a :class:`repro.resilience.Deadline`) bounds
    the NP-hard searches, which then return best-so-far answers tagged
    as degraded.  ``transactional`` makes the URSA allocator checkpoint
    each commit and roll back transforms that regress excess or break
    the ``verify_each`` invariants.

    ``hints`` (only consulted when ``resilient=True``) accepts a
    :class:`repro.analyze.bounds.FeasibilityReport` from the static
    analyzer; the ladder skips rungs the bounds prove doomed and fails
    fast on globally infeasible traces (``docs/analysis.md``).

    ``incremental`` (default on) lets the URSA allocator score
    edges-only transform candidates in place via the ``repro.pm``
    transaction machinery instead of copying the DAG and re-running
    ``measure_all`` per candidate.  ``analysis_manager`` shares one
    version-keyed analysis cache across compiles (the whole-program
    compiler passes one per program).

    ``backend_options`` is passed through to the resolved backend's
    schedule pass (e.g. ``{"bnb_max_ops": 18}`` for ``bnb-exact``,
    ``{"portfolio_members": (...)}`` for ``portfolio``).
    """
    try:
        resolve(method)
    except UnknownMethodError as exc:
        raise PipelineError(str(exc)) from exc

    if resilient:
        from repro.resilience.fallback import compile_with_fallback

        return compile_with_fallback(
            source,
            machine,
            method=method,
            deadline=deadline,
            hints=hints,
            live_out=live_out,
            verify=verify,
            memory=memory,
            seed=seed,
            optimize=optimize,
            assignment=assignment,
            static_checks=static_checks,
            verify_each=verify_each,
            transactional=transactional,
            incremental=incremental,
            analysis_manager=analysis_manager,
            backend_options=backend_options,
        )
    if deadline is not None:
        from repro.resilience.budgets import deadline_scope

        with deadline_scope(deadline):
            return _compile_once(
                source, machine, method, live_out, verify, memory, seed,
                optimize, assignment, static_checks, verify_each,
                transactional, incremental, analysis_manager, backend_options,
            )
    return _compile_once(
        source, machine, method, live_out, verify, memory, seed, optimize,
        assignment, static_checks, verify_each, transactional, incremental,
        analysis_manager, backend_options,
    )


# ----------------------------------------------------------------------
# The pipeline's passes.  Each spec's name doubles as the ``phase.*``
# span the dashboards key on; ``repro passes`` lists this registry.
# ----------------------------------------------------------------------
_SPEC_BUILD_DAG = register_pass_spec(PassSpec(
    "build_dag",
    "normalize the input (text, instructions, Trace, DAG) into a "
    "dependence DAG",
    provides=("dag",),
))
_SPEC_ALLOCATE = register_pass_spec(PassSpec(
    "allocate",
    "URSA measurement/transformation loop for registers and functional "
    "units",
    requires=("dag",),
    provides=("allocation", "final_dag"),
))
_SPEC_ASSIGN = register_pass_spec(PassSpec(
    "assign",
    "bind the allocated DAG to concrete units/registers and a schedule",
    requires=("allocation",),
    provides=("schedule",),
))
_SPEC_SCHEDULE = register_pass_spec(PassSpec(
    "schedule",
    "the resolved backend's schedule pass (baselines, the exact "
    "bnb solver, the portfolio racer; see repro.methods)",
    requires=("dag",),
    provides=("schedule", "final_dag"),
))
_SPEC_STATIC_CHECKS = register_pass_spec(PassSpec(
    "static_checks",
    "gate the schedule on the repro.verify rule pack before simulating",
    requires=("schedule",),
    emit_span=False,
))
_SPEC_CODEGEN = register_pass_spec(PassSpec(
    "codegen",
    "lower the schedule to a VLIW program",
    requires=("schedule",),
    provides=("program",),
))
_SPEC_VERIFY = register_pass_spec(PassSpec(
    "verify",
    "simulate the program and compare memory against the reference "
    "interpreter",
    requires=("program",),
    provides=("simulation", "verified"),
))


def _pass_build_dag(state: PipelineState) -> None:
    state.dag = build_dag(state.source, live_out=state.live_out)


def _pass_allocate(state: PipelineState) -> None:
    opts = state.options
    state.allocation = URSAAllocator(
        state.machine,
        resolve(state.method).policy,
        verify_each=opts["verify_each"],
        transactional=opts["transactional"],
        incremental=opts["incremental"],
        analysis_manager=state.analysis_manager,
    ).run(state.dag)
    state.final_dag = state.allocation.dag


def _pass_assign(state: PipelineState) -> None:
    from repro.core.assignment import assign

    state.schedule = assign(
        state.final_dag,
        state.machine,
        state.allocation,
        backend=state.options["assignment"],
    ).schedule


def _pass_schedule(state: PipelineState) -> None:
    # The backend's declared schedule pass owns the whole strategy
    # (docs/backends.md); it fills state.schedule and state.final_dag.
    resolve(state.method).schedule_pass(state)


def _pass_static_checks(state: PipelineState) -> None:
    from repro.verify import verify_schedule

    report = verify_schedule(
        state.schedule, dag=state.final_dag, machine=state.machine
    )
    if not report.ok:
        raise PipelineError(
            f"{state.method} on {state.machine.name}: static schedule "
            f"verification failed\n{report.render()}"
        )


def _pass_codegen(state: PipelineState) -> None:
    state.program = lower_schedule(state.schedule)


def _pass_verify(state: PipelineState) -> None:
    memory = state.options["memory"]
    init_memory = (
        memory
        if memory is not None
        else synthesize_memory(state.dag, state.options["seed"])
    )
    state.simulation, state.verified = _verify(
        state.dag,
        state.program,
        state.machine,
        init_memory,
        state.schedule.live_out_regs,
    )
    if not state.verified:
        raise PipelineError(
            f"{state.method} on {state.machine.name}: simulated memory "
            "diverges from the reference interpreter"
        )


def build_pipeline(
    method: str,
    *,
    verify: bool = True,
    static_checks: bool = True,
    verify_each: bool = False,
) -> PassManager:
    """The pass pipeline ``compile_trace`` runs for ``method``."""
    manager = PassManager()
    manager.add(_SPEC_BUILD_DAG, _pass_build_dag)
    if resolve(method).policy is not None:
        manager.add(_SPEC_ALLOCATE, _pass_allocate)
        manager.add(_SPEC_ASSIGN, _pass_assign)
    else:
        manager.add(_SPEC_SCHEDULE, _pass_schedule)
    if static_checks:
        manager.add(_SPEC_STATIC_CHECKS, _pass_static_checks)
    manager.add(_SPEC_CODEGEN, _pass_codegen)
    if verify:
        manager.add(_SPEC_VERIFY, _pass_verify)
    if verify_each:
        manager.add_instrument(verify_instrument)
    return manager


def _compile_once(
    source: Union[str, Sequence[Instruction], Trace, DependenceDAG],
    machine: MachineModel,
    method: str,
    live_out: Sequence[str],
    verify: bool,
    memory: Optional[MemoryState],
    seed: int,
    optimize: bool,
    assignment: str,
    static_checks: bool,
    verify_each: bool,
    transactional: bool,
    incremental: bool = True,
    analysis_manager: Optional[AnalysisManager] = None,
    backend_options: Optional[Dict[str, object]] = None,
) -> CompilationResult:
    """One rung of compilation; no ladder, deadline comes from scope."""

    if optimize:
        if isinstance(source, DependenceDAG):
            raise PipelineError("optimize=True needs a trace, not a DAG")
        from repro.opt import optimize_trace as _optimize

        if isinstance(source, Trace):
            raise PipelineError(
                "optimize=True on Trace objects is unsupported; pass the "
                "flattened instructions"
            )
        instructions = (
            parse_trace(source) if isinstance(source, str) else list(source)
        )
        source, _ = _optimize(instructions, live_out=live_out)

    state = PipelineState(
        machine=machine,
        method=method,
        source=source,
        live_out=tuple(live_out),
        options={
            "memory": memory,
            "seed": seed,
            "assignment": assignment,
            "verify_each": verify_each,
            "transactional": transactional,
            "incremental": incremental,
            "backend": dict(backend_options or {}),
        },
        analysis_manager=analysis_manager or AnalysisManager(),
    )
    build_pipeline(
        method,
        verify=verify,
        static_checks=static_checks,
        verify_each=verify_each,
    ).run(state)

    stats = ScheduleStats.collect(
        method, state.schedule, state.program, state.simulation, state.verified
    )
    return CompilationResult(
        method=method,
        machine=machine,
        dag=state.final_dag,
        schedule=state.schedule,
        program=state.program,
        allocation=state.allocation,
        simulation=state.simulation,
        verified=state.verified,
        stats=stats,
        backend_report=state.backend_report,
    )


def compare_methods(
    source: Union[str, Sequence[Instruction], Trace, DependenceDAG],
    machine: MachineModel,
    methods: Optional[Sequence[str]] = None,
    **kwargs,
) -> Dict[str, CompilationResult]:
    """Compile the same trace with several methods (shared inputs).

    ``methods`` defaults to the backends tagged ``default_compare`` in
    the registry (``repro.methods.default_compare_methods``).
    """
    if methods is None:
        methods = default_compare_methods()
    dag = build_dag(source, live_out=kwargs.pop("live_out", ()))
    return {
        method: compile_trace(dag, machine, method=method, **kwargs)
        for method in methods
    }


# ----------------------------------------------------------------------
# Verification plumbing.
# ----------------------------------------------------------------------
def synthesize_memory(dag: DependenceDAG, seed: int = 0) -> MemoryState:
    """Deterministic nonzero contents for every cell the trace loads."""
    memory: MemoryState = {}
    for uid in dag.op_nodes():
        inst = dag.instruction(uid)
        if inst.op is Opcode.LOAD and inst.addr is not None:
            cell = (inst.addr.base, inst.addr.offset)
            if cell not in memory:
                digest = hashlib.sha256(
                    f"{seed}:{cell[0]}:{cell[1]}".encode()
                ).digest()
                value = int.from_bytes(digest[:2], "big") % 97 + 2
                memory[cell] = value
    return memory


def _reference_memory(
    dag: DependenceDAG,
    memory: MemoryState,
    live_in_values: Dict[str, int],
) -> Tuple[MemoryState, Dict[str, int]]:
    """Interpret the DAG's instructions in a legal sequential order."""
    interpreter = Interpreter(memory)
    result = interpreter.run_trace(dag.linearize(), env=live_in_values)
    return result.memory, result.env


def verify_program(
    dag: DependenceDAG,
    program: VLIWProgram,
    machine: MachineModel,
    memory: MemoryState,
    live_out_regs: Optional[Dict[str, "object"]] = None,
) -> Tuple[SimulationResult, bool]:
    """Simulate ``program`` and compare it against the interpreter.

    Checks (a) final user-visible memory (spill slots excluded) and
    (b) when ``live_out_regs`` is given, that each live-out value sits
    in its advertised register.
    """
    live_in_names = {
        name for name, d in dag.value_defs.items() if d == dag.entry
    }
    live_in_values = {name: _live_in_value(name, memory) for name in live_in_names}
    expected_memory, env = _reference_memory(dag, memory, live_in_values)

    simulator = VLIWSimulator(machine, memory)
    simulation = simulator.run(
        program,
        live_in_values={
            name: live_in_values[name] for name in program.live_in_regs
        },
    )

    observed = {
        cell: value
        for cell, value in simulation.memory.items()
        if not cell[0].startswith("%")  # ignore compiler spill slots
    }
    expected = {
        cell: value
        for cell, value in expected_memory.items()
        if not cell[0].startswith("%")
    }
    ok = observed == expected

    if ok and live_out_regs:
        for name, reg in live_out_regs.items():
            want = env.get(name)
            got = simulation.registers[reg.cls][reg.index]
            if want != got:
                ok = False
                break
    return simulation, ok


def _verify(
    dag: DependenceDAG,
    program: VLIWProgram,
    machine: MachineModel,
    memory: MemoryState,
    live_out_regs: Optional[Dict[str, "object"]] = None,
) -> Tuple[SimulationResult, bool]:
    return verify_program(dag, program, machine, memory, live_out_regs)


def _live_in_value(name: str, memory: MemoryState) -> int:
    digest = hashlib.sha256(f"livein:{name}".encode()).digest()
    return int.from_bytes(digest[:2], "big") % 89 + 3
