"""``repro.verify`` — static invariant verifier for the URSA pipeline.

In the spirit of LLVM's MachineVerifier / ``-verify-each``: rule packs
(``dag.*``, ``alloc.*``, ``sched.*``, ``lint.*``) statically check each
pipeline artifact, so soundness breaks are caught at the pass that
introduced them rather than by the end-to-end simulator (or not at
all).  See ``docs/verification.md`` for the rule catalogue.
"""

from repro.verify.alloc_rules import verify_allocation, verify_allocation_step
from repro.verify.dag_rules import verify_dag
from repro.verify.diagnostics import (
    REPORT_SCHEMA_VERSION,
    Diagnostic,
    RuleInfo,
    RULES,
    Severity,
    VerifyError,
    VerifyReport,
    merge_reports,
    register,
)
from repro.verify.lint_rules import lint_dag
from repro.verify.runner import (
    verify_compilation,
    verify_dag_state,
    verify_source,
)
from repro.verify.schedule_rules import verify_schedule

__all__ = [
    "REPORT_SCHEMA_VERSION",
    "Diagnostic",
    "RuleInfo",
    "RULES",
    "Severity",
    "VerifyError",
    "VerifyReport",
    "merge_reports",
    "register",
    "verify_dag",
    "verify_allocation",
    "verify_allocation_step",
    "verify_schedule",
    "lint_dag",
    "verify_compilation",
    "verify_dag_state",
    "verify_source",
]
