"""Allocation invariant rules (``alloc.*``).

Checks on what URSA's measure/reduce loop *claims* versus what the DAG
actually says: capacity after reduction, spill store/load pairing,
Kill() coverage, and the transformation record chain.

Two entry points:

* :func:`verify_allocation` — full pack over a finished
  :class:`AllocationResult` (optionally re-measuring the DAG to catch a
  stale requirements list);
* :func:`verify_allocation_step` — the cheap subset run after every
  committed transform in ``verify_each`` mode, where excess capacity is
  still expected and only structural spill/kill properties must hold.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.core.kill import candidate_killers
from repro.core.measure import ResourceRequirement, measure_all
from repro.graph.dag import DependenceDAG
from repro.ir.instructions import Opcode
from repro.machine.model import MachineModel
from repro.verify.diagnostics import Severity, VerifyReport, register

PACK = "alloc"

R_FU_CAPACITY = register(
    "alloc.fu-capacity", Severity.ERROR,
    "after a converged reduction, measured FU requirements must fit "
    "the machine",
)
R_REG_CAPACITY = register(
    "alloc.reg-capacity", Severity.ERROR,
    "after a converged reduction, measured register requirements must "
    "fit the machine",
)
R_CONVERGED_FLAG = register(
    "alloc.converged-flag", Severity.ERROR,
    "the converged flag must agree with the recorded excesses",
)
R_STALE_MEASURE = register(
    "alloc.stale-measure", Severity.ERROR,
    "recorded requirements must match a fresh measurement of the DAG",
)
R_SPILL_PAIRING = register(
    "alloc.spill-pairing", Severity.ERROR,
    "every RELOAD must be reached by exactly one SPILL of the same slot",
)
R_SPILL_SLOT_CLASH = register(
    "alloc.spill-slot-clash", Severity.ERROR,
    "no two SPILLs may write the same spill slot",
)
R_KILL_COVERAGE = register(
    "alloc.kill-coverage", Severity.ERROR,
    "Kill() must name exactly one legal killer for every measured value",
)
R_RECORDS = register(
    "alloc.records", Severity.ERROR,
    "the transformation record chain must be consistent "
    "(excess_after[i] == excess_before[i+1], iterations increasing)",
)
R_INVALIDATION_CONTRACT = register(
    "alloc.invalidation-contract", Severity.ERROR,
    "a transform declaring an edges-only invalidation contract must "
    "not perform node-inserting mutations",
)


def invalidation_contract_report(kind: str, detail: str) -> VerifyReport:
    """A one-finding report for a transform that lied about its
    invalidation contract (tripped by the transaction mutation guard
    during an incremental trial)."""
    report = VerifyReport(artifact="allocation-step", packs=[PACK])
    report.add(R_INVALIDATION_CONTRACT.diag(detail, location=kind))
    return report


def verify_allocation(allocation, remeasure: bool = True) -> VerifyReport:
    """Run the ``alloc.*`` pack over a finished AllocationResult."""
    with obs.span("verify.alloc"):
        report = VerifyReport(artifact="allocation", packs=[PACK])
        dag = allocation.dag
        machine = allocation.machine
        _capacity(allocation, report)
        _records(allocation.records, report)
        _spills(dag, report)
        for requirement in allocation.requirements:
            _kill_coverage(dag, requirement, report)
        if remeasure:
            _stale_measure(allocation, report)
        obs.count("verify.diagnostics", len(report.diagnostics))
        return report


def verify_allocation_step(
    dag: DependenceDAG,
    requirements: Sequence[ResourceRequirement],
    machine: Optional[MachineModel] = None,
) -> VerifyReport:
    """The ``verify_each`` subset: spill and kill structure only.

    Mid-reduction the requirements may legitimately still exceed the
    machine, so no capacity rules fire here.
    """
    with obs.span("verify.alloc"):
        report = VerifyReport(artifact="allocation-step", packs=[PACK])
        _spills(dag, report)
        for requirement in requirements:
            _kill_coverage(dag, requirement, report)
        obs.count("verify.diagnostics", len(report.diagnostics))
        return report


# ----------------------------------------------------------------------
def _capacity(allocation, report: VerifyReport) -> None:
    any_excess = False
    for requirement in allocation.requirements:
        if not requirement.is_excessive:
            continue
        any_excess = True
        rule = (
            R_FU_CAPACITY if requirement.kind.value == "fu" else R_REG_CAPACITY
        )
        # A non-converged reduction hands leftovers to the assignment
        # phase by design (§2); that is a warning, not a violation.
        severity = Severity.ERROR if allocation.converged else Severity.WARNING
        report.add(
            rule.diag(
                f"{requirement.kind.value}:{requirement.cls} requires "
                f"{requirement.required} but only {requirement.available} "
                f"available (excess {requirement.excess})",
                location=f"{requirement.kind.value}:{requirement.cls}",
                severity=severity,
            )
        )
    if allocation.converged and any_excess:
        report.add(
            R_CONVERGED_FLAG.diag(
                "allocation claims convergence but recorded requirements "
                "still show excess"
            )
        )
    if not allocation.converged and not any_excess:
        report.add(
            R_CONVERGED_FLAG.diag(
                "allocation claims non-convergence but no recorded "
                "requirement shows excess"
            )
        )


def _records(records, report: VerifyReport) -> None:
    previous = None
    for record in records:
        if previous is not None:
            if record.iteration <= previous.iteration:
                report.add(
                    R_RECORDS.diag(
                        f"record iterations not increasing: "
                        f"{previous.iteration} then {record.iteration}",
                        location=f"iter{record.iteration}",
                    )
                )
            if record.excess_before != previous.excess_after:
                report.add(
                    R_RECORDS.diag(
                        f"iteration {record.iteration} starts from excess "
                        f"{record.excess_before} but the previous transform "
                        f"left {previous.excess_after}",
                        location=f"iter{record.iteration}",
                    )
                )
        previous = record


def _spills(dag: DependenceDAG, report: VerifyReport) -> None:
    stores = {}  # (base, offset) -> uid
    for uid in dag.op_nodes():
        inst = dag.instruction(uid)
        if inst.op is Opcode.SPILL and inst.addr is not None:
            key = (inst.addr.base, inst.addr.offset)
            if key in stores:
                report.add(
                    R_SPILL_SLOT_CLASH.diag(
                        f"nodes {stores[key]} and {uid} both spill to "
                        f"[{inst.addr}]",
                        location=f"n{uid}",
                    )
                )
            else:
                stores[key] = uid
    for uid in dag.op_nodes():
        inst = dag.instruction(uid)
        if inst.op is not Opcode.RELOAD or inst.addr is None:
            continue
        sources = [
            suid
            for (base, offset), suid in stores.items()
            if base == inst.addr.base
            and offset == inst.addr.offset
            and dag.reaches(suid, uid)
        ]
        if len(sources) != 1:
            report.add(
                R_SPILL_PAIRING.diag(
                    f"reload {uid} from [{inst.addr}] is reached by "
                    f"{len(sources)} matching spill store(s)",
                    location=f"n{uid}",
                )
            )


def _kill_coverage(
    dag: DependenceDAG, requirement: ResourceRequirement, report: VerifyReport
) -> None:
    if requirement.kind.value != "reg" or requirement.kill is None:
        return
    values = requirement.values or {}
    kill = requirement.kill.kill
    for name, info in values.items():
        if name not in kill:
            report.add(
                R_KILL_COVERAGE.diag(
                    f"value {name!r} has no Kill() entry",
                    location=name,
                )
            )
            continue
        killer = kill[name]
        if not info.use_uids:
            if killer != info.def_uid:
                report.add(
                    R_KILL_COVERAGE.diag(
                        f"dead value {name!r} must be killed at its own "
                        f"definition {info.def_uid}, not {killer}",
                        location=name,
                    )
                )
            continue
        legal = candidate_killers(dag, info)
        if killer not in legal:
            report.add(
                R_KILL_COVERAGE.diag(
                    f"value {name!r} killed at {killer}, which is not one "
                    f"of its maximal uses {sorted(legal)}",
                    location=name,
                )
            )


def _stale_measure(allocation, report: VerifyReport) -> None:
    fresh = {
        (r.kind.value, r.cls): r.required
        for r in measure_all(allocation.dag, allocation.machine)
    }
    for requirement in allocation.requirements:
        key = (requirement.kind.value, requirement.cls)
        measured = fresh.get(key)
        if measured is not None and measured != requirement.required:
            report.add(
                R_STALE_MEASURE.diag(
                    f"{key[0]}:{key[1]} recorded as {requirement.required} "
                    f"but the DAG now measures {measured}",
                    location=f"{key[0]}:{key[1]}",
                )
            )
