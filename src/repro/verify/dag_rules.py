"""DAG invariant rules (``dag.*``).

These check the structural soundness of a :class:`DependenceDAG` at any
point in its life: freshly built from a trace, mid-reduction inside
``URSAAllocator`` (``verify_each``), or final.  Everything here is a
*graph* property — no schedule or machine state is consulted except for
the optional op-legality check, which needs a machine to ask whether
any functional-unit class executes each opcode.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.graph.dag import CycleError, DependenceDAG, EdgeKind
from repro.graph.hammock import HammockAnalysis
from repro.machine.model import MachineConfigError, MachineModel
from repro.verify.diagnostics import Severity, VerifyReport, register

PACK = "dag"

R_CYCLE = register(
    "dag.cycle", Severity.ERROR,
    "dependence DAG must stay acyclic after every transform commit",
)
R_SELF_EDGE = register(
    "dag.self-edge", Severity.ERROR,
    "no node may depend on itself",
)
R_UID = register(
    "dag.uid-mismatch", Severity.ERROR,
    "node key must equal the attached instruction's uid",
)
R_ENTRY_EXIT = register(
    "dag.entry-exit", Severity.ERROR,
    "only ENTRY may lack predecessors and only EXIT may lack successors",
)
R_DEF_BEFORE_USE = register(
    "dag.def-before-use", Severity.ERROR,
    "every used value must be defined on a path before the use",
)
R_MISSING_DATA_EDGE = register(
    "dag.missing-data-edge", Severity.ERROR,
    "each def-use pair must be connected by a direct data edge",
)
R_DANGLING_DATA = register(
    "dag.dangling-data-edge", Severity.ERROR,
    "data edges must run from a value's definer to one of its users",
)
R_VALUE_DEF = register(
    "dag.value-def", Severity.ERROR,
    "value_defs must point at a live node that actually defines the value",
)
R_VALUE_USE = register(
    "dag.value-use", Severity.ERROR,
    "value_uses must list exactly the nodes that read the value",
)
R_DUPLICATE_USE = register(
    "dag.duplicate-use", Severity.ERROR,
    "value_uses must not record the same user node twice",
)
R_HAMMOCK = register(
    "dag.hammock", Severity.ERROR,
    "the DAG must remain a single-entry single-exit hammock",
)
R_HAMMOCK_STRUCTURE = register(
    "dag.hammock-structure", Severity.ERROR,
    "each hammock region must be dominated by its entry and "
    "postdominated by its exit",
)
R_UNKNOWN_OP = register(
    "dag.unknown-op", Severity.ERROR,
    "every opcode must be executable by some functional-unit class",
)


def verify_dag(
    dag: DependenceDAG,
    machine: Optional[MachineModel] = None,
    regions: bool = True,
) -> VerifyReport:
    """Run the ``dag.*`` rule pack over one DAG.

    ``regions=False`` skips the per-hammock region enumeration
    (``dag.hammock-structure``) — it cross-checks the analysis against
    its own dominance masks, so the hot ``verify_each`` path drops it
    and keeps only the direct connectivity/dominance rules.
    """
    with obs.span("verify.dag"):
        report = VerifyReport(artifact="dag", packs=[PACK])
        _structural(dag, report)
        if any(d.rule == R_CYCLE.rule_id for d in report.diagnostics):
            # Reachability, dominance and hammocks are meaningless on a
            # cyclic graph; bail out after the structural findings.
            obs.count("verify.diagnostics", len(report.diagnostics))
            return report
        _values(dag, report)
        _hammocks(dag, report, regions=regions)
        if machine is not None:
            _op_legality(dag, machine, report)
        obs.count("verify.diagnostics", len(report.diagnostics))
        return report


# ----------------------------------------------------------------------
def _structural(dag: DependenceDAG, report: VerifyReport) -> None:
    try:
        dag.topological_order()
    except CycleError as exc:
        report.add(R_CYCLE.diag(f"dependence graph is cyclic: {exc}"))
    for u, v in dag.graph.edges():
        if u == v:
            report.add(
                R_SELF_EDGE.diag(f"node {u} has a self edge", location=f"n{u}")
            )
    # Raw node iteration: op_nodes() topo-sorts, which raises on the
    # very cyclic graphs this pass must survive to report on.
    for uid in dag.graph.nodes():
        if uid in (dag.entry, dag.exit):
            continue
        inst = dag.instruction(uid)
        if inst.uid != uid:
            report.add(
                R_UID.diag(
                    f"node {uid} carries instruction with uid {inst.uid}",
                    location=f"n{uid}",
                )
            )
    for uid in dag.graph.nodes():
        if uid != dag.entry and not dag.preds(uid):
            report.add(
                R_ENTRY_EXIT.diag(
                    f"node {uid} has no predecessors (only ENTRY may)",
                    location=f"n{uid}",
                )
            )
        if uid != dag.exit and not dag.succs(uid):
            report.add(
                R_ENTRY_EXIT.diag(
                    f"node {uid} has no successors (only EXIT may)",
                    location=f"n{uid}",
                )
            )


def _values(dag: DependenceDAG, report: VerifyReport) -> None:
    # value_defs side: the recorded definer must exist and define it.
    for name, def_uid in dag.value_defs.items():
        if def_uid not in dag.graph:
            report.add(
                R_VALUE_DEF.diag(
                    f"value {name!r} maps to missing definer node {def_uid}",
                    location=name,
                )
            )
            continue
        if def_uid != dag.entry and dag.instruction(def_uid).defines != name:
            report.add(
                R_VALUE_DEF.diag(
                    f"value {name!r} maps to node {def_uid}, which defines "
                    f"{dag.instruction(def_uid).defines!r}",
                    location=name,
                )
            )

    # value_uses side: recorded users must exist, read the value, and be
    # unique; exit entries must correspond to live-out values.
    for name, users in dag.value_uses.items():
        seen = set()
        for uid in users:
            if uid in seen:
                report.add(
                    R_DUPLICATE_USE.diag(
                        f"value {name!r} lists user {uid} more than once",
                        location=name,
                    )
                )
            seen.add(uid)
            if uid not in dag.graph:
                report.add(
                    R_VALUE_USE.diag(
                        f"value {name!r} lists missing user node {uid}",
                        location=name,
                    )
                )
                continue
            if uid == dag.exit:
                if name not in dag.live_out:
                    report.add(
                        R_VALUE_USE.diag(
                            f"value {name!r} flows to EXIT but is not "
                            "live-out",
                            location=name,
                        )
                    )
            elif name not in set(dag.instruction(uid).uses()):
                report.add(
                    R_VALUE_USE.diag(
                        f"value {name!r} lists node {uid} as a user but "
                        f"{dag.instruction(uid)} does not read it",
                        location=name,
                    )
                )

    # Instruction side: every read must be defined strictly earlier and
    # be wired up with a direct data edge and a value_uses entry.
    for uid in dag.op_nodes():
        inst = dag.instruction(uid)
        for name in set(inst.uses()):
            def_uid = dag.value_defs.get(name)
            if def_uid is None or def_uid not in dag.graph:
                report.add(
                    R_DEF_BEFORE_USE.diag(
                        f"node {uid} reads {name!r} which has no definition",
                        location=f"n{uid}",
                    )
                )
                continue
            data = dag.graph.get_edge_data(def_uid, uid)
            if data is None or data.get("kind") is not EdgeKind.DATA:
                report.add(
                    R_MISSING_DATA_EDGE.diag(
                        f"no data edge {def_uid}->{uid} for value {name!r}",
                        location=f"n{uid}",
                    )
                )
                # A direct data edge proves precedence on an acyclic
                # graph, so reachability only needs checking without it.
                if def_uid not in (dag.entry, uid) and not dag.reaches(
                    def_uid, uid
                ):
                    report.add(
                        R_DEF_BEFORE_USE.diag(
                            f"node {uid} reads {name!r} but its definition "
                            f"(node {def_uid}) does not precede it",
                            location=f"n{uid}",
                        )
                    )
            if uid not in dag.value_uses.get(name, ()):
                report.add(
                    R_VALUE_USE.diag(
                        f"node {uid} reads {name!r} but value_uses does not "
                        "record it",
                        location=f"n{uid}",
                    )
                )

    # Data-edge side: each must connect a definer to one of its users.
    for u, v, data in dag.graph.edges(data=True):
        if data.get("kind") is not EdgeKind.DATA:
            continue
        name = data.get("value")
        if dag.value_defs.get(name) != u:
            report.add(
                R_DANGLING_DATA.diag(
                    f"data edge {u}->{v} carries {name!r}, defined by node "
                    f"{dag.value_defs.get(name)}",
                    location=f"n{u}",
                )
            )
        if v == dag.exit:
            if name not in dag.live_out:
                report.add(
                    R_DANGLING_DATA.diag(
                        f"data edge {u}->EXIT carries {name!r}, which is "
                        "not live-out",
                        location=f"n{u}",
                    )
                )
        elif name not in set(dag.instruction(v).uses()):
            report.add(
                R_DANGLING_DATA.diag(
                    f"data edge {u}->{v} carries {name!r}, which node {v} "
                    "does not read",
                    location=f"n{v}",
                )
            )


def _hammocks(
    dag: DependenceDAG, report: VerifyReport, regions: bool = True
) -> None:
    disconnected = set()
    for uid in dag.graph.nodes():
        # Direct reachability first: the dataflow masks behind
        # dominates()/postdominates() are vacuously true for nodes cut
        # off from ENTRY or EXIT, so check connectivity explicitly.
        if uid != dag.entry and not dag.reaches(dag.entry, uid):
            report.add(
                R_HAMMOCK.diag(
                    f"node {uid} is unreachable from ENTRY",
                    location=f"n{uid}",
                )
            )
            disconnected.add(uid)
        elif uid != dag.exit and not dag.reaches(uid, dag.exit):
            report.add(
                R_HAMMOCK.diag(
                    f"node {uid} cannot reach EXIT", location=f"n{uid}"
                )
            )
            disconnected.add(uid)
    if not regions:
        # The hot verify_each path stops at connectivity: building the
        # dominance bitmasks is the expensive part, and on an acyclic
        # single-source/single-sink graph it adds no new signal beyond
        # the region cross-check skipped here anyway.
        return
    analysis = HammockAnalysis(dag)
    for uid in dag.graph.nodes():
        if uid in disconnected:
            continue
        if not analysis.dominates(dag.entry, uid):
            report.add(
                R_HAMMOCK.diag(
                    f"ENTRY does not dominate node {uid}", location=f"n{uid}"
                )
            )
        if not analysis.postdominates(dag.exit, uid):
            report.add(
                R_HAMMOCK.diag(
                    f"EXIT does not postdominate node {uid}",
                    location=f"n{uid}",
                )
            )
    for hammock in analysis.hammocks():
        for uid in hammock.nodes:
            if uid == hammock.entry or uid == hammock.exit:
                continue
            if not analysis.dominates(hammock.entry, uid):
                report.add(
                    R_HAMMOCK_STRUCTURE.diag(
                        f"hammock ({hammock.entry},{hammock.exit}) contains "
                        f"node {uid} not dominated by its entry",
                        location=f"n{uid}",
                    )
                )
            if not analysis.postdominates(hammock.exit, uid):
                report.add(
                    R_HAMMOCK_STRUCTURE.diag(
                        f"hammock ({hammock.entry},{hammock.exit}) contains "
                        f"node {uid} not postdominated by its exit",
                        location=f"n{uid}",
                    )
                )


def _op_legality(
    dag: DependenceDAG, machine: MachineModel, report: VerifyReport
) -> None:
    for uid in dag.op_nodes():
        inst = dag.instruction(uid)
        if inst.is_pseudo:
            continue
        try:
            machine.fu_class_for(inst.op)
        except MachineConfigError:
            report.add(
                R_UNKNOWN_OP.diag(
                    f"no functional-unit class executes {inst.op!r}",
                    location=f"n{uid}",
                )
            )
