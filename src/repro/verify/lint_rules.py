"""IR/trace lint rules (``lint.*``).

Unlike the ``dag.*`` pack these are not soundness requirements — a
trace can compile and run correctly while tripping every one of them.
They flag *suspicious* shapes: work that cannot matter (unused
definitions, spill slots never reloaded), control flow decided at
compile time, and degenerate edges.  All default to WARNING or INFO.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.graph.dag import DependenceDAG, EdgeKind
from repro.ir.instructions import Opcode
from repro.machine.model import MachineConfigError, MachineModel
from repro.verify.diagnostics import Severity, VerifyReport, register

PACK = "lint"

R_UNUSED_DEF = register(
    "lint.unused-def", Severity.WARNING,
    "a defined value is never used and not live-out (dead code)",
)
R_DEAD_SPILL_SLOT = register(
    "lint.dead-spill-slot", Severity.WARNING,
    "a spill slot is written but never reloaded",
)
R_CONSTANT_BRANCH = register(
    "lint.constant-branch", Severity.WARNING,
    "a conditional branch tests a compile-time constant; one side of "
    "the hammock is unreachable",
)
R_ZERO_LATENCY = register(
    "lint.zero-latency-edge", Severity.WARNING,
    "a data edge departs a producer with zero latency (suspicious for "
    "any real functional unit)",
)
R_REDUNDANT_SEQ = register(
    "lint.redundant-seq-edge", Severity.INFO,
    "a sequence edge is implied by another path and could be dropped",
)


def lint_dag(
    dag: DependenceDAG, machine: Optional[MachineModel] = None
) -> VerifyReport:
    """Run the ``lint.*`` rule pack over one DAG."""
    with obs.span("verify.lint"):
        report = VerifyReport(artifact="lint", packs=[PACK])
        _unused_defs(dag, report)
        _spill_slots(dag, report)
        _constant_branches(dag, report)
        _redundant_seq_edges(dag, report)
        if machine is not None:
            _zero_latency_edges(dag, machine, report)
        obs.count("verify.diagnostics", len(report.diagnostics))
        return report


# ----------------------------------------------------------------------
def _unused_defs(dag: DependenceDAG, report: VerifyReport) -> None:
    for name, def_uid in dag.value_defs.items():
        if def_uid == dag.entry or name in dag.live_out:
            continue
        users = [u for u in dag.value_uses.get(name, ()) if u != def_uid]
        if not users:
            report.add(
                R_UNUSED_DEF.diag(
                    f"value {name!r} (node {def_uid}) is never used",
                    location=name,
                )
            )


def _spill_slots(dag: DependenceDAG, report: VerifyReport) -> None:
    reloaded = set()
    for uid in dag.op_nodes():
        inst = dag.instruction(uid)
        if inst.op is Opcode.RELOAD and inst.addr is not None:
            reloaded.add((inst.addr.base, inst.addr.offset))
    for uid in dag.op_nodes():
        inst = dag.instruction(uid)
        if inst.op is Opcode.SPILL and inst.addr is not None:
            if (inst.addr.base, inst.addr.offset) not in reloaded:
                report.add(
                    R_DEAD_SPILL_SLOT.diag(
                        f"spill to [{inst.addr}] (node {uid}) is never "
                        "reloaded",
                        location=f"n{uid}",
                    )
                )


def _constant_branches(dag: DependenceDAG, report: VerifyReport) -> None:
    for uid in dag.op_nodes():
        inst = dag.instruction(uid)
        if inst.op is not Opcode.CBR:
            continue
        for name in inst.uses():
            def_uid = dag.value_defs.get(name)
            if def_uid is None or def_uid == dag.entry:
                continue
            if dag.instruction(def_uid).op is Opcode.CONST:
                report.add(
                    R_CONSTANT_BRANCH.diag(
                        f"branch {uid} tests {name!r}, a constant from "
                        f"node {def_uid}",
                        location=f"n{uid}",
                    )
                )


def _zero_latency_edges(
    dag: DependenceDAG, machine: MachineModel, report: VerifyReport
) -> None:
    for u, v, data in dag.graph.edges(data=True):
        if data.get("kind") is not EdgeKind.DATA or u == dag.entry:
            continue
        try:
            latency = machine.latency_of(dag.instruction(u))
        except MachineConfigError:
            continue  # unknown op: dag.unknown-op territory
        if latency == 0:
            report.add(
                R_ZERO_LATENCY.diag(
                    f"data edge {u}->{v} leaves {dag.instruction(u).op!r} "
                    "with zero latency",
                    location=f"n{u}",
                )
            )


def _redundant_seq_edges(dag: DependenceDAG, report: VerifyReport) -> None:
    for u, v, data in dag.graph.edges(data=True):
        if data.get("kind") is not EdgeKind.SEQ:
            continue
        if u == dag.entry or v == dag.exit:
            continue  # root/leaf pinning edges are structural
        if any(
            m != v and dag.reaches(m, v) for m in dag.succs(u)
        ):
            report.add(
                R_REDUNDANT_SEQ.diag(
                    f"seq edge {u}->{v} ({data.get('reason', '?')}) is "
                    "implied by a longer path",
                    location=f"n{u}",
                )
            )
