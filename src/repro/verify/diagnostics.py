"""Diagnostics core for the static verifier (``repro.verify``).

Every check the verifier performs is a *rule* with a stable dotted
identifier (``dag.cycle``, ``sched.fu-overlap``, ...), a default
severity, and a one-line summary.  Rules are registered at import time
into :data:`RULES`, which doubles as the machine-readable catalogue
behind ``docs/verification.md`` (a doc test asserts the two stay in
sync).

Running a rule pack produces a :class:`VerifyReport` — an ordered list
of :class:`Diagnostic` records plus helpers for rendering (text or
JSON) and for escalating error-severity findings into a
:class:`VerifyError`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Bumped whenever a consumer of ``repro verify --format json`` output
#: would misinterpret newer reports.
REPORT_SCHEMA_VERSION = 1


class Severity(enum.Enum):
    """How bad a finding is.  Order: ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


class VerifyError(Exception):
    """A rule pack found error-severity diagnostics.

    Carries the offending :class:`VerifyReport` so callers can render
    or serialize the full findings.
    """

    def __init__(self, report: "VerifyReport", context: str = "") -> None:
        self.report = report
        prefix = f"{context}: " if context else ""
        errors = report.errors()
        detail = "; ".join(d.oneline() for d in errors[:4])
        if len(errors) > 4:
            detail += f"; ... ({len(errors) - 4} more)"
        super().__init__(f"{prefix}{len(errors)} invariant violation(s): {detail}")


@dataclass(frozen=True)
class RuleInfo:
    """One registered verifier rule (the catalogue entry)."""

    rule_id: str
    pack: str
    severity: Severity
    summary: str

    def diag(
        self,
        message: str,
        location: Optional[str] = None,
        severity: Optional[Severity] = None,
        **data: Any,
    ) -> "Diagnostic":
        """Instantiate a finding of this rule."""
        return Diagnostic(
            rule=self.rule_id,
            severity=severity or self.severity,
            message=message,
            location=location,
            data=dict(data),
        )


#: rule id -> catalogue entry; populated by the pack modules at import.
RULES: Dict[str, RuleInfo] = {}


def register(rule_id: str, severity: Severity, summary: str) -> RuleInfo:
    """Register a rule id in the catalogue (idempotence is an error)."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    pack = rule_id.split(".", 1)[0]
    info = RuleInfo(rule_id, pack, severity, summary)
    RULES[rule_id] = info
    return info


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule id, severity, message, and optional location."""

    rule: str
    severity: Severity
    message: str
    location: Optional[str] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def oneline(self) -> str:
        where = f" ({self.location})" if self.location else ""
        return f"[{self.rule}] {self.message}{where}"

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.location is not None:
            record["location"] = self.location
        if self.data:
            record["data"] = dict(self.data)
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            rule=record["rule"],
            severity=Severity(record["severity"]),
            message=record["message"],
            location=record.get("location"),
            data=dict(record.get("data", {})),
        )


@dataclass
class VerifyReport:
    """Ordered diagnostics from one or more rule packs over one artifact."""

    artifact: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: rule packs that actually ran (a clean report still names them).
    packs: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "VerifyReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        for pack in other.packs:
            if pack not in self.packs:
                self.packs.append(pack)

    # ------------------------------------------------------------------
    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    def errors(self) -> List[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    def warnings(self) -> List[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    def rules_fired(self) -> List[str]:
        return sorted({d.rule for d in self.diagnostics})

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostics were produced."""
        return not self.errors()

    def counts(self) -> Dict[str, int]:
        totals = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self.diagnostics:
            totals[diagnostic.severity.value] += 1
        return totals

    def raise_if_errors(self, context: str = "") -> None:
        if not self.ok:
            raise VerifyError(self, context=context or self.artifact)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable multi-line report."""
        counts = self.counts()
        head = (
            f"verify {self.artifact or '<artifact>'}: "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )
        if self.packs:
            head += f"  [packs: {', '.join(self.packs)}]"
        lines = [head]
        ordered = sorted(
            self.diagnostics, key=lambda d: (d.severity.rank, d.rule)
        )
        for diagnostic in ordered:
            where = f"  @ {diagnostic.location}" if diagnostic.location else ""
            lines.append(
                f"  {diagnostic.severity.value.upper():7s} "
                f"{diagnostic.rule:24s} {diagnostic.message}{where}"
            )
        if not self.diagnostics:
            lines.append("  clean: no diagnostics")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """The ``repro verify --format json`` payload (see docs)."""
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "artifact": self.artifact,
            "packs": list(self.packs),
            "counts": self.counts(),
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "VerifyReport":
        if payload.get("schema") != REPORT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported verify-report schema {payload.get('schema')!r}"
            )
        report = cls(
            artifact=payload.get("artifact", ""),
            diagnostics=[
                Diagnostic.from_dict(r) for r in payload.get("diagnostics", ())
            ],
            packs=list(payload.get("packs", ())),
        )
        return report

    @classmethod
    def from_json(cls, text: str) -> "VerifyReport":
        return cls.from_dict(json.loads(text))


def merge_reports(
    artifact: str, reports: Iterable[VerifyReport]
) -> VerifyReport:
    """Concatenate several pack reports into one artifact-level report."""
    merged = VerifyReport(artifact=artifact)
    for report in reports:
        merged.extend(report)
    return merged
