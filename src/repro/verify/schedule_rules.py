"""Schedule invariant rules (``sched.*``).

Static checks over a :class:`Schedule` — everything the VLIW simulator
would reject at run time (reads of in-flight values, busy functional
units, clobbered registers) must be caught here first, without
executing anything.

Sequence-edge strictness is calibrated per edge *reason*.  Memory and
transformation-ordering edges (``mem``, ``spill-mem``, ``ursa*``) must
separate by a full cycle, matching the simulator's execute-at-issue
memory semantics; register-reuse edges must wait for the predecessor's
writeback; the branch-pinning and liveness reasons
(``branch-order``, ``store-branch``, ``no-speculation``, ...) only pin
relative *order*, which the in-order packers legitimately satisfy
within a single wide cycle — those are checked non-strictly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.graph.dag import DependenceDAG, EdgeKind
from repro.machine.model import MachineConfigError, MachineModel
from repro.scheduling.list_scheduler import Schedule
from repro.verify.diagnostics import Severity, VerifyReport, register

PACK = "sched"

#: Sequence-edge reasons that demand a strictly later cycle.
STRICT_SEQ_REASONS = ("mem", "spill-mem")

R_DEPENDENCE = register(
    "sched.dependence", Severity.ERROR,
    "every DAG edge's latency/ordering constraint must hold in the "
    "schedule",
)
R_UNSCHEDULED = register(
    "sched.unscheduled-op", Severity.ERROR,
    "every DAG op must appear in the schedule exactly once",
)
R_USE_BEFORE_DEF = register(
    "sched.use-before-def", Severity.ERROR,
    "no op may read a value before its producer's writeback completes",
)
R_FU_CLASS = register(
    "sched.fu-class", Severity.ERROR,
    "ops must be placed on an existing FU slot whose class executes them",
)
R_FU_OVERLAP = register(
    "sched.fu-overlap", Severity.ERROR,
    "a functional unit must not be issued a new op while busy",
)
R_REG_UNASSIGNED = register(
    "sched.reg-unassigned", Severity.ERROR,
    "every value touched by the schedule must have a register binding",
)
R_REG_RANGE = register(
    "sched.reg-range", Severity.ERROR,
    "register bindings must reference existing registers",
)
R_REG_OVERWRITE = register(
    "sched.reg-overwrite", Severity.ERROR,
    "a register must not be redefined while its current value is live",
)
R_REG_PRESSURE = register(
    "sched.reg-pressure", Severity.ERROR,
    "concurrently live values must not outnumber a register file",
)
R_LIVE_OUT = register(
    "sched.live-out", Severity.ERROR,
    "every advertised live-out register must hold the matching value",
)


def verify_schedule(
    schedule: Schedule,
    dag: Optional[DependenceDAG] = None,
    machine: Optional[MachineModel] = None,
) -> VerifyReport:
    """Run the ``sched.*`` rule pack over one schedule.

    ``dag`` enables the dependence/completeness rules; without it only
    the schedule-local rules (FUs, registers) run.
    """
    machine = machine or schedule.machine
    with obs.span("verify.schedule"):
        report = VerifyReport(artifact="schedule", packs=[PACK])
        _fu_rules(schedule, machine, report)
        _register_rules(schedule, machine, report)
        if dag is not None:
            _dependence_rules(schedule, dag, machine, report)
        obs.count("verify.diagnostics", len(report.diagnostics))
        return report


# ----------------------------------------------------------------------
def _fu_rules(
    schedule: Schedule, machine: MachineModel, report: VerifyReport
) -> None:
    slots: Dict[Tuple[str, int], List] = {}
    for op in schedule.ops:
        try:
            fu = machine.fu_class(op.fu_class)
        except KeyError:
            report.add(
                R_FU_CLASS.diag(
                    f"{op.inst} placed on unknown FU class {op.fu_class!r}",
                    location=f"cycle{op.cycle}",
                )
            )
            continue
        if not fu.executes(op.inst.op):
            report.add(
                R_FU_CLASS.diag(
                    f"FU class {fu.name!r} cannot execute {op.inst.op!r}",
                    location=f"cycle{op.cycle}",
                )
            )
        if not 0 <= op.fu_index < fu.count:
            report.add(
                R_FU_CLASS.diag(
                    f"{op.inst} placed on {fu.name}[{op.fu_index}] but the "
                    f"class has {fu.count} unit(s)",
                    location=f"cycle{op.cycle}",
                )
            )
        slots.setdefault((op.fu_class, op.fu_index), []).append(op)

    for (cls, index), ops in slots.items():
        try:
            occupancy = machine.fu_class(cls).occupancy
        except KeyError:
            continue  # already reported above
        ops.sort(key=lambda op: op.cycle)
        for prev, cur in zip(ops, ops[1:]):
            if cur.cycle < prev.cycle + occupancy:
                report.add(
                    R_FU_OVERLAP.diag(
                        f"{cls}[{index}] issued {cur.inst} at cycle "
                        f"{cur.cycle} while busy with {prev.inst} "
                        f"(issued {prev.cycle}, occupancy {occupancy})",
                        location=f"cycle{cur.cycle}",
                    )
                )


# ----------------------------------------------------------------------
def _latency(machine: MachineModel, inst) -> int:
    try:
        return machine.latency_of(inst)
    except MachineConfigError:
        return 1  # unknown op: reported by sched.fu-class / dag.unknown-op


def _register_rules(
    schedule: Schedule, machine: MachineModel, report: VerifyReport
) -> None:
    binding = schedule.reg_assignment
    # Range checks over every binding we know about.
    for name, reg in {
        **binding, **schedule.live_in_regs,
        **{f"<live-out {k}>": v for k, v in schedule.live_out_regs.items()},
    }.items():
        count = machine.registers.get(reg.cls)
        if count is None:
            report.add(
                R_REG_RANGE.diag(
                    f"{name} bound to unknown register class {reg.cls!r}",
                    location=name,
                )
            )
        elif not 0 <= reg.index < count:
            report.add(
                R_REG_RANGE.diag(
                    f"{name} bound to {reg.cls}{reg.index}, but the class "
                    f"has {count} register(s)",
                    location=name,
                )
            )

    # Binding intervals: def issue -> last use issue, in (start, end]
    # open-closed form (read-at-issue lets a dying value's register be
    # redefined in the same cycle).
    defs: Dict[str, int] = {}
    last_use: Dict[str, int] = {}
    for op in schedule.ops:
        if op.inst.dest is not None:
            if op.inst.dest not in binding:
                report.add(
                    R_REG_UNASSIGNED.diag(
                        f"defined value {op.inst.dest!r} has no register "
                        "binding",
                        location=f"cycle{op.cycle}",
                    )
                )
            defs[op.inst.dest] = op.cycle
        for name in op.inst.uses():
            if name not in binding and name not in schedule.live_in_regs:
                report.add(
                    R_REG_UNASSIGNED.diag(
                        f"used value {name!r} has no register binding",
                        location=f"cycle{op.cycle}",
                    )
                )
            last_use[name] = max(last_use.get(name, -1), op.cycle)

    intervals: Dict[str, Tuple[int, int]] = {}
    for name, reg in binding.items():
        if name in defs:
            start = defs[name]
        elif name in schedule.live_in_regs:
            start = -1
        else:
            continue  # bound but never materialized: nothing to check
        end = last_use.get(name, start)
        intervals[name] = (start, end)

    # The advertised live-out registers extend the *latest* matching
    # value's interval to the end of the schedule (spilled values are
    # renamed `orig@r0`/`orig@p0`..., so match on the original prefix).
    for orig, reg in schedule.live_out_regs.items():
        candidates = [
            name
            for name in intervals
            if binding.get(name) == reg
            and (name == orig or name.startswith(orig + "@"))
        ]
        if not candidates and orig in schedule.live_in_regs:
            # A live-in passed straight through without a redefinition.
            if schedule.live_in_regs[orig] == reg:
                intervals[orig] = (-1, schedule.length)
                candidates = [orig]
        if not candidates:
            report.add(
                R_LIVE_OUT.diag(
                    f"live-out {orig!r} advertised in {reg.cls}{reg.index} "
                    "but no value with that binding was produced",
                    location=orig,
                )
            )
            continue
        latest = max(candidates, key=lambda name: intervals[name][0])
        start, end = intervals[latest]
        intervals[latest] = (start, max(end, schedule.length))

    # Overlap within one physical register, and per-class pressure.
    by_reg: Dict[Tuple[str, int], List[Tuple[int, int, str]]] = {}
    by_class: Dict[str, List[Tuple[int, int]]] = {}
    for name, (start, end) in intervals.items():
        if end <= start:
            continue  # dead definition: register reusable immediately
        reg = binding[name]
        by_reg.setdefault((reg.cls, reg.index), []).append((start, end, name))
        by_class.setdefault(reg.cls, []).append((start, end))

    for (cls, index), spans in by_reg.items():
        spans.sort()
        busy_until, holder = None, None
        for start, end, name in spans:
            if busy_until is not None and start < busy_until:
                report.add(
                    R_REG_OVERWRITE.diag(
                        f"{cls}{index} redefined by {name!r} at cycle "
                        f"{start} while still holding {holder!r} "
                        f"(live through cycle {busy_until})",
                        location=name,
                    )
                )
            if busy_until is None or end > busy_until:
                busy_until, holder = end, name

    for cls, spans in by_class.items():
        capacity = machine.registers.get(cls)
        if capacity is None:
            continue  # reported by sched.reg-range
        events = sorted(
            [(start, 1) for start, _ in spans]
            + [(end, -1) for _, end in spans],
            key=lambda event: (event[0], event[1]),
        )
        live = peak = peak_at = 0
        for when, delta in events:
            live += delta
            if live > peak:
                peak, peak_at = live, when
        if peak > capacity:
            report.add(
                R_REG_PRESSURE.diag(
                    f"{peak} values of class {cls!r} live around cycle "
                    f"{peak_at}, but the file holds {capacity}",
                    location=cls,
                )
            )


# ----------------------------------------------------------------------
def _dependence_rules(
    schedule: Schedule,
    dag: DependenceDAG,
    machine: MachineModel,
    report: VerifyReport,
) -> None:
    placed: Dict[int, List] = {}
    for op in schedule.ops:
        if op.uid is not None:
            placed.setdefault(op.uid, []).append(op)

    for uid in dag.op_nodes():
        ops = placed.get(uid, ())
        if len(ops) != 1:
            report.add(
                R_UNSCHEDULED.diag(
                    f"DAG op {uid} ({dag.instruction(uid)}) appears "
                    f"{len(ops)} time(s) in the schedule",
                    location=f"n{uid}",
                )
            )

    cycle_of = {
        uid: ops[0].cycle for uid, ops in placed.items() if len(ops) == 1
    }
    pseudo = (dag.entry, dag.exit)
    for u, v, data in dag.graph.edges(data=True):
        if u in pseudo or v in pseudo:
            continue
        if u not in cycle_of or v not in cycle_of:
            continue  # missing ops already reported
        gap = cycle_of[v] - cycle_of[u]
        if data.get("kind") is EdgeKind.DATA:
            required = _latency(machine, dag.instruction(u))
            constraint = f"data ({dag.instruction(u).op.name} latency)"
        else:
            reason = data.get("reason", "")
            if reason == "reg-reuse":
                required = max(1, _latency(machine, dag.instruction(u)))
                constraint = "seq reg-reuse (writeback)"
            elif reason in STRICT_SEQ_REASONS or reason.startswith("ursa"):
                required = 1
                constraint = f"seq {reason}"
            else:
                required = 0  # order-pinning only: same cycle is legal
                constraint = f"seq {reason} (order)"
        if gap < required:
            report.add(
                R_DEPENDENCE.diag(
                    f"edge {u}->{v} [{constraint}] needs {required} "
                    f"cycle(s) but the schedule provides {gap} "
                    f"(cycles {cycle_of[u]} -> {cycle_of[v]})",
                    location=f"n{v}",
                )
            )

    # Writeback timing for every read, including scheduler-synthesized
    # spill code that the DAG knows nothing about.
    def_ops: Dict[str, Tuple[int, int]] = {}
    for op in schedule.ops:
        if op.inst.dest is not None:
            def_ops[op.inst.dest] = (op.cycle, _latency(machine, op.inst))
    for op in schedule.ops:
        for name in op.inst.uses():
            if name in schedule.live_in_regs:
                continue
            if name not in def_ops:
                report.add(
                    R_USE_BEFORE_DEF.diag(
                        f"{op.inst} reads {name!r}, which nothing in the "
                        "schedule defines",
                        location=f"cycle{op.cycle}",
                    )
                )
                continue
            def_cycle, latency = def_ops[name]
            ready = def_cycle + latency
            if op.cycle < ready:
                report.add(
                    R_USE_BEFORE_DEF.diag(
                        f"{op.inst} reads {name!r} at cycle {op.cycle}, "
                        f"before its writeback completes at {ready}",
                        location=f"cycle{op.cycle}",
                    )
                )
