"""Pack orchestration: verify whole pipeline artifacts in one call.

The rule packs each check one artifact; this module composes them into
the entry points the rest of the stack uses:

* :func:`verify_dag_state` — DAG + allocation-step packs, the cheap
  combination ``URSAAllocator(verify_each=True)`` runs after every
  committed transform;
* :func:`verify_compilation` — every applicable pack over a finished
  :class:`repro.pipeline.CompilationResult`;
* :func:`verify_source` — build + compile + verify in one shot (the
  ``repro verify`` CLI subcommand).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.machine.model import MachineModel
from repro.verify.alloc_rules import verify_allocation, verify_allocation_step
from repro.verify.dag_rules import verify_dag
from repro.verify.diagnostics import VerifyReport, merge_reports
from repro.verify.lint_rules import lint_dag
from repro.verify.schedule_rules import verify_schedule


def _finish(report: VerifyReport) -> VerifyReport:
    obs.count("verify.errors", len(report.errors()))
    return report


def verify_dag_state(
    dag,
    requirements: Sequence = (),
    machine: Optional[MachineModel] = None,
    artifact: str = "dag",
) -> VerifyReport:
    """The ``verify_each`` combination: structural DAG rules plus the
    capacity-agnostic allocation-step rules.

    Region enumeration (``dag.hammock-structure``) is skipped here: it
    re-derives from the same dominance masks it checks, and this runs
    after *every* committed transform.
    """
    reports = [verify_dag(dag, machine, regions=False)]
    if requirements:
        reports.append(verify_allocation_step(dag, requirements, machine))
    return _finish(merge_reports(artifact, reports))


def _compilation_reports(result, lint: bool, remeasure: bool):
    reports = [verify_dag(result.dag, result.machine)]
    if result.allocation is not None:
        reports.append(
            verify_allocation(result.allocation, remeasure=remeasure)
        )
    reports.append(
        verify_schedule(result.schedule, dag=result.dag, machine=result.machine)
    )
    if lint:
        reports.append(lint_dag(result.dag, result.machine))
    return reports


def verify_compilation(
    result, lint: bool = True, remeasure: bool = False
) -> VerifyReport:
    """Run every applicable rule pack over one compilation result."""
    artifact = f"{result.method} on {result.machine.name}"
    return _finish(
        merge_reports(artifact, _compilation_reports(result, lint, remeasure))
    )


def verify_source(
    source,
    machine: MachineModel,
    method: str = "ursa",
    live_out: Sequence[str] = (),
    lint: bool = True,
    remeasure: bool = True,
) -> VerifyReport:
    """Compile ``source`` (without simulating) and verify every artifact.

    This is the engine behind ``repro verify``: the input DAG gets the
    DAG + lint packs, then the chosen method's compilation artifacts get
    the full treatment.  Simulation stays off — the point is that the
    static verifier alone judges the pipeline.
    """
    from repro.pipeline import build_dag, compile_trace

    input_dag = build_dag(source, live_out=live_out)
    reports = [verify_dag(input_dag, machine)]
    if lint:
        reports.append(lint_dag(input_dag, machine))
    result = compile_trace(
        input_dag, machine, method=method, verify=False, static_checks=False
    )
    reports.extend(_compilation_reports(result, lint=False, remeasure=remeasure))
    return _finish(merge_reports(f"{method} on {machine.name}", reports))
