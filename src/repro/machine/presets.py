"""Preset machine configurations for the benchmark grids.

Loosely modeled on the VLIW design points of the paper's era (not exact
replicas — the evaluation needs *shapes*, not vendor timing): a narrow
embedded-style core, a mid-size research VLIW, a Multiflow-TRACE-like
wide machine, and a Cydra-like classed machine with long memory
latency.  All are reachable by name through :func:`preset`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.machine.model import FUClass, MachineModel


def narrow_vliw() -> MachineModel:
    """A minimal 2-wide machine with a tiny register file."""
    return MachineModel.homogeneous(2, 4, name="narrow-2w-4r")


def research_vliw() -> MachineModel:
    """The mid-size homogeneous configuration most experiments use."""
    return MachineModel.homogeneous(4, 8, name="research-4w-8r")


def trace_like() -> MachineModel:
    """A wide 7-issue machine in the spirit of the Multiflow TRACE/7:
    four integer ALUs, two multiplier pipes, one memory port."""
    return MachineModel.classed(
        alu=4, mul=2, mem=1, branch=1, alu_regs=32,
        latencies={"mul": 2, "mem": 2},
        name="trace7-like",
    )


def cydra_like() -> MachineModel:
    """A classed machine with long, pipelined memory in the spirit of
    the Cydra 5: latency hurts, throughput does not."""
    machine = MachineModel.classed(
        alu=2, mul=1, mem=2, branch=1, alu_regs=16,
        latencies={"mem": 4, "mul": 2},
        name="cydra-like",
    )
    pipelined = tuple(
        FUClass(fu.name, fu.count, fu.latency, fu.ops, pipelined=True)
        for fu in machine.fu_classes
    )
    return MachineModel(
        name=machine.name,
        fu_classes=pipelined,
        registers=machine.registers,
        reg_class_of=machine.reg_class_of,
    )


def embedded_dsp() -> MachineModel:
    """A small dual-register-file machine (int + "float" by prefix)."""
    return MachineModel.dual_regclass(
        n_fus=3, int_regs=6, flt_regs=6, name="embedded-dsp"
    )


PRESETS = {
    "narrow": narrow_vliw,
    "research": research_vliw,
    "trace7": trace_like,
    "cydra": cydra_like,
    "dsp": embedded_dsp,
}


def preset(name: str) -> MachineModel:
    """Instantiate a preset machine by name."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None


def all_presets() -> List[MachineModel]:
    return [factory() for factory in PRESETS.values()]
