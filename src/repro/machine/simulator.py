"""Cycle-accurate simulator for the synthetic VLIW machine.

The simulator is the correctness oracle's second half: a compiled trace
is correct when simulating it produces the same final memory as the
reference interpreter running the original IR.  It also *enforces* the
machine model — register-file bounds, slot legality, non-pipelined FU
occupancy, and write-before-read timing — so scheduling bugs surface as
:class:`SimulationError` rather than silently wrong answers.

Timing model: ops issue at the cycle of their word, read the register
file at issue, and write their destination at the end of cycle
``issue + latency - 1``; a consumer may issue at ``issue + latency`` or
later.  There are no interlocks (true VLIW): reading a register whose
write is still in flight is a detected error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Imm, Instruction, Var
from repro.ir.interp import MemoryState, _binary_eval
from repro.ir.opcodes import Opcode
from repro.machine.model import MachineModel
from repro.machine.vliw import MachineOp, RegRef, VLIWProgram


class SimulationError(Exception):
    """A machine-model violation or runtime fault during simulation."""


@dataclass
class SimulationResult:
    """Outcome of simulating a VLIW program."""

    cycles: int
    memory: MemoryState
    registers: Dict[str, List[Optional[int]]]
    issued_ops: int
    stall_words: int
    #: label of the first taken conditional branch, when the simulator
    #: ran with ``follow_branches=True`` and a side exit fired.
    branch_target: Optional[str] = None

    def stores_to(self, base: str) -> Dict[int, int]:
        return {
            offset: value
            for (cell_base, offset), value in self.memory.items()
            if cell_base == base
        }


class VLIWSimulator:
    """Executes :class:`VLIWProgram` objects against a machine model."""

    def __init__(self, machine: MachineModel, memory: Optional[MemoryState] = None):
        self.machine = machine
        self.initial_memory: MemoryState = dict(memory or {})

    # ------------------------------------------------------------------
    def run(
        self,
        program: VLIWProgram,
        live_in_values: Optional[Dict[str, int]] = None,
        follow_branches: bool = False,
    ) -> SimulationResult:
        """Simulate ``program`` to completion.

        ``live_in_values`` supplies the runtime values of trace live-ins;
        they are deposited into ``program.live_in_regs`` before cycle 0.

        With ``follow_branches``, a conditional branch whose condition is
        non-zero *takes* its side exit: the current word finishes (its
        co-issued ops are independent of the branch by construction) and
        simulation stops, reporting the target label.  Stores and
        faulting ops are pinned on the correct side of every branch by
        the DAG builder, so the memory state at the stop is exactly the
        source semantics up to the branch.
        """
        if program.machine is not self.machine and program.machine != self.machine:
            raise SimulationError("program compiled for a different machine")

        regs: Dict[str, List[Optional[int]]] = {
            cls: [None] * count for cls, count in self.machine.registers.items()
        }
        #: per-register cycle at which the in-flight write lands (readable
        #: the following cycle); -1 when no write is pending.
        ready_at: Dict[Tuple[str, int], int] = {}
        memory = dict(self.initial_memory)

        live_in_values = live_in_values or {}
        for name, ref in program.live_in_regs.items():
            if name not in live_in_values:
                raise SimulationError(f"no runtime value for live-in {name!r}")
            self._check_reg(ref)
            regs[ref.cls][ref.index] = live_in_values[name]

        fu_busy_until: Dict[Tuple[str, int], int] = {}
        issued = 0
        stalls = 0
        last_write_cycle = 0
        taken_target: Optional[str] = None

        for cycle, word in enumerate(program.words):
            if not word.slots:
                stalls += 1
            pending_writes: List[Tuple[RegRef, int, int]] = []
            for (fu_name, fu_index), op in sorted(word.slots.items()):
                fu = self.machine.fu_class(fu_name)
                if fu_index >= fu.count:
                    raise SimulationError(
                        f"cycle {cycle}: no unit {fu_name}[{fu_index}]"
                    )
                if not fu.executes(op.op):
                    raise SimulationError(
                        f"cycle {cycle}: {fu_name} cannot execute {op.op.value}"
                    )
                busy_until = fu_busy_until.get((fu_name, fu_index), -1)
                if cycle <= busy_until:
                    raise SimulationError(
                        f"cycle {cycle}: unit {fu_name}[{fu_index}] busy "
                        f"until {busy_until} (non-pipelined)"
                    )
                fu_busy_until[(fu_name, fu_index)] = cycle + fu.occupancy - 1

                result = self._execute(op, regs, ready_at, memory, cycle)
                issued += 1
                if (
                    follow_branches
                    and op.op is Opcode.CBR
                    and taken_target is None
                ):
                    condition = self._read(op.srcs[0], regs, ready_at, cycle)
                    if condition != 0:
                        taken_target = op.target
                if op.dest is not None:
                    self._check_reg(op.dest)
                    write_cycle = cycle + fu.latency - 1
                    pending_writes.append((op.dest, result, write_cycle))
                    last_write_cycle = max(last_write_cycle, write_cycle)

            # All issues this cycle read the old register file; writes
            # land afterwards (end of their writeback cycle).
            for ref, value, write_cycle in pending_writes:
                regs[ref.cls][ref.index] = value
                ready_at[(ref.cls, ref.index)] = write_cycle

            if taken_target is not None:
                # Side exit taken: later words never execute.  Pinning
                # keeps all their stores/faulting ops unexecuted, so the
                # memory state is the source semantics at the branch.
                return SimulationResult(
                    cycles=cycle + 1,
                    memory=memory,
                    registers=regs,
                    issued_ops=issued,
                    stall_words=stalls,
                    branch_target=taken_target,
                )

        total_cycles = max(len(program.words), last_write_cycle + 1)
        return SimulationResult(
            cycles=total_cycles,
            memory=memory,
            registers=regs,
            issued_ops=issued,
            stall_words=stalls,
        )

    # ------------------------------------------------------------------
    def _check_reg(self, ref: RegRef) -> None:
        if ref.cls not in self.machine.registers:
            raise SimulationError(f"unknown register class {ref.cls!r}")
        if not 0 <= ref.index < self.machine.registers[ref.cls]:
            raise SimulationError(
                f"register {ref} out of range (class has "
                f"{self.machine.registers[ref.cls]})"
            )

    def _read(
        self,
        operand,
        regs: Dict[str, List[Optional[int]]],
        ready_at: Dict[Tuple[str, int], int],
        cycle: int,
    ) -> int:
        if isinstance(operand, int):
            return operand
        if isinstance(operand, RegRef):
            self._check_reg(operand)
            ready = ready_at.get((operand.cls, operand.index))
            if ready is not None and cycle <= ready:
                raise SimulationError(
                    f"cycle {cycle}: read of {operand} before its write "
                    f"completes at end of cycle {ready} (no interlocks)"
                )
            value = regs[operand.cls][operand.index]
            if value is None:
                raise SimulationError(f"cycle {cycle}: read of undefined {operand}")
            return value
        raise SimulationError(f"bad operand {operand!r}")  # pragma: no cover

    def _execute(
        self,
        op: MachineOp,
        regs,
        ready_at,
        memory: MemoryState,
        cycle: int,
    ) -> Optional[int]:
        code = op.op
        if code is Opcode.CONST:
            return self._read(op.srcs[0], regs, ready_at, cycle)
        if code is Opcode.MOV:
            return self._read(op.srcs[0], regs, ready_at, cycle)
        if code is Opcode.NEG:
            return -self._read(op.srcs[0], regs, ready_at, cycle)
        if code in (Opcode.LOAD, Opcode.RELOAD):
            cell = (op.addr.base, op.addr.offset)
            if cell not in memory:
                raise SimulationError(f"cycle {cycle}: load from unset {op.addr}")
            return memory[cell]
        if code in (Opcode.STORE, Opcode.SPILL):
            memory[(op.addr.base, op.addr.offset)] = self._read(
                op.srcs[0], regs, ready_at, cycle
            )
            return None
        if code is Opcode.CBR:
            # Side exits are not taken during on-trace simulation, but the
            # condition must be a legal read.
            self._read(op.srcs[0], regs, ready_at, cycle)
            return None
        if code in (Opcode.BR, Opcode.HALT, Opcode.NOP):
            return None
        # Binary ALU op.
        lhs = self._read(op.srcs[0], regs, ready_at, cycle)
        rhs = self._read(op.srcs[1], regs, ready_at, cycle)
        try:
            return _binary_eval(code, lhs, rhs)
        except Exception as exc:
            raise SimulationError(f"cycle {cycle}: {exc}") from exc
