"""Synthetic VLIW machine models, code containers, and the simulator."""

from repro.machine.model import FUClass, MachineConfigError, MachineModel
from repro.machine.presets import PRESETS, all_presets, preset
from repro.machine.simulator import (
    SimulationError,
    SimulationResult,
    VLIWSimulator,
)
from repro.machine.vliw import MachineOp, RegRef, VLIWProgram, VLIWWord

__all__ = [
    "FUClass",
    "PRESETS",
    "all_presets",
    "preset",
    "MachineConfigError",
    "MachineModel",
    "MachineOp",
    "RegRef",
    "SimulationError",
    "SimulationResult",
    "VLIWProgram",
    "VLIWSimulator",
    "VLIWWord",
]
