"""VLIW program representation: wide instruction words of machine ops."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.instructions import Addr
from repro.ir.opcodes import Opcode
from repro.machine.model import MachineModel


@dataclass(frozen=True)
class RegRef:
    """A physical register: class name + index within the class."""

    index: int
    cls: str = "gpr"

    def __str__(self) -> str:
        prefix = "r" if self.cls in ("gpr", "int") else self.cls[0]
        return f"{prefix}{self.index}"


#: Machine operands are physical registers or integer immediates.
MOperand = Union[RegRef, int]


@dataclass(frozen=True)
class MachineOp:
    """One operation in a VLIW slot, on physical registers.

    ``source_uid`` links back to the IR instruction the op was compiled
    from, for debugging and for metrics (e.g. counting spill traffic).
    """

    op: Opcode
    dest: Optional[RegRef] = None
    srcs: Tuple[MOperand, ...] = ()
    addr: Optional[Addr] = None
    target: Optional[str] = None
    source_uid: Optional[int] = None

    def __str__(self) -> str:
        parts = [self.op.value]
        if self.dest is not None:
            parts.append(str(self.dest) + " <-")
        parts.extend(str(s) for s in self.srcs)
        if self.addr is not None:
            parts.append(str(self.addr))
        if self.target is not None:
            parts.append(self.target)
        return " ".join(parts)


@dataclass
class VLIWWord:
    """One issue cycle: at most one op per (fu_class, fu_index) slot."""

    #: (fu_class name, fu index) -> op
    slots: Dict[Tuple[str, int], MachineOp] = field(default_factory=dict)

    def place(self, fu_class: str, fu_index: int, op: MachineOp) -> None:
        key = (fu_class, fu_index)
        if key in self.slots:
            raise ValueError(f"slot {key} already occupied")
        self.slots[key] = op

    @property
    def ops(self) -> List[MachineOp]:
        return [self.slots[key] for key in sorted(self.slots)]

    def __len__(self) -> int:
        return len(self.slots)

    def __str__(self) -> str:
        if not self.slots:
            return "(nop)"
        return " || ".join(
            f"{cls}{idx}: {op}" for (cls, idx), op in sorted(self.slots.items())
        )


@dataclass
class VLIWProgram:
    """A compiled trace: a sequence of wide words for a machine model."""

    machine: MachineModel
    words: List[VLIWWord] = field(default_factory=list)
    #: physical registers holding trace live-in values at cycle 0.
    live_in_regs: Dict[str, RegRef] = field(default_factory=dict)

    @property
    def issue_cycles(self) -> int:
        return len(self.words)

    @property
    def op_count(self) -> int:
        return sum(len(word) for word in self.words)

    @property
    def spill_op_count(self) -> int:
        return sum(
            1
            for word in self.words
            for op in word.ops
            if op.op in (Opcode.SPILL, Opcode.RELOAD)
        )

    def max_registers_used(self) -> Dict[str, int]:
        """Highest register index + 1 touched, per class."""
        peak: Dict[str, int] = {}
        for word in self.words:
            for op in word.ops:
                refs = [op.dest] if op.dest is not None else []
                refs.extend(s for s in op.srcs if isinstance(s, RegRef))
                for ref in refs:
                    peak[ref.cls] = max(peak.get(ref.cls, 0), ref.index + 1)
        for ref in self.live_in_regs.values():
            peak[ref.cls] = max(peak.get(ref.cls, 0), ref.index + 1)
        return peak

    def utilization(self) -> float:
        """Fraction of FU slots holding an op over the program's cycles."""
        if not self.words:
            return 0.0
        return self.op_count / (self.machine.total_fus * len(self.words))

    def __str__(self) -> str:
        lines = [f"; {self.machine.describe()}"]
        for cycle, word in enumerate(self.words):
            lines.append(f"{cycle:4d}: {word}")
        return "\n".join(lines)
