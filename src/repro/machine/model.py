"""Synthetic VLIW machine descriptions.

The paper assumes a load/store VLIW with a fixed set of functional units
and registers, non-pipelined (a dependent instruction cannot begin until
its producer completes, §3.2).  :class:`MachineModel` parameterizes that
space: FU classes with counts and latencies, and one or more register
classes.  The paper's base configuration is homogeneous
(:meth:`MachineModel.homogeneous`); the §5 multi-class extension is
exercised through :meth:`MachineModel.classed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Tuple

from repro.ir.instructions import Instruction
from repro.ir.opcodes import Opcode, default_fu_class


def default_reg_class(value: str) -> str:
    """The default classifier: every value lives in ``"gpr"``.

    A named module-level function (not a lambda) so machine models —
    and the compiled artifacts that embed them — survive pickling,
    which the ``repro.serve`` worker pool and persistent compile cache
    both rely on.
    """
    return "gpr"


@dataclass(frozen=True)
class PrefixRegClassifier:
    """Classify values into two register classes by name prefix.

    Picklable and content-addressable (its parameters fully describe
    it), unlike a closure; used by :meth:`MachineModel.dual_regclass`.
    """

    prefix: str = "f"
    match_cls: str = "flt"
    other_cls: str = "int"

    def __call__(self, value: str) -> str:
        return self.match_cls if value.startswith(self.prefix) else self.other_cls


@dataclass(frozen=True)
class FUClass:
    """A class of identical functional units.

    ``ops`` restricts which opcodes the class executes; ``None`` means
    any opcode.  ``latency`` is the execution time in cycles.  The
    paper's base model is non-pipelined (a unit is busy for ``latency``
    cycles per op); ``pipelined=True`` enables the §6 superscalar
    direction, where a unit accepts a new op every cycle while results
    still take ``latency`` cycles.
    """

    name: str
    count: int
    latency: int = 1
    ops: Optional[FrozenSet[Opcode]] = None
    pipelined: bool = False

    def executes(self, op: Opcode) -> bool:
        return self.ops is None or op in self.ops

    @property
    def occupancy(self) -> int:
        """Cycles a unit stays busy per op."""
        return 1 if self.pipelined else self.latency


class MachineConfigError(Exception):
    """Raised for inconsistent machine descriptions."""


@dataclass(frozen=True)
class MachineModel:
    """A VLIW target: functional units, registers, and issue semantics.

    Attributes:
        name: Human-readable configuration name used in benchmark tables.
        fu_classes: The functional-unit classes.
        registers: Register-class name -> number of registers.
        reg_class_of: Maps a value name to its register class.  The
            default puts every value in ``"gpr"``; multi-class set-ups
            (e.g. int vs. float) classify by value-name prefix.
    """

    name: str
    fu_classes: Tuple[FUClass, ...]
    registers: Mapping[str, int]
    reg_class_of: Callable[[str], str] = field(default=default_reg_class)

    def __post_init__(self) -> None:
        if not self.fu_classes:
            raise MachineConfigError("machine needs at least one FU class")
        names = [fu.name for fu in self.fu_classes]
        if len(set(names)) != len(names):
            raise MachineConfigError(f"duplicate FU class names: {names}")
        for fu in self.fu_classes:
            if fu.count < 1 or fu.latency < 1:
                raise MachineConfigError(f"bad FU class {fu}")
        for cls, count in self.registers.items():
            if count < 1:
                raise MachineConfigError(f"register class {cls!r} needs >= 1")

    # ------------------------------------------------------------------
    def fu_class(self, name: str) -> FUClass:
        for fu in self.fu_classes:
            if fu.name == name:
                return fu
        raise KeyError(name)

    def fu_class_for(self, op: Opcode) -> FUClass:
        """The FU class that executes ``op`` (first match wins)."""
        for fu in self.fu_classes:
            if fu.executes(op):
                return fu
        raise MachineConfigError(f"no FU class executes {op!r}")

    def latency_of(self, inst: Instruction) -> int:
        if inst.is_pseudo:
            return 0
        return self.fu_class_for(inst.op).latency

    @property
    def total_fus(self) -> int:
        return sum(fu.count for fu in self.fu_classes)

    @property
    def total_registers(self) -> int:
        return sum(self.registers.values())

    def register_count(self, cls: str = "gpr") -> int:
        return self.registers[cls]

    def describe(self) -> str:
        fus = ", ".join(
            f"{fu.count}x{fu.name}(lat={fu.latency})" for fu in self.fu_classes
        )
        regs = ", ".join(f"{n} {cls}" for cls, n in sorted(self.registers.items()))
        return f"{self.name}: FUs[{fus}] Regs[{regs}]"

    # ------------------------------------------------------------------
    # Canonical configurations.
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        n_fus: int,
        n_regs: int,
        latency: int = 1,
        name: Optional[str] = None,
        pipelined: bool = False,
    ) -> "MachineModel":
        """The paper's base machine: ``n_fus`` identical universal units
        and a single register file of ``n_regs`` registers."""
        suffix = "p" if pipelined else ""
        return cls(
            name=name or f"vliw-{n_fus}fu-{n_regs}r{suffix}",
            fu_classes=(FUClass("any", n_fus, latency, pipelined=pipelined),),
            registers={"gpr": n_regs},
        )

    @classmethod
    def classed(
        cls,
        alu: int = 2,
        mul: int = 1,
        mem: int = 1,
        branch: int = 1,
        alu_regs: int = 16,
        latencies: Optional[Dict[str, int]] = None,
        name: Optional[str] = None,
    ) -> "MachineModel":
        """A classed machine: ALU / multiplier / memory / branch units.

        Opcode-to-class mapping follows :func:`default_fu_class`.
        """
        latencies = latencies or {}
        groups: Dict[str, FrozenSet[Opcode]] = {"alu": frozenset(), "mul": frozenset(),
                                                "mem": frozenset(), "branch": frozenset()}
        buckets: Dict[str, set] = {k: set() for k in groups}
        for op in Opcode:
            if op in (Opcode.ENTRY, Opcode.EXIT):
                continue
            buckets[default_fu_class(op)].add(op)
        fu_classes = []
        for fu_name, count in (("alu", alu), ("mul", mul), ("mem", mem), ("branch", branch)):
            if count > 0:
                fu_classes.append(
                    FUClass(
                        fu_name,
                        count,
                        latencies.get(fu_name, 1),
                        frozenset(buckets[fu_name]),
                    )
                )
        return cls(
            name=name or f"vliw-classed-{alu}a{mul}m{mem}l{branch}b-{alu_regs}r",
            fu_classes=tuple(fu_classes),
            registers={"gpr": alu_regs},
        )

    @classmethod
    def dual_regclass(
        cls,
        n_fus: int = 4,
        int_regs: int = 8,
        flt_regs: int = 8,
        name: Optional[str] = None,
    ) -> "MachineModel":
        """Two register classes (the §5 multi-class extension).

        Values whose names start with ``f`` live in the ``flt`` class;
        everything else is ``int``.
        """
        return cls(
            name=name or f"vliw-{n_fus}fu-{int_regs}i{flt_regs}f",
            fu_classes=(FUClass("any", n_fus, 1),),
            registers={"int": int_regs, "flt": flt_regs},
            reg_class_of=PrefixRegClassifier("f", "flt", "int"),
        )
