"""Exact optimal scheduling for small DAGs (evaluation oracle).

Dynamic programming over scheduled-set bitmasks gives, for DAGs of up
to ~16 ops:

* :func:`optimal_schedule_length` — the minimum number of cycles any
  schedule needs under the machine's FU counts and (optionally) its
  register file, with no spilling;
* :func:`minimum_register_schedule` — the minimum register file size
  for which a spill-free schedule exists (the true best case, against
  which the paper's worst-case measurement can be compared).

Both assume unit latencies (the paper's base model).  These oracles are
exponential by design and exist to evaluate the heuristics; the library
never calls them on production paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.graph.dag import DependenceDAG
from repro.machine.model import MachineModel, default_reg_class
from repro.resilience.budgets import DeadlineExpired, active_deadline


class OptimalSearchError(Exception):
    """The instance is too large or the machine unsupported."""


#: Default cap on op count (2^n DP states).
MAX_OPS = 16


@dataclass(frozen=True)
class _Problem:
    """Preprocessed DAG facts for the bitmask DP."""

    n: int
    preds: Tuple[int, ...]           # predecessor mask per op index
    fu_class: Tuple[str, ...]        # class name per op index
    fu_limit: Dict[str, int]
    defines: Tuple[bool, ...]        # op defines a register value
    users: Tuple[int, ...]           # mask of ops reading op i's value
    live_out: Tuple[bool, ...]       # value needed after the trace


def _build_problem(
    dag: DependenceDAG,
    machine: MachineModel,
    max_ops: int = MAX_OPS,
) -> _Problem:
    ops = dag.op_nodes()
    if len(ops) > max_ops:
        raise OptimalSearchError(
            f"{len(ops)} ops exceed the exact-search cap of {max_ops}"
        )
    for fu in machine.fu_classes:
        if fu.latency != 1:
            raise OptimalSearchError("exact search assumes unit latencies")
    index = {uid: i for i, uid in enumerate(ops)}

    preds = [0] * len(ops)
    for uid in ops:
        for pred in dag.preds(uid):
            if pred in index:
                preds[index[uid]] |= 1 << index[pred]

    users = [0] * len(ops)
    live_out = [False] * len(ops)
    defines = [False] * len(ops)
    for uid in ops:
        inst = dag.instruction(uid)
        if inst.dest is None:
            continue
        defines[index[uid]] = True
        for use in dag.value_uses.get(inst.dest, ()):
            if use in index:
                users[index[uid]] |= 1 << index[use]
            elif use == dag.exit:
                live_out[index[uid]] = True

    fu_class = tuple(
        machine.fu_class_for(dag.instruction(uid).op).name for uid in ops
    )
    fu_limit = {fu.name: fu.count for fu in machine.fu_classes}
    return _Problem(
        n=len(ops),
        preds=tuple(preds),
        fu_class=fu_class,
        fu_limit=fu_limit,
        defines=tuple(defines),
        users=tuple(users),
        live_out=tuple(live_out),
    )


def _live_count(problem: _Problem, mask: int) -> int:
    """Registers held once exactly ``mask`` has issued."""
    live = 0
    for i in range(problem.n):
        if not problem.defines[i] or not (mask >> i) & 1:
            continue
        pending = problem.users[i] & ~mask
        if pending or problem.live_out[i]:
            live += 1
    return live


def _ready_list(problem: _Problem, mask: int) -> List[int]:
    return [
        i
        for i in range(problem.n)
        if not (mask >> i) & 1 and (problem.preds[i] & ~mask) == 0
    ]


def _issue_sets(problem: _Problem, ready: Sequence[int]):
    """All nonempty ready subsets respecting per-class FU counts."""
    for size in range(min(len(ready), sum(problem.fu_limit.values())), 0, -1):
        for subset in combinations(ready, size):
            counts: Dict[str, int] = {}
            ok = True
            for i in subset:
                cls = problem.fu_class[i]
                counts[cls] = counts.get(cls, 0) + 1
                if counts[cls] > problem.fu_limit[cls]:
                    ok = False
                    break
            if ok:
                yield subset


def optimal_schedule_length(
    dag: DependenceDAG,
    machine: MachineModel,
    respect_registers: bool = True,
    max_ops: int = MAX_OPS,
) -> Optional[int]:
    """Minimum cycles over all schedules; None when no spill-free
    schedule fits the register file."""
    problem = _build_problem(dag, machine, max_ops)
    registers = machine.registers.get("gpr", sum(machine.registers.values()))
    full = (1 << problem.n) - 1
    INF = 1 << 30

    from functools import lru_cache

    deadline = active_deadline()
    states = 0

    @lru_cache(maxsize=None)
    def best(mask: int) -> int:
        nonlocal states
        states += 1
        if (
            deadline is not None
            and states % 256 == 1
            and deadline.expired()
        ):
            raise DeadlineExpired("optimal_schedule_length", deadline)
        if mask == full:
            return 0
        ready = _ready_list(problem, mask)
        if not ready:
            return INF  # unreachable in an acyclic DAG
        result = INF
        for subset in _issue_sets(problem, ready):
            new_mask = mask
            for i in subset:
                new_mask |= 1 << i
            if respect_registers and _live_count(problem, new_mask) > registers:
                continue
            tail = best(new_mask)
            if tail + 1 < result:
                result = tail + 1
                if result == _cycles_lower_bound(problem, mask):
                    break  # cannot do better from this state
        return result

    try:
        value = best(0)
    finally:
        best.cache_clear()
    return None if value >= INF else value


@dataclass(frozen=True)
class AnytimeScheduleResult:
    """Outcome of :func:`anytime_schedule_length`."""

    length: Optional[int]
    degraded: bool
    #: ``exact`` or ``list-schedule`` (the heuristic fallback).
    source: str


def anytime_schedule_length(
    dag: DependenceDAG,
    machine: MachineModel,
    respect_registers: bool = True,
    max_ops: int = MAX_OPS,
) -> AnytimeScheduleResult:
    """Exact length when the budget allows; a list-schedule bound otherwise.

    The exact DP consults the active deadline; when it expires (or the
    instance exceeds ``max_ops``) this falls back to a greedy list
    schedule's length — an upper bound, tagged ``degraded=True`` — so
    callers on a budget always get *an* answer.
    """
    try:
        length = optimal_schedule_length(
            dag, machine, respect_registers=respect_registers, max_ops=max_ops
        )
        return AnytimeScheduleResult(length, degraded=False, source="exact")
    except (DeadlineExpired, OptimalSearchError):
        pass

    from repro import obs
    from repro.scheduling.list_scheduler import ListScheduler, ScheduleError

    obs.count("resilience.optimal_degraded")
    obs.event("resilience.degraded", site="optimal_schedule_length")
    try:
        schedule = ListScheduler(
            dag,
            machine,
            respect_registers=respect_registers,
            allow_spill=respect_registers,
        ).run()
    except ScheduleError:
        return AnytimeScheduleResult(None, degraded=True, source="list-schedule")
    return AnytimeScheduleResult(
        schedule.length, degraded=True, source="list-schedule"
    )


def _cycles_lower_bound(problem: _Problem, mask: int) -> int:
    remaining = problem.n - bin(mask).count("1")
    width = sum(problem.fu_limit.values())
    return max(1, -(-remaining // width))


def minimum_register_schedule(
    dag: DependenceDAG,
    machine: Optional[MachineModel] = None,
    max_ops: int = MAX_OPS,
) -> int:
    """The fewest registers for which *some* spill-free schedule exists.

    Pressure is *not* a pure order property on a VLIW: co-issuing the
    last uses of several values with several new definitions lets the
    newcomers take over the dying registers atomically (reads happen at
    issue, writes at the end of the cycle), which no sequential order
    can imitate.  The minimum therefore depends on the issue width; by
    default an unbounded-width machine is assumed (the absolute best
    case).  Computed by binary search over the feasibility oracle.
    """
    if machine is None:
        n_ops = max(1, len(dag.op_nodes()))
        machine = MachineModel.homogeneous(n_ops, 1)

    low, high = 1, max(1, len(dag.op_nodes()))
    # Ensure the upper end is feasible before searching.
    while _feasible_with(dag, machine, high, max_ops) is None:
        high *= 2
        if high > 4 * len(dag.op_nodes()) + 8:
            raise OptimalSearchError("no spill-free schedule at any size")
    while low < high:
        mid = (low + high) // 2
        if _feasible_with(dag, machine, mid, max_ops) is not None:
            high = mid
        else:
            low = mid + 1
    return low


def _feasible_with(
    dag: DependenceDAG,
    machine: MachineModel,
    registers: int,
    max_ops: int,
) -> Optional[int]:
    probe = MachineModel(
        name=f"{machine.name}-probe{registers}",
        fu_classes=machine.fu_classes,
        registers={"gpr": registers},
        reg_class_of=default_reg_class,
    )
    return optimal_schedule_length(dag, probe, max_ops=max_ops)
