"""Scheduling substrate and the baseline compilers."""

from repro.scheduling.goodman_hsu import compile_goodman_hsu
from repro.scheduling.list_scheduler import (
    SPILL_BASE,
    ListScheduler,
    Schedule,
    ScheduledOp,
    ScheduleError,
)
from repro.scheduling.packer import pack_in_order
from repro.scheduling.postpass import add_register_reuse_edges, compile_postpass
from repro.scheduling.prepass import compile_prepass
from repro.scheduling.priorities import (
    latency_weighted_height,
    source_order_priority,
)
from repro.scheduling.regalloc import (
    AllocationOutcome,
    LinearScanAllocator,
    RegAllocError,
    color_registers,
)

__all__ = [
    "AllocationOutcome",
    "LinearScanAllocator",
    "ListScheduler",
    "RegAllocError",
    "SPILL_BASE",
    "Schedule",
    "ScheduleError",
    "ScheduledOp",
    "add_register_reuse_edges",
    "color_registers",
    "compile_goodman_hsu",
    "compile_postpass",
    "compile_prepass",
    "latency_weighted_height",
    "pack_in_order",
    "source_order_priority",
]
