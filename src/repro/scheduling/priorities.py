"""Scheduling priority functions (critical-path heights etc.)."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.graph.dag import DependenceDAG
from repro.ir.instructions import Instruction
from repro.machine.model import MachineModel


def latency_weighted_height(
    dag: DependenceDAG,
    machine: Optional[MachineModel] = None,
) -> Dict[int, int]:
    """Longest latency-weighted path from each node to EXIT.

    The classic list-scheduling priority: nodes on the critical path get
    the highest values.
    """
    if machine is None:
        lat: Callable[[Instruction], int] = lambda inst: 0 if inst.is_pseudo else 1
    else:
        lat = machine.latency_of
    height: Dict[int, int] = {}
    for uid in reversed(dag.topological_order()):
        succs = dag.succs(uid)
        base = lat(dag.instruction(uid))
        if not succs:
            height[uid] = base
        else:
            height[uid] = base + max(height[s] for s in succs)
    return height


def source_order_priority(dag: DependenceDAG) -> Dict[int, int]:
    """Priority that mimics original program order (earlier = higher)."""
    order = dag.topological_order()
    n = len(order)
    return {uid: n - i for i, uid in enumerate(order)}
