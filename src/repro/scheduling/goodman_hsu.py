"""Goodman–Hsu DAG-driven integrated baseline [GoH88].

Goodman and Hsu's "Code Scheduling and Register Allocation in Large
Basic Blocks" interleaves the two problems inside one list-scheduling
pass: while plenty of registers are free the scheduler runs in CSP mode
(code scheduling priority — pure critical path); when the free-register
count drops below a threshold it switches to CSR mode (code scheduling
to reduce register pressure), preferring ready ops that free registers
over ops that allocate new ones.  The paper notes this technique has no
spill-insertion mechanism of its own; our implementation falls back to
the shared emergency spiller when CSR mode cannot avoid exhaustion.
"""

from __future__ import annotations

from repro.graph.dag import DependenceDAG
from repro.machine.model import MachineModel
from repro.scheduling.list_scheduler import ListScheduler, Schedule

#: Default AVLREG threshold for switching CSP -> CSR, per [GoH88].
DEFAULT_THRESHOLD = 2


def compile_goodman_hsu(
    dag: DependenceDAG,
    machine: MachineModel,
    threshold: int = DEFAULT_THRESHOLD,
) -> Schedule:
    """Integrated scheduling with CSP/CSR mode switching."""
    return ListScheduler(
        dag,
        machine,
        respect_registers=True,
        allow_spill=True,
        pressure_threshold=threshold,
    ).run()
