"""Prepass baseline: schedule first, allocate registers afterwards.

This is the phase ordering the paper's introduction criticizes from one
side: the list scheduler maximizes parallelism with no register
awareness, then a linear allocator must patch spill code into the fixed
order, lengthening the schedule exactly where resources were already
tight.
"""

from __future__ import annotations

from typing import List

from repro.graph.dag import DependenceDAG
from repro.machine.model import MachineModel
from repro.scheduling.list_scheduler import ListScheduler, Schedule
from repro.scheduling.packer import pack_in_order
from repro.scheduling.regalloc import LinearScanAllocator


def compile_prepass(dag: DependenceDAG, machine: MachineModel) -> Schedule:
    """Schedule ignoring registers, then allocate and patch spills."""
    unconstrained = ListScheduler(
        dag, machine, respect_registers=False
    ).run()

    # Linearize the schedule: cycle order, then slot order — the order
    # the allocator must respect when patching spills in.
    ordered = sorted(
        unconstrained.ops, key=lambda op: (op.cycle, op.fu_class, op.fu_index)
    )
    instructions = [op.inst for op in ordered]

    live_ins = sorted(
        name
        for name, def_uid in dag.value_defs.items()
        if def_uid == dag.entry
    )
    allocation = LinearScanAllocator(machine).run(
        instructions, live_ins=live_ins, live_outs=sorted(dag.live_out)
    )
    return pack_in_order(allocation.instructions, machine, allocation)
