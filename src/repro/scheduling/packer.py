"""Order-preserving VLIW packing.

Places an already-ordered, already-register-allocated instruction list
into VLIW words without reordering: each op issues at the earliest cycle
that is (a) no earlier than its predecessor in the list, (b) after its
operands' writebacks, (c) on a free unit of its class, and (d) after any
conflicting memory access.  This models the *prepass* baseline's
"patch spill code into the fixed schedule" step, and doubles as a naive
source-order compiler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.instructions import Instruction
from repro.machine.model import MachineModel
from repro.machine.vliw import RegRef
from repro.scheduling.list_scheduler import Schedule, ScheduledOp, ScheduleError
from repro.scheduling.regalloc import AllocationOutcome


def pack_in_order(
    instructions: Sequence[Instruction],
    machine: MachineModel,
    allocation: AllocationOutcome,
) -> Schedule:
    """Pack ``instructions`` (in order) into the fewest cycles possible
    without reordering, using ``allocation``'s register binding."""
    fu_free_at: Dict[Tuple[str, int], int] = {
        (fu.name, i): 0 for fu in machine.fu_classes for i in range(fu.count)
    }
    value_ready: Dict[str, int] = {name: 0 for name in allocation.live_in_regs}
    last_mem_touch: Dict[Tuple[str, int], int] = {}
    floor = 0  # monotonic issue cycles preserve program order
    ops: List[ScheduledOp] = []
    spills = 0

    for inst in instructions:
        if inst.is_pseudo:
            continue
        earliest = floor
        for name in inst.uses():
            if name not in value_ready:
                raise ScheduleError(f"value {name!r} used before definition")
            earliest = max(earliest, value_ready[name])
        if inst.is_memory:
            cell = (inst.addr.base, inst.addr.offset)
            conflicts = [
                cycle
                for (base, offset), cycle in last_mem_touch.items()
                if base == cell[0] and offset == cell[1]
            ]
            if conflicts:
                earliest = max(earliest, max(conflicts) + 1)

        fu = machine.fu_class_for(inst.op)
        cycle, index = _first_slot(fu.name, fu.count, earliest, fu_free_at)
        fu_free_at[(fu.name, index)] = cycle + fu.occupancy

        ops.append(ScheduledOp(inst, cycle, fu.name, index, inst.uid))
        floor = cycle
        if inst.dest is not None:
            value_ready[inst.dest] = cycle + fu.latency
        if inst.is_memory:
            last_mem_touch[(inst.addr.base, inst.addr.offset)] = cycle
        if inst.is_spill_code:
            spills += 1

    length = 0
    for op in ops:
        length = max(
            length, op.cycle + machine.fu_class_for(op.inst.op).latency
        )
    return Schedule(
        machine=machine,
        ops=ops,
        length=length,
        reg_assignment=dict(allocation.binding),
        live_in_regs=dict(allocation.live_in_regs),
        live_out_regs=dict(allocation.live_out_regs),
        spill_count=allocation.spill_stores,
    )


def _first_slot(
    fu_name: str,
    count: int,
    earliest: int,
    fu_free_at: Dict[Tuple[str, int], int],
) -> Tuple[int, int]:
    """Earliest (cycle, unit index) at/after ``earliest`` for the class."""
    cycle = earliest
    while True:
        for index in range(count):
            if fu_free_at[(fu_name, index)] <= cycle:
                return cycle, index
        cycle += 1
